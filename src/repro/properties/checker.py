"""The online property checker: monitor automata over the TraceBus.

One :class:`PropertyChecker` subscribes to exactly the trace kinds its
suite needs and advances one small monitor automaton per property on
each received event.  Everything is driven by *event timestamps in
simulated time* — deadline expiry is detected when an observed event
(or the run's finalization) carries a time past the deadline, never by
a wall clock — so verdicts, violation records, and the ordinals of the
emitted ``property_violation`` events are deterministic and identical
across the interpreted, compiled and batched engines.

Violations are first-class robustness events.  Each one

* is appended to the per-property violation list (and therefore the
  :class:`~repro.properties.PropertyReport`),
* is emitted as a typed ``property_violation`` :class:`TraceEvent`
  nested immediately after its witnessing record (flight-recorder
  post-mortems carry it in stream position),
* bumps ``property_violations`` counters into the run's
  :class:`~repro.faults.ResilienceReport`, and
* depending on ``on_violation`` fires the PR 4 incident hooks
  (``"incident"``, the default — the flight recorder auto-dumps) or
  additionally escalates the witnessing part to the Supervisor
  (``"supervise"``); ``"record"`` only records.

Monitor state (pending obligations, armed flags, trie node sets,
violation lists) rides inside ``checkpoint()``/``restore()`` so
verdicts survive rollback recovery exactly like coverage does.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..engine import PROPERTY_VIOLATION, TraceBus, TraceEvent
from ..errors import PropertyError, PropertyViolationError
from ..perf import PERF
from .spec import (
    AbsenceProperty,
    BoundedLivenessProperty,
    InteractionConformanceProperty,
    PrecedenceProperty,
    Property,
    PropertySuite,
    ResponseProperty,
    coerce_suite,
)

Violation = Dict[str, Any]

#: Accepted ``on_violation`` policies.
VIOLATION_POLICIES = ("record", "incident", "supervise")


class _Monitor:
    """Base monitor automaton.

    The checker drives three entry points, all returning freshly
    detected violations as dicts with ``t`` (detection time in
    simulated time) and ``reason``:

    * :meth:`advance` — simulated time reached ``t`` (called before
      feeding the event stamped ``t``); detects strict deadline expiry.
      Only monitors with ``timed = True`` are driven — the checker
      skips the call for the untimed automata on the hot path.
    * :meth:`feed` — one subscribed event (monitors re-check matching).
    * :meth:`finalize` — the run ended at ``t``; inclusive deadline
      expiry and end-of-trace obligations (exact conformance).
    """

    #: True for monitors whose :meth:`advance` does work (deadlines).
    timed = False

    def advance(self, t: float) -> List[Violation]:
        return []

    def feed(self, event: TraceEvent) -> List[Violation]:
        return []

    def finalize(self, t: float) -> List[Violation]:
        return []

    def stats(self) -> Dict[str, Any]:
        raise NotImplementedError

    def state(self) -> Dict[str, Any]:
        raise NotImplementedError

    def load(self, snap: Dict[str, Any]) -> None:
        raise NotImplementedError


class _ResponseMonitor(_Monitor):
    """FIFO obligation queue: each reaction answers the oldest trigger."""

    timed = True

    def __init__(self, prop: ResponseProperty):
        self.prop = prop
        #: open obligations as (trigger_t, deadline) pairs, FIFO.
        self.pending: List[Tuple[float, float]] = []
        self.triggers = 0
        self.discharged = 0
        self.unmatched_reactions = 0

    def _expire(self, t: float, inclusive: bool) -> List[Violation]:
        out: List[Violation] = []
        while self.pending:
            trigger_t, deadline = self.pending[0]
            if deadline < t or (inclusive and deadline == t):
                self.pending.pop(0)
                out.append({
                    "t": t,
                    "reason": (f"no {self.prop.reaction.describe()} within "
                               f"{self.prop.within} of "
                               f"{self.prop.trigger.describe()} at "
                               f"t={trigger_t} (deadline {deadline})"),
                })
            else:
                break
        return out

    def advance(self, t: float) -> List[Violation]:
        return self._expire(t, inclusive=False)

    def feed(self, event: TraceEvent) -> List[Violation]:
        if self.prop.reaction.matches(event):
            if self.pending:
                self.pending.pop(0)
                self.discharged += 1
            else:
                self.unmatched_reactions += 1
        if self.prop.trigger.matches(event):
            self.triggers += 1
            self.pending.append((event.t, event.t + self.prop.within))
        return []

    def finalize(self, t: float) -> List[Violation]:
        return self._expire(t, inclusive=True)

    def stats(self) -> Dict[str, Any]:
        return {"triggers": self.triggers, "discharged": self.discharged,
                "open": len(self.pending),
                "unmatched_reactions": self.unmatched_reactions}

    def state(self) -> Dict[str, Any]:
        return {"pending": [list(entry) for entry in self.pending],
                "triggers": self.triggers, "discharged": self.discharged,
                "unmatched_reactions": self.unmatched_reactions}

    def load(self, snap: Dict[str, Any]) -> None:
        self.pending = [(entry[0], entry[1]) for entry in snap["pending"]]
        self.triggers = snap["triggers"]
        self.discharged = snap["discharged"]
        self.unmatched_reactions = snap["unmatched_reactions"]


class _PrecedenceMonitor(_Monitor):
    """Armed by the first ``first``; every unarmed ``then`` violates."""

    def __init__(self, prop: PrecedenceProperty):
        self.prop = prop
        self.armed = False
        self.firsts = 0
        self.thens = 0

    def feed(self, event: TraceEvent) -> List[Violation]:
        out: List[Violation] = []
        if self.prop.first.matches(event):
            self.armed = True
            self.firsts += 1
        if self.prop.then.matches(event):
            self.thens += 1
            if not self.armed:
                out.append({
                    "t": event.t,
                    "reason": (f"{self.prop.then.describe()} at "
                               f"t={event.t} before any "
                               f"{self.prop.first.describe()}"),
                })
        return out

    def stats(self) -> Dict[str, Any]:
        return {"armed": self.armed, "firsts": self.firsts,
                "thens": self.thens}

    def state(self) -> Dict[str, Any]:
        return {"armed": self.armed, "firsts": self.firsts,
                "thens": self.thens}

    def load(self, snap: Dict[str, Any]) -> None:
        self.armed = snap["armed"]
        self.firsts = snap["firsts"]
        self.thens = snap["thens"]


class _AbsenceMonitor(_Monitor):
    """Every (in-window) occurrence of the forbidden match violates."""

    def __init__(self, prop: AbsenceProperty):
        self.prop = prop
        self.occurrences = 0

    def feed(self, event: TraceEvent) -> List[Violation]:
        if not self.prop.never.matches(event):
            return []
        window = self.prop.window
        if window is not None and not window[0] <= event.t <= window[1]:
            return []
        self.occurrences += 1
        scope = (f" in window [{window[0]}, {window[1]}]"
                 if window is not None else "")
        return [{"t": event.t,
                 "reason": (f"forbidden {self.prop.never.describe()} at "
                            f"t={event.t}{scope}")}]

    def stats(self) -> Dict[str, Any]:
        return {"occurrences": self.occurrences}

    def state(self) -> Dict[str, Any]:
        return {"occurrences": self.occurrences}

    def load(self, snap: Dict[str, Any]) -> None:
        self.occurrences = snap["occurrences"]


class _LivenessMonitor(_Monitor):
    """At least N matches by the (inclusive) deadline."""

    timed = True

    def __init__(self, prop: BoundedLivenessProperty):
        self.prop = prop
        self.count = 0
        self.reported = False

    def _shortfall(self, t: float) -> Violation:
        return {"t": t,
                "reason": (f"only {self.count}/{self.prop.at_least} "
                           f"{self.prop.match.describe()} by "
                           f"t={self.prop.by}")}

    def advance(self, t: float) -> List[Violation]:
        if (not self.reported and t > self.prop.by
                and self.count < self.prop.at_least):
            self.reported = True
            return [self._shortfall(t)]
        return []

    def feed(self, event: TraceEvent) -> List[Violation]:
        if self.prop.match.matches(event) and event.t <= self.prop.by:
            self.count += 1
        return []

    def finalize(self, t: float) -> List[Violation]:
        if (not self.reported and t >= self.prop.by
                and self.count < self.prop.at_least):
            self.reported = True
            return [self._shortfall(t)]
        return []

    def stats(self) -> Dict[str, Any]:
        return {"count": self.count, "required": self.prop.at_least,
                "deadline": self.prop.by}

    def state(self) -> Dict[str, Any]:
        return {"count": self.count, "reported": self.reported}

    def load(self, snap: Dict[str, Any]) -> None:
        self.count = snap["count"]
        self.reported = snap["reported"]


class _ConformanceMonitor(_Monitor):
    """Prefix-trie walk over the interaction's alphabet.

    The active node set starts at the root; each alphabet-labelled
    delivery advances it.  Emptying the set means the observed prefix
    left the trace language — one violation, then the monitor goes
    dead (everything after the divergence is already non-conformant).
    """

    def __init__(self, prop: InteractionConformanceProperty):
        self.prop = prop
        self.active: List[int] = [0]
        self.dead = False
        self.consumed = 0

    def feed(self, event: TraceEvent) -> List[Violation]:
        if self.dead:
            return []
        sender = event.data.get("sender", "env")
        if sender == "env" and not self.prop.include_env:
            return []
        label = f"{sender}->{event.part}:{event.data.get('signal', '')}"
        if label not in self.prop.alphabet:
            return []
        nodes = self.prop.nodes
        advanced = sorted({nodes[index]["edges"][label]
                           for index in self.active
                           if label in nodes[index]["edges"]})
        self.consumed += 1
        if not advanced:
            self.dead = True
            return [{"t": event.t,
                     "reason": (f"trace diverged from interaction "
                                f"{self.prop.name!r} at message "
                                f"{self.consumed} ({label})")}]
        self.active = advanced
        return []

    def finalize(self, t: float) -> List[Violation]:
        if self.dead or not self.prop.complete:
            return []
        nodes = self.prop.nodes
        if any(nodes[index]["end"] for index in self.active):
            return []
        return [{"t": t,
                 "reason": (f"run ended after {self.consumed} messages "
                            f"on an incomplete prefix of interaction "
                            f"{self.prop.name!r}")}]

    def stats(self) -> Dict[str, Any]:
        return {"consumed": self.consumed, "diverged": self.dead,
                "alphabet": len(self.prop.alphabet)}

    def state(self) -> Dict[str, Any]:
        return {"active": list(self.active), "dead": self.dead,
                "consumed": self.consumed}

    def load(self, snap: Dict[str, Any]) -> None:
        self.active = list(snap["active"])
        self.dead = snap["dead"]
        self.consumed = snap["consumed"]


_MONITOR_FOR = {
    ResponseProperty: _ResponseMonitor,
    PrecedenceProperty: _PrecedenceMonitor,
    AbsenceProperty: _AbsenceMonitor,
    BoundedLivenessProperty: _LivenessMonitor,
    InteractionConformanceProperty: _ConformanceMonitor,
}


def _build_monitor(prop: Property) -> _Monitor:
    builder = _MONITOR_FOR.get(type(prop))
    if builder is None:  # subclass lookup fallback
        for prop_type, monitor_type in _MONITOR_FOR.items():
            if isinstance(prop, prop_type):
                builder = monitor_type
                break
    if builder is None:
        raise PropertyError(
            f"no monitor for property type {type(prop).__name__}")
    return builder(prop)


class PropertyChecker:
    """Evaluates a :class:`PropertySuite` online against one TraceBus.

    Attach with a bus (and optionally the owning
    :class:`~repro.simulation.cosim.SystemSimulation` for incident /
    supervisor / resilience integration), let the run emit, then call
    :meth:`finalize` with the end-of-run simulated time to flush
    deadline and completeness obligations.  :meth:`report` returns the
    per-run :class:`~repro.properties.PropertyReport`.
    """

    def __init__(self, suite, bus: TraceBus, simulation=None,
                 on_violation: str = "incident"):
        if on_violation not in VIOLATION_POLICIES:
            raise PropertyError(
                f"on_violation must be one of {VIOLATION_POLICIES}, "
                f"got {on_violation!r}")
        self.suite: PropertySuite = coerce_suite(suite)
        self.bus = bus
        self.simulation = simulation
        self.on_violation = on_violation
        self._monitors: List[Tuple[Property, _Monitor]] = [
            (prop, _build_monitor(prop)) for prop in self.suite]
        #: hot-path split: only timed monitors need advance() per event
        self._timed = [(prop, monitor) for prop, monitor in self._monitors
                       if monitor.timed]
        self._violations: Dict[str, List[Violation]] = {
            prop.name: [] for prop in self.suite}
        self._finalized_at: Optional[float] = None
        self.subscription = bus.subscribe(
            self._ingest, kinds=self.suite.event_kinds())

    # -- online evaluation -------------------------------------------------

    def _ingest(self, event: TraceEvent) -> None:
        PERF.incr("properties.events")
        t = event.t
        for prop, monitor in self._timed:
            for violation in monitor.advance(t):
                self._report_violation(prop, violation, witness=event)
        for prop, monitor in self._monitors:
            for violation in monitor.feed(event):
                self._report_violation(prop, violation, witness=event)

    def finalize(self, now: float) -> None:
        """End-of-run sweep at simulated time ``now`` (idempotent).

        Flushes inclusive deadline expiry (response obligations whose
        deadline coincides with the end of the run, liveness
        shortfalls) and exact-conformance completeness checks.
        """
        if self._finalized_at is not None:
            return
        for prop, monitor in self._monitors:
            for violation in monitor.finalize(now):
                self._report_violation(prop, violation, witness=None)
        self._finalized_at = now

    def _report_violation(self, prop: Property, violation: Violation,
                          witness: Optional[TraceEvent]) -> None:
        record: Violation = {
            "property": prop.name,
            "kind": prop.kind,
            "t": violation["t"],
            "at": witness.ordinal if witness is not None else None,
            "reason": violation["reason"],
        }
        self._violations[prop.name].append(record)
        PERF.incr("properties.violations")

        part = witness.part if witness is not None else ""
        # Nested emit: the violation lands immediately after its witness
        # in every subscriber's stream (ordinal = witness + 1 when the
        # kind is observed; unobserved kinds cost nothing, as ever).
        self.bus.emit(PROPERTY_VIOLATION, record["t"], part,
                      {"property": prop.name, "property_kind": prop.kind,
                       "reason": record["reason"],
                       "sequence": len(self._violations[prop.name])})

        simulation = self.simulation
        if simulation is None:
            return
        simulation.resilience.bump("property_violations")
        simulation.resilience.bump(f"property_violated.{prop.name}")
        if self.on_violation == "record":
            return
        simulation._fire_incident(
            "property_violation", f"{prop.name}: {record['reason']}")
        if self.on_violation == "supervise" and part \
                and simulation.on_part_error != "raise":
            # Hand the witnessing part to the supervisor like a crash;
            # with policy "raise" we stay incident-only — raising out
            # of a trace callback would detach the checker instead of
            # stopping the run.
            simulation._part_failed(
                part,
                PropertyViolationError(
                    f"property {prop.name!r} violated: {record['reason']}",
                    property_name=prop.name, detail=record))

    # -- results -----------------------------------------------------------

    @property
    def total_violations(self) -> int:
        """Violations recorded so far, across all properties."""
        return sum(len(violations)
                   for violations in self._violations.values())

    def violations(self, name: Optional[str] = None) -> List[Violation]:
        """The recorded violations (one property's, or all, in order)."""
        if name is not None:
            if name not in self._violations:
                raise PropertyError(f"unknown property {name!r}")
            return list(self._violations[name])
        merged: List[Violation] = []
        for prop in self.suite:
            merged.extend(self._violations[prop.name])
        return merged

    def verdicts(self) -> Dict[str, str]:
        """``{property name: "pass" | "violated"}`` in suite order."""
        return {prop.name: ("violated" if self._violations[prop.name]
                            else "pass")
                for prop in self.suite}

    def report(self):
        """The per-run :class:`~repro.properties.PropertyReport`."""
        from .report import PropertyReport

        return PropertyReport.from_checker(self)

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-property monitor statistics (triggers, counts, ...)."""
        return {prop.name: monitor.stats()
                for prop, monitor in self._monitors}

    def detach(self) -> None:
        """Unsubscribe from the bus (idempotent)."""
        self.subscription.cancel()

    # -- checkpoint / restore ---------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot every monitor plus the recorded violations."""
        return {
            "monitors": {prop.name: monitor.state()
                         for prop, monitor in self._monitors},
            "violations": {name: [dict(v) for v in violations]
                           for name, violations in self._violations.items()},
            "finalized_at": self._finalized_at,
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        """Rewind monitors and violation lists to a snapshot."""
        for prop, monitor in self._monitors:
            monitor.load(snap["monitors"][prop.name])
        self._violations = {
            name: [dict(v) for v in violations]
            for name, violations in snap["violations"].items()}
        self._finalized_at = snap["finalized_at"]

    def __repr__(self) -> str:
        return (f"<PropertyChecker suite={self.suite.name!r} "
                f"properties={len(self.suite)} "
                f"violations={self.total_violations}>")
