"""Temporal-property specifications over the typed trace stream.

The paper's claim is that UML 2.0 can serve as a *complete system
specification*; PR 2–6 made fault campaigns report survival, this
module makes them report **correctness**.  A :class:`Property` is a
declarative temporal assertion over :class:`~repro.engine.TraceEvent`
records — evaluated online by :class:`~repro.properties.PropertyChecker`
as a small monitor automaton over *simulated* time, so verdicts are
deterministic and byte-identical across the interpreted, compiled and
batched engines.

The vocabulary follows the classic specification-pattern catalogue:

* :func:`response` — every ``trigger`` is answered by a ``reaction``
  within a simulated-time deadline;
* :func:`precedence` — ``then`` never happens before its enabling
  ``first``;
* :func:`absence` — a match never occurs (optionally restricted to a
  time window);
* :func:`bounded_liveness` — at least N matches by time T;
* :func:`interaction_conformance` — the observed message trace stays a
  prefix of (or, with ``complete=True``, is a member of) the trace
  language of an S4 sequence diagram, compiled via
  :mod:`repro.interactions`.

Atoms are :class:`EventMatch` predicates on (kind, signal, receiving
part, sender); suites round-trip through JSON (``props.json``) for the
``simulate --properties`` / ``campaign --properties`` CLI surface.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..engine import KINDS, MESSAGE_DELIVERED, PROPERTY_VIOLATION, TraceEvent
from ..errors import PropertyError

#: Shorthand accepted wherever an atom is expected: an EventMatch, a
#: signal name, or a mapping of EventMatch fields.
MatchLike = Union["EventMatch", str, Dict[str, Any]]

_KIND_SET = frozenset(KINDS)


class EventMatch:
    """A predicate over trace events: kind plus optional field filters.

    ``signal`` and ``sender`` match against the event payload,
    ``part`` against the event's (receiving) part.  The default kind is
    ``message_delivered`` — the one stream every engine emits
    identically regardless of engine tier, which is what keeps property
    verdicts byte-identical across interpreted/compiled/batched runs.
    """

    __slots__ = ("kind", "signal", "part", "sender")

    def __init__(self, signal: Optional[str] = None,
                 part: Optional[str] = None,
                 sender: Optional[str] = None,
                 kind: str = MESSAGE_DELIVERED):
        if kind not in _KIND_SET:
            raise PropertyError(
                f"unknown trace kind {kind!r}; choose from {KINDS}")
        if kind == PROPERTY_VIOLATION:
            raise PropertyError(
                "properties cannot match property_violation events "
                "(the checker must not observe itself)")
        if signal is None and part is None and sender is None:
            raise PropertyError(
                f"event match on {kind!r} needs at least one of "
                "signal/part/sender")
        self.kind = kind
        self.signal = signal
        self.part = part
        self.sender = sender

    def matches(self, event: TraceEvent) -> bool:
        """True when the event satisfies every configured filter."""
        if event.kind != self.kind:
            return False
        if self.part is not None and event.part != self.part:
            return False
        data = event.data
        if self.signal is not None and data.get("signal") != self.signal:
            return False
        if self.sender is not None and data.get("sender") != self.sender:
            return False
        return True

    def describe(self) -> str:
        """Compact human-readable form for violation messages."""
        bits = []
        if self.signal is not None:
            bits.append(self.signal)
        if self.sender is not None:
            bits.append(f"from {self.sender}")
        if self.part is not None:
            bits.append(f"to {self.part}")
        body = " ".join(bits) if bits else "*"
        if self.kind == MESSAGE_DELIVERED:
            return body
        return f"{self.kind}({body})"

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {}
        if self.kind != MESSAGE_DELIVERED:
            record["kind"] = self.kind
        for key in ("signal", "part", "sender"):
            value = getattr(self, key)
            if value is not None:
                record[key] = value
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EventMatch":
        if not isinstance(data, dict):
            raise PropertyError(f"event match must be a mapping: {data!r}")
        unknown = set(data) - {"kind", "signal", "part", "sender"}
        if unknown:
            raise PropertyError(
                f"unknown event-match fields {sorted(unknown)}")
        return cls(signal=data.get("signal"), part=data.get("part"),
                   sender=data.get("sender"),
                   kind=data.get("kind", MESSAGE_DELIVERED))

    def __repr__(self) -> str:
        return f"<EventMatch {self.describe()}>"


def _coerce_match(value: MatchLike, what: str) -> EventMatch:
    if isinstance(value, EventMatch):
        return value
    if isinstance(value, str):
        return EventMatch(signal=value)
    if isinstance(value, dict):
        return EventMatch.from_dict(value)
    raise PropertyError(
        f"{what} must be an EventMatch, a signal name or a mapping; "
        f"got {value!r}")


class Property:
    """Base class: a named temporal assertion with a serializable spec.

    Subclasses define :attr:`kind`, their parameters and
    :meth:`to_dict`; the checker builds the matching monitor automaton.
    """

    kind = ""

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise PropertyError(f"property needs a non-empty name: {name!r}")
        self.name = name

    def event_kinds(self) -> Tuple[str, ...]:
        """Trace kinds this property needs the checker to subscribe to."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Property":
        """Rebuild any property from its :meth:`to_dict` form."""
        if not isinstance(data, dict):
            raise PropertyError(f"property spec must be a mapping: {data!r}")
        kind = data.get("kind")
        builder = _FROM_DICT.get(kind)
        if builder is None:
            raise PropertyError(
                f"unknown property kind {kind!r}; choose from "
                f"{sorted(_FROM_DICT)}")
        return builder(data)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class ResponseProperty(Property):
    """Every ``trigger`` is answered by a ``reaction`` within ``within``.

    The deadline is inclusive: a reaction stamped exactly at
    ``trigger_t + within`` satisfies the obligation.  Pending triggers
    discharge FIFO (each reaction answers the oldest open trigger), and
    obligations still open when simulated time passes the deadline —
    detected on the next observed event, or at run finalization — are
    violations.
    """

    kind = "response"

    def __init__(self, name: str, trigger: MatchLike, reaction: MatchLike,
                 within: float):
        super().__init__(name)
        self.trigger = _coerce_match(trigger, "trigger")
        self.reaction = _coerce_match(reaction, "reaction")
        within = float(within)
        if within <= 0:
            raise PropertyError(
                f"response {name!r}: within must be > 0, got {within}")
        self.within = within

    def event_kinds(self) -> Tuple[str, ...]:
        return tuple({self.trigger.kind, self.reaction.kind})

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "trigger": self.trigger.to_dict(),
                "reaction": self.reaction.to_dict(),
                "within": self.within}


class PrecedenceProperty(Property):
    """``then`` must never occur before its enabling ``first``.

    The monitor is armed by the first occurrence of ``first``; any
    ``then`` observed while unarmed is a violation (each one is
    reported, the monitor stays alive).
    """

    kind = "precedence"

    def __init__(self, name: str, first: MatchLike, then: MatchLike):
        super().__init__(name)
        self.first = _coerce_match(first, "first")
        self.then = _coerce_match(then, "then")

    def event_kinds(self) -> Tuple[str, ...]:
        return tuple({self.first.kind, self.then.kind})

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "first": self.first.to_dict(),
                "then": self.then.to_dict()}


class AbsenceProperty(Property):
    """A ``never`` match must not occur (within an optional window).

    ``window=(t0, t1)`` restricts the prohibition to simulated times
    ``t0 <= t <= t1``; without a window it is global.
    """

    kind = "absence"

    def __init__(self, name: str, never: MatchLike,
                 window: Optional[Tuple[float, float]] = None):
        super().__init__(name)
        self.never = _coerce_match(never, "never")
        if window is not None:
            try:
                t0, t1 = float(window[0]), float(window[1])
            except (TypeError, ValueError, IndexError):
                raise PropertyError(
                    f"absence {name!r}: window must be (t0, t1), "
                    f"got {window!r}") from None
            if t1 < t0:
                raise PropertyError(
                    f"absence {name!r}: empty window ({t0}, {t1})")
            window = (t0, t1)
        self.window = window

    def event_kinds(self) -> Tuple[str, ...]:
        return (self.never.kind,)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"kind": self.kind, "name": self.name,
                                  "never": self.never.to_dict()}
        if self.window is not None:
            record["window"] = list(self.window)
        return record


class BoundedLivenessProperty(Property):
    """At least ``at_least`` matches must occur by simulated time ``by``.

    The deadline is inclusive; the shortfall is detected as soon as
    observed time passes ``by``, or at run finalization.
    """

    kind = "bounded_liveness"

    def __init__(self, name: str, match: MatchLike, at_least: int,
                 by: float):
        super().__init__(name)
        self.match = _coerce_match(match, "match")
        at_least = int(at_least)
        if at_least < 1:
            raise PropertyError(
                f"bounded_liveness {name!r}: at_least must be >= 1, "
                f"got {at_least}")
        by = float(by)
        if by < 0:
            raise PropertyError(
                f"bounded_liveness {name!r}: by must be >= 0, got {by}")
        self.at_least = at_least
        self.by = by

    def event_kinds(self) -> Tuple[str, ...]:
        return (self.match.kind,)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "match": self.match.to_dict(),
                "at_least": self.at_least, "by": self.by}


class InteractionConformanceProperty(Property):
    """The observed message trace stays within an interaction's language.

    The interaction's (bounded) trace set is compiled **once** into a
    prefix trie at construction; online, the monitor advances a set of
    trie nodes on each delivered message whose canonical label
    (``sender->receiver:signal``) is in the interaction's alphabet —
    messages outside the alphabet are ignored, so a conformance check
    composes with unrelated traffic.  An advance that empties the node
    set is a violation (the observed prefix left the language); with
    ``complete=True`` the run must additionally end on an accepting
    node (a full trace, not just a viable prefix).
    """

    kind = "interaction"

    def __init__(self, name: str, trace_set: Sequence[Sequence[str]],
                 complete: bool = False, include_env: bool = False,
                 messages: Optional[Sequence[Sequence[str]]] = None,
                 loop: Optional[Tuple[int, int]] = None):
        super().__init__(name)
        traces = sorted({tuple(str(label) for label in trace)
                         for trace in trace_set})
        if not traces:
            raise PropertyError(
                f"interaction {name!r}: empty trace set")
        self.trace_set = tuple(traces)
        self.complete = bool(complete)
        self.include_env = bool(include_env)
        # Retained only so to_dict round-trips the compact authored form.
        self.messages = (tuple(tuple(m) for m in messages)
                         if messages is not None else None)
        self.loop = tuple(loop) if loop is not None else None
        self.nodes: List[Dict[str, Any]]
        self.alphabet: frozenset
        self._compile_trie()

    def _compile_trie(self) -> None:
        nodes: List[Dict[str, Any]] = [{"edges": {}, "end": False}]
        alphabet = set()
        for trace in self.trace_set:
            node = 0
            for label in trace:
                alphabet.add(label)
                edges = nodes[node]["edges"]
                nxt = edges.get(label)
                if nxt is None:
                    nxt = len(nodes)
                    nodes.append({"edges": {}, "end": False})
                    edges[label] = nxt
                node = nxt
            nodes[node]["end"] = True
        self.nodes = nodes
        self.alphabet = frozenset(alphabet)

    def event_kinds(self) -> Tuple[str, ...]:
        return (MESSAGE_DELIVERED,)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"kind": self.kind, "name": self.name}
        if self.messages is not None:
            record["messages"] = [list(m) for m in self.messages]
            if self.loop is not None:
                record["loop"] = list(self.loop)
        else:
            record["traces"] = [list(t) for t in self.trace_set]
        if self.complete:
            record["complete"] = True
        if self.include_env:
            record["include_env"] = True
        return record


def response(name: str, trigger: MatchLike, reaction: MatchLike,
             within: float) -> ResponseProperty:
    """``trigger`` ⇒ ``reaction`` within ``within`` simulated time units."""
    return ResponseProperty(name, trigger, reaction, within)


def precedence(name: str, first: MatchLike,
               then: MatchLike) -> PrecedenceProperty:
    """``then`` must be preceded by at least one ``first``."""
    return PrecedenceProperty(name, first, then)


def absence(name: str, never: MatchLike,
            window: Optional[Tuple[float, float]] = None) -> AbsenceProperty:
    """``never`` must not occur (optionally only inside ``window``)."""
    return AbsenceProperty(name, never, window)


def bounded_liveness(name: str, match: MatchLike, at_least: int,
                     by: float) -> BoundedLivenessProperty:
    """At least ``at_least`` occurrences of ``match`` by time ``by``."""
    return BoundedLivenessProperty(name, match, at_least, by)


def interaction_conformance(name: str, interaction=None,
                            messages: Optional[Sequence[Sequence[str]]] = None,
                            loop: Optional[Tuple[int, int]] = None,
                            complete: bool = False,
                            include_env: bool = False,
                            env: Optional[Dict[str, Any]] = None,
                            limit: int = 10_000,
                            ) -> InteractionConformanceProperty:
    """Conformance against an S4 sequence diagram.

    Pass either an :class:`~repro.interactions.Interaction` (its trace
    set is enumerated via :func:`repro.interactions.traces`, bounded by
    ``limit``) or the compact JSON-able form: ``messages`` as a list of
    ``(sender, receiver, signal)`` triples, optionally repeated under a
    ``loop=(min, max)`` fragment.
    """
    from ..errors import InteractionError

    if (interaction is None) == (messages is None):
        raise PropertyError(
            f"interaction {name!r}: give exactly one of interaction= "
            "or messages=")
    if interaction is None:
        interaction = _interaction_from_spec(name, messages, loop)
    from ..interactions import traces as enumerate_traces

    try:
        trace_set = enumerate_traces(interaction, env=env, limit=limit)
    except InteractionError as error:
        raise PropertyError(
            f"interaction {name!r}: cannot enumerate trace set: "
            f"{error}") from error
    return InteractionConformanceProperty(
        name, trace_set, complete=complete, include_env=include_env,
        messages=messages, loop=loop)


def _interaction_from_spec(name: str, messages: Sequence[Sequence[str]],
                           loop: Optional[Tuple[int, int]]):
    """Build an Interaction from (sender, receiver, signal) triples."""
    from ..interactions.model import (
        Interaction, Lifeline, Message, MessageSort)

    triples: List[Tuple[str, str, str]] = []
    for entry in messages:
        try:
            sender, receiver, signal = entry
        except (TypeError, ValueError):
            raise PropertyError(
                f"interaction {name!r}: each message must be "
                f"(sender, receiver, signal), got {entry!r}") from None
        triples.append((str(sender), str(receiver), str(signal)))
    if not triples:
        raise PropertyError(f"interaction {name!r}: no messages")

    interaction = Interaction(name)
    lifelines: Dict[str, Lifeline] = {}

    def lifeline(participant: str) -> Lifeline:
        if participant not in lifelines:
            lifelines[participant] = interaction.add_lifeline(participant)
        return lifelines[participant]

    if loop is None:
        for sender, receiver, signal in triples:
            interaction.message(signal, lifeline(sender), lifeline(receiver))
    else:
        try:
            loop_min, loop_max = int(loop[0]), int(loop[1])
        except (TypeError, ValueError, IndexError):
            raise PropertyError(
                f"interaction {name!r}: loop must be (min, max), "
                f"got {loop!r}") from None
        from ..errors import InteractionError

        try:
            fragment = interaction.loop(loop_min, loop_max)
        except InteractionError as error:
            raise PropertyError(
                f"interaction {name!r}: {error}") from error
        operand = fragment.add_operand()
        for sender, receiver, signal in triples:
            operand.add(Message(signal, lifeline(sender), lifeline(receiver),
                                MessageSort.ASYNC_SIGNAL))
    return interaction


def _response_from_dict(data: Dict[str, Any]) -> ResponseProperty:
    _require(data, "response", ("name", "trigger", "reaction", "within"))
    return ResponseProperty(data["name"], data["trigger"], data["reaction"],
                            data["within"])


def _precedence_from_dict(data: Dict[str, Any]) -> PrecedenceProperty:
    _require(data, "precedence", ("name", "first", "then"))
    return PrecedenceProperty(data["name"], data["first"], data["then"])


def _absence_from_dict(data: Dict[str, Any]) -> AbsenceProperty:
    _require(data, "absence", ("name", "never"))
    window = data.get("window")
    return AbsenceProperty(data["name"], data["never"],
                           tuple(window) if window is not None else None)


def _liveness_from_dict(data: Dict[str, Any]) -> BoundedLivenessProperty:
    _require(data, "bounded_liveness", ("name", "match", "at_least", "by"))
    return BoundedLivenessProperty(data["name"], data["match"],
                                   data["at_least"], data["by"])


def _interaction_from_dict(data: Dict[str, Any]) -> InteractionConformanceProperty:
    _require(data, "interaction", ("name",))
    name = data["name"]
    complete = bool(data.get("complete", False))
    include_env = bool(data.get("include_env", False))
    if "messages" in data:
        loop = data.get("loop")
        return interaction_conformance(
            name, messages=data["messages"],
            loop=tuple(loop) if loop is not None else None,
            complete=complete, include_env=include_env)
    if "traces" in data:
        return InteractionConformanceProperty(
            name, data["traces"], complete=complete, include_env=include_env)
    raise PropertyError(
        f"interaction {name!r}: needs either messages or traces")


def _require(data: Dict[str, Any], kind: str, keys: Iterable[str]) -> None:
    missing = [key for key in keys if key not in data]
    if missing:
        raise PropertyError(
            f"{kind} property spec missing fields {missing}: {data!r}")


_FROM_DICT = {
    "response": _response_from_dict,
    "precedence": _precedence_from_dict,
    "absence": _absence_from_dict,
    "bounded_liveness": _liveness_from_dict,
    "interaction": _interaction_from_dict,
}


class PropertySuite:
    """An ordered, named collection of properties (the checker's input).

    Property names must be unique — they key the per-property verdicts
    in reports and the campaign-level aggregation.  Suites round-trip
    through JSON; see :meth:`to_dict` for the ``props.json`` schema.
    """

    def __init__(self, properties: Iterable[Property], name: str = "suite"):
        self.name = str(name)
        self.properties: Tuple[Property, ...] = tuple(properties)
        if not self.properties:
            raise PropertyError("property suite is empty")
        seen = set()
        for prop in self.properties:
            if not isinstance(prop, Property):
                raise PropertyError(
                    f"suite {self.name!r}: {prop!r} is not a Property")
            if prop.name in seen:
                raise PropertyError(
                    f"suite {self.name!r}: duplicate property name "
                    f"{prop.name!r}")
            seen.add(prop.name)

    def __iter__(self):
        return iter(self.properties)

    def __len__(self) -> int:
        return len(self.properties)

    def event_kinds(self) -> Tuple[str, ...]:
        """Union of trace kinds the suite needs, in KINDS order."""
        needed = set()
        for prop in self.properties:
            needed.update(prop.event_kinds())
        return tuple(kind for kind in KINDS if kind in needed)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "version": 1,
                "properties": [prop.to_dict() for prop in self.properties]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PropertySuite":
        if not isinstance(data, dict):
            raise PropertyError(
                f"property suite must be a mapping: {data!r}")
        if isinstance(data.get("properties"), list):
            entries = data["properties"]
            name = data.get("name", "suite")
        else:
            raise PropertyError(
                "property suite needs a 'properties' list "
                f"(got keys {sorted(data)})")
        return cls([Property.from_dict(entry) for entry in entries],
                   name=name)

    @classmethod
    def from_json(cls, text: str) -> "PropertySuite":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise PropertyError(
                f"property suite is not valid JSON: {error}") from error
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "PropertySuite":
        """Read a suite from a ``props.json`` file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise PropertyError(
                f"cannot read property suite {path!r}: {error}") from error
        return cls.from_json(text)

    def __repr__(self) -> str:
        return (f"<PropertySuite {self.name!r} "
                f"properties={len(self.properties)}>")


def coerce_suite(value, name: str = "suite") -> PropertySuite:
    """Accept a PropertySuite, an iterable of properties, a suite dict,
    or a path to a ``props.json`` file."""
    if isinstance(value, PropertySuite):
        return value
    if isinstance(value, Property):
        return PropertySuite([value], name=name)
    if isinstance(value, dict):
        return PropertySuite.from_dict(value)
    if isinstance(value, (str, bytes)):
        return PropertySuite.load(value)
    if isinstance(value, (list, tuple)):
        if value and all(isinstance(item, Property) for item in value):
            return PropertySuite(value, name=name)
        return PropertySuite([Property.from_dict(item) for item in value],
                             name=name)
    raise PropertyError(
        f"cannot interpret {value!r} as a property suite")
