"""Lightweight performance counters for the compiled execution pipeline.

One process-wide registry (:data:`PERF`) collects named counters and
timing observations from the hot paths added by the compiled pipeline:
state-machine compilation (``cosim.compiled_parts``, ``sm.compile_s``),
transform memoization (``mda.cache_hit`` / ``mda.cache_miss``) and the
parallel code generators (``codegen.<backend>.wall_s``).  The registry
is deliberately simple — plain dicts behind one lock — so recording a
counter costs a dict update, not a measurable fraction of the thing
being measured.

Usage::

    from repro.perf import PERF

    PERF.incr("mda.cache_hit")
    with PERF.timed("sm.compile_s"):
        compile_machine(machine)
    print(PERF.report())

``snapshot()`` returns plain data (safe to serialize), ``reset()``
clears everything (benchmarks call it between runs).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, Optional
from contextlib import contextmanager


class PerfRegistry:
    """Named counters plus min/max/total/count timing observations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._observations: Dict[str, Dict[str, float]] = {}

    # -- recording ------------------------------------------------------

    def incr(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the named counter (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def incr_many(self, amounts: Dict[str, float]) -> None:
        """Apply a batch of counter increments under one lock acquisition.

        The atomic flush half of per-thread aggregation: workers
        accumulate into a private dict (or use :meth:`batch`) and apply
        the whole batch at once, so N increments cost one lock
        round-trip instead of N and no update can be lost to
        interleaving.
        """
        with self._lock:
            counters = self._counters
            for name, amount in amounts.items():
                counters[name] = counters.get(name, 0) + amount

    @contextmanager
    def batch(self) -> Iterator[Dict[str, float]]:
        """Context manager yielding a private increment accumulator.

        Increment into the yielded dict (``acc["x"] = acc.get("x", 0) + 1``
        or via ``collections.Counter`` semantics) without touching the
        shared registry; on exit the batch is flushed atomically with
        :meth:`incr_many`.  Intended for worker threads on hot paths —
        ``generate_all_parallel`` workers and high-frequency trace
        subscribers."""
        accumulator: Dict[str, float] = {}
        try:
            yield accumulator
        finally:
            if accumulator:
                self.incr_many(accumulator)

    def observe(self, name: str, value: float) -> None:
        """Record one observation of a named quantity (e.g. seconds)."""
        with self._lock:
            stats = self._observations.get(name)
            if stats is None:
                self._observations[name] = {
                    "count": 1, "total": value, "min": value, "max": value,
                }
            else:
                stats["count"] += 1
                stats["total"] += value
                if value < stats["min"]:
                    stats["min"] = value
                if value > stats["max"]:
                    stats["max"] = value

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager observing the wall time of its body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def stats(self, name: str) -> Optional[Dict[str, float]]:
        """Copy of the stats dict for an observed quantity, or None."""
        with self._lock:
            stats = self._observations.get(name)
            return dict(stats) if stats else None

    def snapshot(self) -> Dict[str, Any]:
        """All counters and observations as plain nested dicts."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "observations": {name: dict(stats) for name, stats
                                 in self._observations.items()},
            }

    def reset(self) -> None:
        """Drop every counter and observation."""
        with self._lock:
            self._counters.clear()
            self._observations.clear()

    def report(self) -> str:
        """Human-readable multi-line summary (CLI ``--stats`` output)."""
        snap = self.snapshot()
        lines = []
        if snap["counters"]:
            lines.append("counters:")
            for name in sorted(snap["counters"]):
                value = snap["counters"][name]
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"  {name:40} {shown}")
        if snap["observations"]:
            lines.append("timings:")
            for name in sorted(snap["observations"]):
                stats = snap["observations"][name]
                mean = stats["total"] / stats["count"]
                lines.append(
                    f"  {name:40} n={int(stats['count'])} "
                    f"total={stats['total']:.6f} mean={mean:.6f} "
                    f"min={stats['min']:.6f} max={stats['max']:.6f}")
        return "\n".join(lines) if lines else "(no perf data recorded)"


#: The process-wide registry used by the library's instrumented paths.
PERF = PerfRegistry()
