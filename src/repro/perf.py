"""Lightweight performance counters for the compiled execution pipeline.

One process-wide registry (:data:`PERF`) collects named counters and
timing observations from the hot paths added by the compiled pipeline:
state-machine compilation (``cosim.compiled_parts``, ``sm.compile_s``),
transform memoization (``mda.cache_hit`` / ``mda.cache_miss``) and the
parallel code generators (``codegen.<backend>.wall_s``).  The registry
is deliberately simple — plain dicts behind one lock — so recording a
counter costs a dict update, not a measurable fraction of the thing
being measured.

Usage::

    from repro.perf import PERF

    PERF.incr("mda.cache_hit")
    with PERF.timed("sm.compile_s"):
        compile_machine(machine)
    PERF.hist("cosim.run_hist_s", 0.012)
    print(PERF.report())

``snapshot()`` returns plain data (safe to serialize) with every dict
deterministically key-sorted, so two runs recording the same series
serialize identically and ``--stats`` output is diffable.  ``reset()``
clears everything — counters, observations and histograms (benchmarks
call it between runs).

Histograms (PR 4) are *bounded*: a fixed bucket-boundary vector plus
one overflow slot, so memory is O(buckets) regardless of observation
count, and the p50/p95/p99 estimates (bucket upper bound at the
cumulative rank, clamped to the observed min/max) are deterministic —
the same observation sequence always yields the same export.

The batched engine (PR 6) reports its effectiveness here too, all
surfaced by the ``stats`` subcommand:

* ``batch.occupancy`` — observation of each batch group's lane count
  at build time (how wide the populations actually are);
* ``batch.fused_dispatches`` — count of fused delivery sweeps (one
  scheduler callback that drained a whole same-timestamp run);
* ``batch.events_per_dispatch`` — observation of how many messages
  each fused sweep delivered (mean ≫ 1 means coalescing is winning);
* ``campaign.model_builds`` / ``campaign.model_warm_hits`` /
  ``campaign.vectorized_seeds`` — the campaign runner's model warm-up
  memo and seed-vectorization activity.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple
from contextlib import contextmanager

#: Default histogram bucket upper bounds: a 1/2.5/5 decade ladder wide
#: enough for both sub-millisecond wall times and simulated durations.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    float(f"{mantissa}e{exponent}")
    for exponent in range(-6, 5)
    for mantissa in ("1", "2.5", "5"))


class PerfRegistry:
    """Named counters, timing observations, and bounded histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._observations: Dict[str, Dict[str, float]] = {}
        self._histograms: Dict[str, Dict[str, Any]] = {}

    # -- recording ------------------------------------------------------

    def incr(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the named counter (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def incr_many(self, amounts: Dict[str, float]) -> None:
        """Apply a batch of counter increments under one lock acquisition.

        The atomic flush half of per-thread aggregation: workers
        accumulate into a private dict (or use :meth:`batch`) and apply
        the whole batch at once, so N increments cost one lock
        round-trip instead of N and no update can be lost to
        interleaving.
        """
        with self._lock:
            counters = self._counters
            for name, amount in amounts.items():
                counters[name] = counters.get(name, 0) + amount

    @contextmanager
    def batch(self) -> Iterator[Dict[str, float]]:
        """Context manager yielding a private increment accumulator.

        Increment into the yielded dict (``acc["x"] = acc.get("x", 0) + 1``
        or via ``collections.Counter`` semantics) without touching the
        shared registry; on exit the batch is flushed atomically with
        :meth:`incr_many`.  Intended for worker threads on hot paths —
        ``generate_all_parallel`` workers and high-frequency trace
        subscribers."""
        accumulator: Dict[str, float] = {}
        try:
            yield accumulator
        finally:
            if accumulator:
                self.incr_many(accumulator)

    def observe(self, name: str, value: float) -> None:
        """Record one observation of a named quantity (e.g. seconds)."""
        with self._lock:
            stats = self._observations.get(name)
            if stats is None:
                self._observations[name] = {
                    "count": 1, "total": value, "min": value, "max": value,
                }
            else:
                stats["count"] += 1
                stats["total"] += value
                if value < stats["min"]:
                    stats["min"] = value
                if value > stats["max"]:
                    stats["max"] = value

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager observing the wall time of its body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def hist(self, name: str, value: float,
             buckets: Optional[Sequence[float]] = None) -> None:
        """Record ``value`` into the named bounded histogram.

        ``buckets`` (sorted upper bounds) is honoured only on the first
        observation of ``name``; later calls reuse the series' vector.
        Values above the last bound land in the overflow slot.
        """
        with self._lock:
            series = self._histograms.get(name)
            if series is None:
                bounds = tuple(buckets) if buckets is not None \
                    else DEFAULT_BUCKETS
                series = {
                    "buckets": bounds,
                    "counts": [0] * (len(bounds) + 1),
                    "count": 0, "sum": 0.0, "min": value, "max": value,
                }
                self._histograms[name] = series
            series["counts"][bisect_left(series["buckets"], value)] += 1
            series["count"] += 1
            series["sum"] += value
            if value < series["min"]:
                series["min"] = value
            if value > series["max"]:
                series["max"] = value

    def percentiles(self, name: str,
                    points: Sequence[float] = (50, 95, 99)
                    ) -> Optional[Dict[str, float]]:
        """Deterministic percentile estimates for a histogram series.

        Each estimate is the bucket upper bound at the cumulative rank,
        clamped to the observed ``[min, max]`` (the overflow slot
        answers with ``max``).  Returns None for an unknown series.
        """
        with self._lock:
            series = self._histograms.get(name)
            if series is None or not series["count"]:
                return None
            bounds = series["buckets"]
            counts = series["counts"]
            total = series["count"]
            low, high = series["min"], series["max"]
            estimates: Dict[str, float] = {}
            for point in points:
                rank = (point / 100.0) * total
                cumulative = 0
                estimate = high
                for index, count in enumerate(counts):
                    cumulative += count
                    if cumulative >= rank and count:
                        estimate = (bounds[index] if index < len(bounds)
                                    else high)
                        break
                estimates[f"p{point:g}"] = min(max(estimate, low), high)
            return estimates

    def hist_stats(self, name: str) -> Optional[Dict[str, Any]]:
        """Copy of a histogram series (buckets, counts, aggregates)."""
        with self._lock:
            series = self._histograms.get(name)
            if series is None:
                return None
            copied = dict(series)
            copied["counts"] = list(series["counts"])
            return copied

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def stats(self, name: str) -> Optional[Dict[str, float]]:
        """Copy of the stats dict for an observed quantity, or None."""
        with self._lock:
            stats = self._observations.get(name)
            return dict(stats) if stats else None

    def snapshot(self) -> Dict[str, Any]:
        """All counters, observations and histograms as plain data.

        Every dict — outer sections, series names, per-series stats —
        is key-sorted, so serializing two equal snapshots yields
        byte-identical text (``--stats`` diffability).  Histogram
        entries carry their deterministic p50/p95/p99 estimates.
        """
        with self._lock:
            histograms: Dict[str, Any] = {}
            for name in sorted(self._histograms):
                series = self._histograms[name]
                histograms[name] = {
                    "buckets": list(series["buckets"]),
                    "count": series["count"],
                    "counts": list(series["counts"]),
                    "max": series["max"],
                    "min": series["min"],
                    "sum": series["sum"],
                }
            snapshot = {
                "counters": {name: self._counters[name]
                             for name in sorted(self._counters)},
                "histograms": histograms,
                "observations": {
                    name: {key: self._observations[name][key]
                           for key in sorted(self._observations[name])}
                    for name in sorted(self._observations)},
            }
        for name, series in snapshot["histograms"].items():
            series.update(sorted(
                (self.percentiles(name) or {}).items()))
        return snapshot

    def reset(self) -> None:
        """Drop every counter, observation and histogram series."""
        with self._lock:
            self._counters.clear()
            self._observations.clear()
            self._histograms.clear()

    def report(self) -> str:
        """Human-readable multi-line summary (CLI ``--stats`` output)."""
        snap = self.snapshot()
        lines = []
        if snap["counters"]:
            lines.append("counters:")
            for name in sorted(snap["counters"]):
                value = snap["counters"][name]
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"  {name:40} {shown}")
        if snap["observations"]:
            lines.append("timings:")
            for name in sorted(snap["observations"]):
                stats = snap["observations"][name]
                mean = stats["total"] / stats["count"]
                lines.append(
                    f"  {name:40} n={int(stats['count'])} "
                    f"total={stats['total']:.6f} mean={mean:.6f} "
                    f"min={stats['min']:.6f} max={stats['max']:.6f}")
        if snap["histograms"]:
            lines.append("histograms:")
            for name in sorted(snap["histograms"]):
                series = snap["histograms"][name]
                lines.append(
                    f"  {name:40} n={series['count']} "
                    f"p50={series['p50']:.6f} p95={series['p95']:.6f} "
                    f"p99={series['p99']:.6f} max={series['max']:.6f}")
        return "\n".join(lines) if lines else "(no perf data recorded)"


#: The process-wide registry used by the library's instrumented paths.
PERF = PerfRegistry()
