"""Command-line interface: the tool face of the library.

Subcommands operate on XMI files written by :mod:`repro.xmi`::

    python -m repro info      model.xmi
    python -m repro validate  model.xmi
    python -m repro generate  model.xmi --backend vhdl -o build/
    python -m repro transform model.xmi --platform hw -o psm.xmi
    python -m repro simulate  model.xmi --top design::Top --until 100
    python -m repro simulate  model.xmi --top design::Top \
                              --faults campaign.json --seed 7
    python -m repro simulate  model.xmi --top design::Top \
                              --trace out.jsonl
    python -m repro simulate  model.xmi --top design::Top \
                              --coverage cov.json --profile out.folded \
                              --flight-recorder 256 --metrics perf.json
    python -m repro campaign  model.xmi --top design::Top \
                              --faults campaign.json --runs 16 \
                              --parallel 4 --journal sweep.jsonl --resume
    python -m repro simulate  model.xmi --top design::Top \
                              --store ~/.cache/repro
    python -m repro campaign  model.xmi --top design::Top \
                              --faults campaign.json --store build/store
    python -m repro store ls --store build/store --name Top
    python -m repro store gc --store build/store --max-age-s 86400
    python -m repro serve    state/ --workers 4 --store build/store
    python -m repro submit   model.xmi --top design::Top \
                              --faults campaign.json --runs 16 \
                              --socket state/service.sock --wait
    python -m repro status   --socket state/service.sock
    python -m repro result   job-000001 --socket state/service.sock
    python -m repro cancel   job-000001 --socket state/service.sock
    python -m repro stats perf.json --format prom
    python -m repro trace-to-sequence out.jsonl --name observed
    python -m repro diagram   model.xmi --kind class --scope design

Every command exits non-zero on failure, so the CLI slots into build
scripts (the "integration with a design process" of the paper's MDA
section).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import metamodel as mm
from . import xmi
from .errors import ReproError, SimulationError

# ---------------------------------------------------------------------------
# Exit codes.  Distinct and documented so the CLI slots into build
# scripts: anything above 2 is a *successful run with a bad verdict*,
# ordered by precedence (the highest applicable code wins).
# ---------------------------------------------------------------------------

#: Clean run, clean verdicts.
EXIT_OK = 0
#: Invalid input / infrastructure error (also argparse's usage code).
EXIT_ERROR = 2
#: The run survived but quarantined at least one part.
EXIT_QUARANTINED = 3
#: An incident hook fired (kernel incident post-mortem) without
#: quarantine or property violation.
EXIT_INCIDENT = 4
#: The online property checker recorded at least one temporal-property
#: violation — the system ran, but it ran *incorrectly*.  Highest
#: precedence: a violated property outranks quarantine and incidents.
EXIT_PROPERTY_VIOLATED = 5


def _load(path: str):
    document = xmi.read_file(path)
    if document.model is None:
        raise ReproError(f"{path} contains no model")
    return document


def _activate_store(args: argparse.Namespace):
    """Honor ``--store DIR``: activate (and export) the artifact store.

    Exporting ``REPRO_STORE`` makes spawned campaign workers and child
    tool invocations resolve the same store.  Without ``--store`` the
    active store (possibly auto-activated from the environment) is
    returned unchanged — None when persistence is off.
    """
    from .store import ArtifactStore, STORE_ENV, set_active_store
    path = getattr(args, "store_dir", "")
    if path:
        store = ArtifactStore(path)
        set_active_store(store)
        os.environ[STORE_ENV] = str(store.root)
        return store
    from .store import get_active_store
    return get_active_store()


def _register_model(store, document) -> None:
    """Index a loaded model in the store's registry (best effort)."""
    if store is None:
        return
    from .store import ModelRegistry
    ModelRegistry(store).register(document.model,
                                  profiles=document.profiles)


def cmd_info(args: argparse.Namespace) -> int:
    document = _load(args.model)
    model = document.model
    print(f"model: {model.name} ({model.element_count()} elements)")
    if document.profiles:
        print(f"profiles: {[p.name for p in document.profiles]}")
    for kind, count in sorted(model.summary().items()):
        print(f"  {kind:28} {count}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .validation import validate_model

    document = _load(args.model)
    report = validate_model(document.model)
    for finding in report.findings:
        print(finding)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_generate(args: argparse.Namespace) -> int:
    from .codegen import (
        VALIDATORS,
        generate_all_parallel,
        python_gen,
        systemc,
        verilog,
        vhdl,
    )
    from .codegen.testbench import (
        generate_verilog_testbench,
        generate_vhdl_testbench,
    )

    generators = {
        "vhdl": vhdl.generate,
        "verilog": verilog.generate,
        "systemc": systemc.generate,
        "python": lambda scope: {"generated.py":
                                 python_gen.generate_module(scope)},
    }
    document = _load(args.model)
    if args.backend == "all":
        # every backend, fanned out over the parallel pipeline
        per_backend = generate_all_parallel(document.model,
                                            executor=args.executor)
    else:
        per_backend = {args.backend: generators[args.backend](
            document.model)}
    if args.testbench:
        from .codegen.base import hardware_components

        for backend in per_backend:
            if backend not in ("vhdl", "verilog"):
                continue
            bench_generator = (generate_vhdl_testbench
                               if backend == "vhdl"
                               else generate_verilog_testbench)
            suffix = ".vhd" if backend == "vhdl" else ".v"
            for component in hardware_components(document.model):
                bench_name = f"{component.name.lower()}_tb{suffix}"
                per_backend[backend][bench_name] = \
                    bench_generator(component)
    total = 0
    failures = 0
    for backend, files in per_backend.items():
        directory = (args.output if len(per_backend) == 1
                     else os.path.join(args.output, backend))
        os.makedirs(directory, exist_ok=True)
        for filename, text in sorted(files.items()):
            issues = VALIDATORS[backend](text)
            target = os.path.join(directory, filename)
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
            status = "ok" if not issues else f"INVALID: {issues}"
            if issues:
                failures += 1
            total += 1
            print(f"  {target}  ({len(text.splitlines())} lines)  "
                  f"{status}")
    print(f"{total} file(s) generated, {failures} invalid")
    return 0 if not failures else 1


def cmd_transform(args: argparse.Namespace) -> int:
    from .mda import hardware_transformation, software_transformation

    store = _activate_store(args)
    document = _load(args.model)
    _register_model(store, document)
    transformation = (hardware_transformation() if args.platform == "hw"
                      else software_transformation())
    if store is not None:
        # the store-backed build-graph path: warm PSM artifacts are
        # deserialized instead of re-running the rule sweep
        result = transformation.transform_cached(
            document.model, profiles=document.profiles)
    else:
        result = transformation.transform(document.model,
                                          profiles=document.profiles)
    print(f"applied {result.rules_applied} rule application(s); "
          f"completeness {result.completeness():.0%}")
    xmi.write_file(args.output, result.psm, profiles=document.profiles)
    print(f"PSM written to {args.output}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .engine import (
        JsonlTraceWriter,
        TraceBus,
        attach_perf_counters,
    )
    from .faults import FaultCampaign
    from .simulation import SystemSimulation

    store = _activate_store(args)
    document = _load(args.model)
    _register_model(store, document)
    top = document.model.resolve(args.top, mm.Component)
    campaign = None
    if args.faults:
        campaign = FaultCampaign.from_file(args.faults)
    suite = None
    if args.properties_file:
        from .properties import PropertySuite

        suite = PropertySuite.load(args.properties_file)
    # Subscribers attach to a pre-made bus so events fired during
    # construction (a part's initial run-to-completion step may already
    # send) land in the stream too.
    bus = TraceBus()
    trace_stream = None
    writer = None
    # ``--trace -`` streams the JSONL onto stdout; every informational
    # print then moves to stderr so the stream stays machine-parseable
    # (pipe it straight into trace-to-sequence or jq).
    stream_trace = args.trace_file == "-"
    out = sys.stderr if stream_trace else sys.stdout
    if args.trace_file:
        trace_stream = (sys.stdout if stream_trace
                        else open(args.trace_file, "w", encoding="utf-8"))
        writer = JsonlTraceWriter(trace_stream, bus=bus)
    if args.stats:
        # the PERF cosim counters are just one more subscriber
        attach_perf_counters(bus, prefix="trace")
    flight_capacity = args.flight_recorder
    flight_dump = args.flight_dump
    if flight_capacity and not flight_dump:
        flight_dump = "postmortem.jsonl"
    incidents: List[str] = []
    try:
        with SystemSimulation(top, quantum=args.quantum,
                              compile=args.compiled,
                              engine=args.engine,
                              batch_min=args.batch,
                              faults=campaign, fault_seed=args.seed,
                              on_part_error=args.on_part_error,
                              checkpoint_interval=args.checkpoint_interval,
                              bus=bus,
                              coverage=bool(args.coverage_file),
                              profile=bool(args.profile_file),
                              flight_recorder=flight_capacity,
                              flight_dump=flight_dump,
                              causality=bool(args.spans_file
                                             or args.perfetto_file),
                              properties=suite,
                              on_violation=args.on_violation) as simulation:
            if simulation.engine_mode == "batched" \
                    and simulation.batch_degraded:
                print(f"batched: {len(simulation.batch_degraded)} "
                      f"part(s) fell back to their serial engine:",
                      file=sys.stderr)
                for name, reason in sorted(
                        simulation.batch_degraded.items()):
                    print(f"  {name}: {reason}", file=sys.stderr)
            simulation.incident_hooks.append(
                lambda reason, detail: incidents.append(reason))
            try:
                simulation.run(until=args.until, timeout=args.timeout)
            except SimulationError as error:
                # kernel incident (watchdog, deadlock, overflow, …):
                # fall through to the post-mortem prints and the
                # distinct exit code instead of the generic error exit
                print(f"kernel incident: {type(error).__name__}: {error}",
                      file=sys.stderr)
            print(f"simulated {args.until} time units: "
                  f"{simulation.messages_delivered} message(s) delivered, "
                  f"{simulation.messages_dropped} dropped", file=out)
            for name, states in simulation.state_snapshot().items():
                print(f"  {name:20} {', '.join(states) or '(no behavior)'}",
                      file=out)
            if args.compiled or args.engine:
                for name, verdict in sorted(
                        simulation.compile_report.items()):
                    print(f"  {name:20} [{verdict}]", file=out)
            if campaign is not None or simulation.resilience.part_failures \
                    or simulation.resilience.kernel_incidents:
                print("resilience report:", file=out)
                print(simulation.resilience.to_json(), file=out)
            _write_observability(args, simulation, out)
            _write_causality(args, simulation, out)
            property_report = simulation.property_report()
            if property_report is not None:
                for name, entry in sorted(
                        property_report.properties.items()):
                    mark = ("VIOLATED" if entry["verdict"] == "violated"
                            else "pass")
                    print(f"  property {name:24} [{mark}]"
                          + (f" ({len(entry['violations'])} violation(s), "
                             f"first at t="
                             f"{entry['time_to_violation']})"
                             if entry["violations"] else ""), file=out)
                if args.property_report_file:
                    with open(args.property_report_file, "w",
                              encoding="utf-8") as handle:
                        handle.write(property_report.to_json() + "\n")
                    print(f"properties: {property_report.verdict} -> "
                          f"{args.property_report_file}", file=out)
    finally:
        if trace_stream is not None and not stream_trace:
            trace_stream.close()
        elif stream_trace:
            sys.stdout.flush()
    if writer is not None:
        print(f"trace: {writer.lines_written} event(s) -> "
              f"{'stdout' if stream_trace else args.trace_file}",
              file=out)
    # Distinct exit codes make degraded runs scriptable, ordered by
    # precedence: a violated temporal property (the run was *wrong*)
    # outranks a survived-but-wounded simulation (quarantined part),
    # which outranks a fired incident hook; a clean run exits 0.
    if property_report is not None \
            and property_report.verdict == "violated":
        print(f"exit {EXIT_PROPERTY_VIOLATED}: "
              f"{property_report.total_violations} property "
              f"violation(s)", file=sys.stderr)
        return EXIT_PROPERTY_VIOLATED
    if simulation.quarantined_parts:
        print(f"exit {EXIT_QUARANTINED}: part(s) quarantined: "
              f"{', '.join(simulation.quarantined_parts)}",
              file=sys.stderr)
        return EXIT_QUARANTINED
    if incidents:
        print(f"exit {EXIT_INCIDENT}: incident hook(s) fired: "
              f"{', '.join(sorted(set(incidents)))}", file=sys.stderr)
        return EXIT_INCIDENT
    return EXIT_OK


def _write_observability(args: argparse.Namespace, simulation,
                         out=None) -> None:
    """Write the coverage / profile / metrics artifacts after a run."""
    out = out if out is not None else sys.stdout
    suite = simulation.observability
    if args.coverage_file:
        report = suite.coverage_report()
        with open(args.coverage_file, "w", encoding="utf-8") as handle:
            handle.write(report.to_json(indent=2) + "\n")
        print(f"coverage: {report.total_percent():.2f}% of "
              f"{report.total_bins()} bin(s) -> {args.coverage_file}",
              file=out)
    if args.profile_file:
        lines = suite.profile_lines(metric=args.profile_metric)
        with open(args.profile_file, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"profile: {len(lines)} stack(s) -> {args.profile_file}",
              file=out)
    if args.flight_recorder and suite is not None:
        recorder = suite.recorder
        print(f"flight recorder: {len(recorder.events)}/"
              f"{recorder.capacity} event(s) buffered, "
              f"{recorder.dumps_written} dump(s) written", file=out)
    if args.metrics_file:
        from .observability import to_json as metrics_to_json
        from .perf import PERF

        coverage = (suite.coverage.report()
                    if suite is not None and suite.coverage is not None
                    else None)
        with open(args.metrics_file, "w", encoding="utf-8") as handle:
            handle.write(metrics_to_json(PERF.snapshot(),
                                         coverage=coverage) + "\n")
        print(f"metrics: snapshot -> {args.metrics_file}", file=out)


def _write_causality(args: argparse.Namespace, simulation,
                     out=None) -> None:
    """Write the span / Perfetto exports after a run (PR 9)."""
    if not (args.spans_file or args.perfetto_file):
        return
    out = out if out is not None else sys.stdout
    causal = simulation.observability.causal
    if args.spans_file:
        with open(args.spans_file, "w", encoding="utf-8") as handle:
            handle.write(causal.to_span_jsonl())
        print(f"spans: {len(causal.events)} record(s), "
              f"{len(causal.roots())} causal root(s) -> "
              f"{args.spans_file}", file=out)
    if args.perfetto_file:
        with open(args.perfetto_file, "w", encoding="utf-8") as handle:
            handle.write(causal.to_perfetto() + "\n")
        print(f"perfetto: trace -> {args.perfetto_file} "
              f"(open in ui.perfetto.dev)", file=out)


def cmd_campaign(args: argparse.Namespace) -> int:
    from .faults import CampaignSpec, FaultCampaign, run_campaign

    store = _activate_store(args)
    if store is not None:
        _register_model(store, _load(args.model))
    if args.seeds:
        try:
            seeds = [int(token) for token in
                     args.seeds.replace(",", " ").split()]
        except ValueError:
            raise ReproError(
                f"--seeds wants comma-separated integers, "
                f"got {args.seeds!r}")
    else:
        base = 0
        if args.faults:
            base = FaultCampaign.from_file(args.faults).seed
        seeds = [base + offset for offset in range(args.runs)]
    name = "campaign"
    if args.faults:
        name = FaultCampaign.from_file(args.faults).name
    obs = bool(args.obs_report_file or args.obs_html_file)
    spec = CampaignSpec(seeds=seeds, model=args.model, top=args.top,
                        campaign=args.faults or None,
                        until=args.until, quantum=args.quantum,
                        compiled=args.compiled,
                        engine=args.engine,
                        on_part_error=args.on_part_error,
                        checkpoint_interval=args.checkpoint_interval,
                        coverage=bool(args.coverage_file),
                        name=name,
                        properties=args.properties_file or None,
                        on_violation=args.on_violation,
                        obs=obs)
    result = run_campaign(spec, workers=args.parallel,
                          journal=args.journal or None,
                          resume=args.resume,
                          run_timeout=args.run_timeout,
                          max_retries=args.retries,
                          vectorize=args.vectorize,
                          progress=True if args.progress else None)
    resilience = result.resilience()
    print(f"campaign {result.name!r}: {len(result.rows)}/{len(seeds)} "
          f"seed(s) completed ({result.mode}, "
          f"{result.workers_used} worker(s))")
    if result.resumed_seeds:
        print(f"  resumed from journal: "
              f"{len(result.resumed_seeds)} seed(s) skipped")
    print(f"  injections: {resilience.total_injections}, "
          f"part failures: {len(resilience.part_failures)}, "
          f"quarantined: {len(resilience.quarantined)}")
    for failure in result.failures:
        print(f"  FAILED seed {failure['seed']} after "
              f"{failure['attempts']} attempt(s): {failure['error']}",
              file=sys.stderr)
    if args.report_file:
        with open(args.report_file, "w", encoding="utf-8") as handle:
            handle.write(result.to_json() + "\n")
        print(f"report: merged campaign result -> {args.report_file}")
    if args.coverage_file:
        merged = result.coverage()
        if merged is not None:
            with open(args.coverage_file, "w",
                      encoding="utf-8") as handle:
                handle.write(merged.to_json(indent=2) + "\n")
            print(f"coverage: {merged.total_percent():.2f}% of "
                  f"{merged.total_bins()} bin(s) -> "
                  f"{args.coverage_file}")
    if obs:
        from .observability import (
            ObservabilityReport,
            campaign_fingerprint,
        )

        obs_report = ObservabilityReport.from_result(result)
        if args.obs_report_file:
            with open(args.obs_report_file, "w",
                      encoding="utf-8") as handle:
                handle.write(obs_report.to_json() + "\n")
            print(f"observability: {len(obs_report.seeds)} seed(s), "
                  f"{len(obs_report.hot_frames)} hot frame(s) -> "
                  f"{args.obs_report_file}")
        if args.obs_html_file:
            with open(args.obs_html_file, "w",
                      encoding="utf-8") as handle:
                handle.write(obs_report.to_html() + "\n")
            print(f"observability: HTML -> {args.obs_html_file}")
        if store is not None:
            key = campaign_fingerprint(spec)
            store.save("report", key, obs_report.to_dict(),
                       meta={"campaign": result.name,
                             "seeds": len(obs_report.seeds)},
                       label=f"obs-report {result.name}")
            print(f"observability: stored as report/{key}")
    aggregated = result.properties()
    if aggregated is not None:
        import json as json_module

        for name_, entry in sorted(aggregated["properties"].items()):
            print(f"  property {name_:24} pass rate "
                  f"{entry['pass_rate']:6.2f}% "
                  f"({entry['checked'] - len(entry['violated_seeds'])}"
                  f"/{entry['checked']} seed(s), "
                  f"{entry['violations']} violation(s))")
        if args.property_report_file:
            with open(args.property_report_file, "w",
                      encoding="utf-8") as handle:
                handle.write(json_module.dumps(aggregated, indent=2,
                                               sort_keys=True) + "\n")
            print(f"properties: {aggregated['verdict']} -> "
                  f"{args.property_report_file}")
    # Infrastructure failure outranks verdicts (the sweep is incomplete);
    # a completed sweep with violated properties exits 5, like simulate.
    if not result.ok:
        return 1
    if aggregated is not None and aggregated["verdict"] == "violated":
        print(f"exit {EXIT_PROPERTY_VIOLATED}: "
              f"{aggregated['total_violations']} property violation(s) "
              f"across {len(aggregated['seeds'])} seed(s)",
              file=sys.stderr)
        return EXIT_PROPERTY_VIOLATED
    return EXIT_OK


def _default_socket(args: argparse.Namespace) -> str:
    """Resolve the service socket: --socket, then $REPRO_SOCKET."""
    path = getattr(args, "socket_path", "")
    if path:
        return path
    path = os.environ.get("REPRO_SOCKET", "")
    if path:
        return path
    raise ReproError(
        "no service socket: pass --socket PATH or set REPRO_SOCKET "
        "(the daemon prints its socket path on startup)")


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the simulation service daemon."""
    import signal as signal_module

    from .service import ServiceServer, SimulationService

    store = _activate_store(args)
    socket_path = args.socket_path \
        or os.path.join(args.state_dir, "service.sock")
    service = SimulationService(
        args.state_dir,
        workers=args.workers,
        lease_duration=args.lease_duration,
        job_timeout=args.job_timeout,
        max_depth=args.max_depth,
        admission=args.admission,
        budget=args.budget,
        retry_backoff=args.retry_backoff,
        store=store)
    server = ServiceServer(service, socket_path)
    recovered = service.last_recovery
    if any(recovered.values()):
        print(f"recovered: {recovered['requeued']} requeued, "
              f"{recovered['republished']} republished, "
              f"{recovered['quarantined']} quarantined")
    server.bind()

    def _drain_handler(signum, frame):  # noqa: ARG001
        server.request_stop()

    previous = {}
    for signum in (signal_module.SIGTERM, signal_module.SIGINT):
        previous[signum] = signal_module.signal(signum, _drain_handler)
    print(f"serving on {socket_path} "
          f"({service.workers} worker(s), "
          f"queue depth <= {service.max_depth}, "
          f"admission {service.admission})")
    sys.stdout.flush()
    try:
        server.serve_forever()
    finally:
        for signum, handler in previous.items():
            signal_module.signal(signum, handler)
    print("drained; queue state snapshotted")
    return EXIT_OK


def _client(args: argparse.Namespace):
    from .service import ServiceClient

    return ServiceClient(_default_socket(args))


def cmd_submit(args: argparse.Namespace) -> int:
    """``repro submit``: enqueue a campaign on the running daemon."""
    from .faults import CampaignSpec, FaultCampaign

    if args.seeds:
        try:
            seeds = [int(token) for token in
                     args.seeds.replace(",", " ").split()]
        except ValueError:
            raise ReproError(
                f"--seeds wants comma-separated integers, "
                f"got {args.seeds!r}")
    else:
        base = 0
        if args.faults:
            base = FaultCampaign.from_file(args.faults).seed
        seeds = [base + offset for offset in range(args.runs)]
    name = args.name
    if not name:
        name = (FaultCampaign.from_file(args.faults).name
                if args.faults else "campaign")
    spec = CampaignSpec(seeds=seeds, model=args.model, top=args.top,
                        campaign=args.faults or None,
                        until=args.until, quantum=args.quantum,
                        engine=args.engine,
                        on_part_error=args.on_part_error,
                        name=name,
                        properties=args.properties_file or None,
                        on_violation=args.on_violation)
    client = _client(args)
    row = client.submit(spec.to_dict())
    verb = "coalesced into" if row.get("coalesced") else "submitted as"
    print(f"{verb} {row['job_id']} "
          f"(state {row['state']}, fingerprint {row['fingerprint']})")
    if not args.wait:
        return EXIT_OK
    row = client.wait(row["job_id"], timeout=args.timeout)
    return _print_job_outcome(client, row)


def _print_job_outcome(client, row) -> int:
    """Render a terminal job row (+ payload for done jobs)."""
    job_id = row["job_id"]
    if row["state"] != "done":
        print(f"{job_id}: {row['state']} after {row['attempts']} "
              f"attempt(s)"
              + (f": {row['error']}" if row.get("error") else ""),
              file=sys.stderr)
        return EXIT_QUARANTINED if row["state"] == "quarantined" \
            else 1
    payload = client.result(job_id)
    origin = "cache" if row.get("cached") else "simulation"
    result = payload.get("result", {})
    completed = result.get("completed", [])
    failures = result.get("failures", [])
    print(f"{job_id}: done ({origin}), "
          f"{len(completed)} seed(s) completed, "
          f"{len(failures)} failed")
    return EXIT_OK if payload.get("ok") else 1


def cmd_status(args: argparse.Namespace) -> int:
    """``repro status``: one job's row, or the whole queue."""
    import json as json_module

    client = _client(args)
    if args.job_id:
        row = client.status(args.job_id)
        print(json_module.dumps(row, indent=2, sort_keys=True))
        return EXIT_OK
    status = client.status()
    for row in status["jobs"]:
        cached = " (cached)" if row.get("cached") else ""
        error = f"  {row['error']}" if row.get("error") else ""
        print(f"  {row['job_id']}  {row['state']:12} "
              f"attempts={row['attempts']} name={row['name']}"
              f"{cached}{error}")
    print(f"{len(status['jobs'])} job(s), depth {status['queue_depth']},"
          f" {status['leases']} lease(s)"
          + (", draining" if status["draining"] else ""))
    return EXIT_OK


def cmd_result(args: argparse.Namespace) -> int:
    """``repro result``: print (or save) a finished job's payload."""
    import json as json_module

    client = _client(args)
    if args.wait:
        row = client.wait(args.job_id, timeout=args.timeout)
        if row["state"] != "done":
            return _print_job_outcome(client, row)
    payload = client.result(args.job_id)
    text = json_module.dumps(payload, sort_keys=True,
                             separators=(",", ":"))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"result: {args.job_id} -> {args.output}")
    else:
        print(text)
    return EXIT_OK if payload.get("ok") else 1


def cmd_cancel(args: argparse.Namespace) -> int:
    """``repro cancel``: cancel a queued or running job."""
    client = _client(args)
    row = client.cancel(args.job_id)
    print(f"{row['job_id']}: {row['state']}")
    return EXIT_OK


def cmd_store(args: argparse.Namespace) -> int:
    """``repro store ls|info|gc``: inspect the artifact store."""
    import json as json_module

    from .store import ArtifactStore, ModelRegistry

    store = ArtifactStore(args.store_dir or None)
    if args.action == "info":
        print(json_module.dumps(store.info(), indent=2, sort_keys=True))
        return 0
    if args.action == "gc":
        removed = store.gc(max_age_s=args.max_age_s, kind=args.kind,
                           dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        for kind, key in removed:
            print(f"  {verb} {kind}/{key}")
        print(f"{verb} {len(removed)} artifact(s) from {store.root}")
        return 0
    # ls — either a registry query or a raw artifact listing
    if args.name or args.stereotype or args.profile_query:
        registry = ModelRegistry(store)
        records = registry.search(name=args.name or None,
                                  stereotype=args.stereotype or None,
                                  profile=args.profile_query or None)
        for record in records:
            print(f"  {record['name']:24} fp={record['fingerprint']} "
                  f"machines={len(record['machines'])} "
                  f"stereotypes={record['stereotypes']} "
                  f"profiles={record['profiles']}")
        print(f"{len(records)} model(s) matched in {store.root}")
        return 0
    entries = store.ls(args.kind)
    for entry in entries:
        flag = "  CORRUPT" if entry.get("corrupt") else ""
        meta = entry.get("meta", {})
        label = meta.get("machine") or meta.get("component") \
            or meta.get("name") or meta.get("transformation") or ""
        label = f" {label}" if label else ""
        print(f"  {entry['kind']:10} {entry['key']} "
              f"{entry['bytes']:>8}B age={entry['age_s']:.0f}s"
              f"{label}{flag}")
    print(f"{len(entries)} artifact(s) in {store.root}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .observability import to_json as metrics_to_json, to_prometheus

    coverage = None
    if args.snapshot:
        try:
            with open(args.snapshot, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except ValueError as error:
            raise ReproError(
                f"{args.snapshot}: not a JSON metrics snapshot: "
                f"{error}") from error
        if isinstance(payload, dict) and "perf" in payload:
            # a simulate --metrics file: snapshot under "perf",
            # coverage (when recorded) alongside it
            snapshot = payload["perf"]
            coverage = payload.get("coverage")
        else:
            snapshot = payload
    else:
        from .perf import PERF

        snapshot = PERF.snapshot()
    if args.coverage_file:
        try:
            with open(args.coverage_file, "r", encoding="utf-8") as handle:
                coverage = json.load(handle)
        except ValueError as error:
            raise ReproError(
                f"{args.coverage_file}: not a JSON coverage report: "
                f"{error}") from error
    if args.format == "prom":
        sys.stdout.write(to_prometheus(snapshot, coverage=coverage))
    else:
        print(metrics_to_json(snapshot, coverage=coverage))
    return 0


def cmd_trace_to_sequence(args: argparse.Namespace) -> int:
    import json
    from contextlib import nullcontext

    from .diagrams import render_interaction
    from .interactions import interaction_from_trace

    source = ("stdin" if args.trace == "-" else args.trace)
    opener = (nullcontext(sys.stdin) if args.trace == "-"
              else open(args.trace, "r", encoding="utf-8"))
    events = []
    with opener as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise ReproError(
                    f"{source}:{line_number}: not a JSON trace "
                    f"record: {error}") from error
            # synthetic engine meta-events (batched parts degrading to
            # their serial engine at t=0) are bookkeeping, not traffic
            if record.get("kind") == "engine_degraded":
                continue
            if args.part and record.get("part") not in args.part \
                    and record.get("sender") not in args.part:
                continue
            if args.signal and record.get("signal") not in args.signal:
                continue
            events.append(record)
    if not events:
        raise ReproError(
            f"{source}: no trace events"
            + (" matched the --part/--signal filters"
               if args.part or args.signal else
               " — is this a JSONL trace written by simulate --trace?"))
    interaction = interaction_from_trace(args.name, events,
                                         include_env=args.include_env,
                                         limit=args.limit)
    print(render_interaction(interaction))
    return 0


def cmd_diagram(args: argparse.Namespace) -> int:
    from . import statemachines as st
    from .diagrams import (
        class_diagram,
        component_diagram,
        render,
        render_state_machine,
    )

    document = _load(args.model)
    scope = document.model
    if args.scope:
        scope = document.model.resolve(args.scope, mm.Package)
    if args.kind == "class":
        print(render(class_diagram(scope)))
    elif args.kind == "component":
        print(render(component_diagram(scope)))
    elif args.kind == "statemachine":
        machines = scope.descendants_of_type(st.StateMachine)
        if not machines:
            raise ReproError(f"no state machines under {scope.name!r}")
        for machine in machines:
            print(render_state_machine(machine))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UML 2.0 / SoC model toolchain (validate, "
                    "transform, generate, simulate)")
    parser.add_argument("--stats", action="store_true",
                        help="print perf counters (compile times, cache "
                             "hits, per-backend wall time) after the "
                             "command")
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="summarize a model file")
    info.add_argument("model")
    info.set_defaults(handler=cmd_info)

    validate = commands.add_parser("validate",
                                   help="run well-formedness rules")
    validate.add_argument("model")
    validate.set_defaults(handler=cmd_validate)

    generate = commands.add_parser("generate", help="generate code")
    generate.add_argument("model")
    generate.add_argument("--backend", default="vhdl",
                          choices=("vhdl", "verilog", "systemc",
                                   "python", "all"))
    generate.add_argument("--executor", default="auto",
                          choices=("auto", "thread", "process",
                                   "sequential"),
                          help="pool for --backend all (default: size "
                               "heuristic)")
    generate.add_argument("--testbench", action="store_true",
                          help="also emit a testbench per component "
                               "(vhdl/verilog)")
    generate.add_argument("-o", "--output", default="generated")
    generate.set_defaults(handler=cmd_generate)

    transform = commands.add_parser("transform",
                                    help="PIM -> PSM (MDA mapping)")
    transform.add_argument("model")
    transform.add_argument("--platform", default="hw",
                           choices=("hw", "sw"))
    transform.add_argument("-o", "--output", default="psm.xmi")
    transform.add_argument("--store", default="", dest="store_dir",
                           metavar="DIR",
                           help="artifact store for warm PSM artifacts "
                                "(default: $REPRO_STORE when set)")
    transform.set_defaults(handler=cmd_transform)

    simulate = commands.add_parser("simulate",
                                   help="cosimulate a top component")
    simulate.add_argument("model")
    simulate.add_argument("--top", required=True,
                          help="qualified name, e.g. design::Top")
    simulate.add_argument("--until", type=float, default=100.0)
    simulate.add_argument("--quantum", type=float, default=1.0)
    simulate.add_argument("--compiled", action="store_true",
                          help="compile state machines to dispatch "
                               "tables (interpreter fallback per part)")
    simulate.add_argument("--engine", default=None,
                          choices=("interpreted", "compiled", "batched"),
                          help="execution engine (overrides --compiled; "
                               "batched runs identical parts through "
                               "one shared dispatch table, degrading "
                               "singletons to their serial engine)")
    simulate.add_argument("--batch", type=int, default=2, metavar="N",
                          help="minimum identical-part population for "
                               "a batch group under --engine batched "
                               "(default 2)")
    simulate.add_argument("--faults", default="",
                          help="fault campaign JSON file to inject "
                               "(see docs/FAULTS.md)")
    simulate.add_argument("--seed", type=int, default=None,
                          help="override the campaign's RNG seed")
    simulate.add_argument("--on-part-error", default="raise",
                          choices=("raise", "quarantine", "restart",
                                   "restore"),
                          dest="on_part_error",
                          help="policy when a part's behavior raises "
                               "(restore rolls back to the last "
                               "checkpoint)")
    simulate.add_argument("--checkpoint-interval", type=float,
                          default=None, dest="checkpoint_interval",
                          metavar="T",
                          help="take per-part recovery snapshots every "
                               "T simulated time units")
    simulate.add_argument("--timeout", type=float, default=None,
                          help="wall-clock watchdog in seconds")
    simulate.add_argument("--trace", default="", dest="trace_file",
                          metavar="PATH",
                          help="stream every TraceEvent as JSON Lines "
                               "into PATH, or '-' for stdout (see "
                               "docs/TRACING.md)")
    simulate.add_argument("--spans", default="", dest="spans_file",
                          metavar="PATH",
                          help="causal span tracing: write the "
                               "provenance forest as JSONL span "
                               "records (see docs/OBSERVABILITY.md)")
    simulate.add_argument("--perfetto", default="", dest="perfetto_file",
                          metavar="PATH",
                          help="causal span tracing: write a "
                               "Chrome/Perfetto trace_event JSON (one "
                               "track per part, flow arrows for "
                               "cross-part causality)")
    simulate.add_argument("--coverage", default="", dest="coverage_file",
                          metavar="PATH",
                          help="collect functional coverage and write "
                               "the report JSON to PATH (see "
                               "docs/OBSERVABILITY.md)")
    simulate.add_argument("--profile", default="", dest="profile_file",
                          metavar="PATH",
                          help="profile simulated time per part/state "
                               "and write collapsed stacks (flamegraph "
                               "input) to PATH")
    simulate.add_argument("--profile-metric", default="time",
                          choices=("time", "steps"),
                          dest="profile_metric",
                          help="what --profile attributes: simulated "
                               "time or step counts")
    simulate.add_argument("--flight-recorder", type=int, default=0,
                          dest="flight_recorder", metavar="N",
                          help="keep the last N trace events in a ring "
                               "and auto-dump a JSONL post-mortem on "
                               "kernel errors / quarantines")
    simulate.add_argument("--flight-dump", default="", dest="flight_dump",
                          metavar="PATH",
                          help="where the post-mortem goes (default: "
                               "postmortem.jsonl)")
    simulate.add_argument("--metrics", default="", dest="metrics_file",
                          metavar="PATH",
                          help="write the perf snapshot (+ coverage, if "
                               "collected) as JSON for 'repro stats'")
    simulate.add_argument("--properties", default="",
                          dest="properties_file", metavar="PATH",
                          help="check a temporal-property suite "
                               "(props.json) online during the run; a "
                               "violated property exits 5 (see "
                               "docs/PROPERTIES.md)")
    simulate.add_argument("--property-report", default="",
                          dest="property_report_file", metavar="PATH",
                          help="write the per-run PropertyReport JSON")
    simulate.add_argument("--on-violation", default="incident",
                          choices=("record", "incident", "supervise"),
                          dest="on_violation",
                          help="what a property violation triggers "
                               "beyond the report: incident hooks "
                               "(flight-recorder post-mortem; default) "
                               "or supervisor escalation of the "
                               "witnessing part")
    simulate.add_argument("--store", default="", dest="store_dir",
                          metavar="DIR",
                          help="artifact store: pull warm compiled "
                               "artifacts by fingerprint and persist "
                               "cold builds (default: $REPRO_STORE "
                               "when set)")
    simulate.set_defaults(handler=cmd_simulate)

    campaign = commands.add_parser(
        "campaign",
        help="sweep a fault campaign over many seeds (crash-tolerant, "
             "resumable)")
    campaign.add_argument("model")
    campaign.add_argument("--top", required=True,
                          help="qualified name, e.g. design::Top")
    campaign.add_argument("--faults", default="",
                          help="fault campaign JSON file swept per seed")
    campaign.add_argument("--seeds", default="",
                          help="explicit comma-separated seed list "
                               "(overrides --runs)")
    campaign.add_argument("--runs", type=int, default=1,
                          help="number of seeds, counted up from the "
                               "campaign's base seed")
    campaign.add_argument("--until", type=float, default=100.0)
    campaign.add_argument("--quantum", type=float, default=1.0)
    campaign.add_argument("--engine", default=None,
                          choices=("interpreted", "compiled", "batched"),
                          help="execution engine for every seed "
                               "(overrides --compiled)")
    campaign.add_argument("--vectorize", action="store_true",
                          help="interleave all seeds in one process "
                               "over a single parsed/compiled model "
                               "(mutually exclusive with --parallel)")
    campaign.add_argument("--compiled", action="store_true",
                          help="compile state machines to dispatch "
                               "tables")
    campaign.add_argument("--on-part-error", default="raise",
                          choices=("raise", "quarantine", "restart",
                                   "restore"),
                          dest="on_part_error",
                          help="per-seed degradation policy")
    campaign.add_argument("--checkpoint-interval", type=float,
                          default=None, dest="checkpoint_interval",
                          metavar="T",
                          help="per-part recovery snapshot period "
                               "(simulated time)")
    campaign.add_argument("--parallel", type=int, default=0, metavar="N",
                          help="fan seeds over N worker processes "
                               "(0/1: serial in-process)")
    campaign.add_argument("--journal", default="", metavar="PATH",
                          help="append a JSONL row per completed seed "
                               "(enables --resume)")
    campaign.add_argument("--resume", action="store_true",
                          help="skip seeds already completed in the "
                               "--journal file")
    campaign.add_argument("--run-timeout", type=float, default=None,
                          dest="run_timeout", metavar="S",
                          help="wall-clock budget per seed; hung "
                               "workers are killed and retried")
    campaign.add_argument("--retries", type=int, default=2,
                          help="infrastructure retries per seed "
                               "(crashes/timeouts; sim errors are "
                               "results, not retried)")
    campaign.add_argument("--report", default="", dest="report_file",
                          metavar="PATH",
                          help="write the merged campaign result JSON")
    campaign.add_argument("--obs-report", default="",
                          dest="obs_report_file", metavar="PATH",
                          help="collect full observability on every "
                               "seed (coverage + profiler + causal "
                               "index) and write the merged cross-seed "
                               "report JSON; stored as a 'report' "
                               "artifact when a store is active")
    campaign.add_argument("--obs-html", default="",
                          dest="obs_html_file", metavar="PATH",
                          help="also render the observability report "
                               "as a self-contained HTML page")
    campaign.add_argument("--progress", action="store_true",
                          help="live progress line on stderr (seeds "
                               "done/running/failed, events/s, ETA) "
                               "fed by worker heartbeats over a pipe")
    campaign.add_argument("--coverage", default="", dest="coverage_file",
                          metavar="PATH",
                          help="collect per-seed functional coverage "
                               "and write the merged report JSON")
    campaign.add_argument("--properties", default="",
                          dest="properties_file", metavar="PATH",
                          help="check a temporal-property suite "
                               "(props.json) on every seed; any "
                               "violation exits 5")
    campaign.add_argument("--property-report", default="",
                          dest="property_report_file", metavar="PATH",
                          help="write the aggregated per-property pass "
                               "rates / time-to-violation JSON")
    campaign.add_argument("--on-violation", default="incident",
                          choices=("record", "incident", "supervise"),
                          dest="on_violation",
                          help="per-seed escalation policy for property "
                               "violations")
    campaign.add_argument("--store", default="", dest="store_dir",
                          metavar="DIR",
                          help="artifact store shared with campaign "
                               "workers (serial, fork-pool and "
                               "vectorized paths; default: "
                               "$REPRO_STORE when set)")
    campaign.set_defaults(handler=cmd_campaign)

    serve = commands.add_parser(
        "serve",
        help="run the simulation service daemon (durable job queue "
             "over a local socket)")
    serve.add_argument("state_dir",
                       help="service state directory (journal, "
                            "snapshots, result files)")
    serve.add_argument("--socket", default="", dest="socket_path",
                       metavar="PATH",
                       help="Unix socket to serve on (default: "
                            "STATE_DIR/service.sock)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent campaign leases")
    serve.add_argument("--lease", type=float, default=10.0,
                       dest="lease_duration", metavar="S",
                       help="seconds a lease survives without a "
                            "heartbeat before the job is requeued")
    serve.add_argument("--job-timeout", type=float, default=None,
                       dest="job_timeout", metavar="S",
                       help="wall-clock budget per lease; a hung "
                            "worker is killed and the job retried")
    serve.add_argument("--max-depth", type=int, default=64,
                       dest="max_depth",
                       help="bound on queued+running jobs "
                            "(admission control)")
    serve.add_argument("--admission", default="reject",
                       choices=("reject", "shed"),
                       help="policy at the depth bound: refuse the new "
                            "job, or shed the oldest queued one")
    serve.add_argument("--budget", type=int, default=3,
                       help="failed leases before a job is "
                            "quarantined as poison")
    serve.add_argument("--retry-backoff", type=float, default=0.25,
                       dest="retry_backoff", metavar="S",
                       help="base of the deterministic-jitter "
                            "exponential retry delay")
    serve.add_argument("--store", default="", dest="store_dir",
                       metavar="DIR",
                       help="artifact store for result dedupe "
                            "(default: $REPRO_STORE when set)")
    serve.set_defaults(handler=cmd_serve)

    submit = commands.add_parser(
        "submit",
        help="enqueue a campaign on a running service daemon")
    submit.add_argument("model")
    submit.add_argument("--top", required=True,
                        help="qualified name, e.g. design::Top")
    submit.add_argument("--faults", default="",
                        help="fault campaign JSON file swept per seed")
    submit.add_argument("--seeds", default="",
                        help="explicit comma-separated seed list "
                             "(overrides --runs)")
    submit.add_argument("--runs", type=int, default=1,
                        help="number of seeds, counted up from the "
                             "campaign's base seed")
    submit.add_argument("--until", type=float, default=100.0)
    submit.add_argument("--quantum", type=float, default=1.0)
    submit.add_argument("--engine", default=None,
                        choices=("interpreted", "compiled", "batched"))
    submit.add_argument("--on-part-error", default="raise",
                        choices=("raise", "quarantine", "restart",
                                 "restore"),
                        dest="on_part_error")
    submit.add_argument("--properties", default="",
                        dest="properties_file", metavar="PATH",
                        help="temporal-property suite checked on "
                             "every seed")
    submit.add_argument("--on-violation", default="incident",
                        choices=("record", "incident", "supervise"),
                        dest="on_violation")
    submit.add_argument("--name", default="",
                        help="job display name (default: the fault "
                             "campaign's name); never part of the "
                             "dedupe fingerprint")
    submit.add_argument("--socket", default="", dest="socket_path",
                        metavar="PATH",
                        help="service socket (default: $REPRO_SOCKET)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal and "
                             "print its outcome")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait budget in seconds")
    submit.set_defaults(handler=cmd_submit)

    status = commands.add_parser(
        "status",
        help="show the service queue, or one job's status row")
    status.add_argument("job_id", nargs="?", default="",
                        help="job id (omit for the whole queue)")
    status.add_argument("--socket", default="", dest="socket_path",
                        metavar="PATH",
                        help="service socket (default: $REPRO_SOCKET)")
    status.set_defaults(handler=cmd_status)

    result = commands.add_parser(
        "result",
        help="fetch a finished job's result payload")
    result.add_argument("job_id")
    result.add_argument("--socket", default="", dest="socket_path",
                        metavar="PATH",
                        help="service socket (default: $REPRO_SOCKET)")
    result.add_argument("-o", "--output", default="",
                        help="write the payload here instead of stdout")
    result.add_argument("--wait", action="store_true",
                        help="block until the job is terminal first")
    result.add_argument("--timeout", type=float, default=300.0,
                        help="--wait budget in seconds")
    result.set_defaults(handler=cmd_result)

    cancel = commands.add_parser(
        "cancel", help="cancel a queued or running job")
    cancel.add_argument("job_id")
    cancel.add_argument("--socket", default="", dest="socket_path",
                        metavar="PATH",
                        help="service socket (default: $REPRO_SOCKET)")
    cancel.set_defaults(handler=cmd_cancel)

    store = commands.add_parser(
        "store",
        help="inspect the content-addressed artifact store")
    store.add_argument("action", choices=("ls", "info", "gc"),
                       help="ls: list artifacts or query the model "
                            "registry; info: store-wide summary; gc: "
                            "evict artifacts")
    store.add_argument("--store", default="", dest="store_dir",
                       metavar="DIR",
                       help="store root (default: $REPRO_STORE or "
                            "~/.cache/repro)")
    store.add_argument("--kind", default=None,
                       help="restrict ls/gc to one artifact kind")
    store.add_argument("--name", default="",
                       help="registry query: model name substring")
    store.add_argument("--stereotype", default="",
                       help="registry query: applied stereotype name")
    store.add_argument("--profile", default="", dest="profile_query",
                       help="registry query: profile name")
    store.add_argument("--max-age-s", type=float, default=None,
                       help="gc: evict only artifacts idle longer than "
                            "this (default: evict everything)")
    store.add_argument("--dry-run", action="store_true",
                       help="gc: report what would be evicted")
    store.set_defaults(handler=cmd_store)

    stats = commands.add_parser(
        "stats",
        help="render a metrics snapshot as Prometheus text or JSON")
    stats.add_argument("snapshot", nargs="?", default="",
                       help="JSON file written by simulate --metrics "
                            "(default: this process's live counters)")
    stats.add_argument("--format", default="prom",
                       choices=("prom", "json"),
                       help="output format (Prometheus text exposition "
                            "or JSON)")
    stats.add_argument("--coverage", default="", dest="coverage_file",
                       metavar="PATH",
                       help="also export a coverage report JSON written "
                            "by simulate --coverage")
    stats.set_defaults(handler=cmd_stats)

    trace_to_sequence = commands.add_parser(
        "trace-to-sequence",
        help="turn a simulate --trace file into a PlantUML sequence "
             "diagram")
    trace_to_sequence.add_argument("trace",
                                   help="JSON Lines trace file written "
                                        "by simulate --trace, or '-' "
                                        "for stdin")
    trace_to_sequence.add_argument("--name", default="observed",
                                   help="interaction name (diagram title)")
    trace_to_sequence.add_argument("--part", action="append", default=[],
                                   metavar="NAME",
                                   help="keep only messages sent or "
                                        "received by this part "
                                        "(repeatable)")
    trace_to_sequence.add_argument("--signal", action="append",
                                   default=[], metavar="NAME",
                                   help="keep only messages carrying "
                                        "this signal (repeatable)")
    trace_to_sequence.add_argument("--include-env", action="store_true",
                                   dest="include_env",
                                   help="keep external stimuli (sender "
                                        "'env') in the diagram")
    trace_to_sequence.add_argument("--limit", type=int, default=None,
                                   help="stop after N messages")
    trace_to_sequence.set_defaults(handler=cmd_trace_to_sequence)

    diagram = commands.add_parser("diagram",
                                  help="export PlantUML diagrams")
    diagram.add_argument("model")
    diagram.add_argument("--kind", default="class",
                         choices=("class", "component", "statemachine"))
    diagram.add_argument("--scope", default="",
                         help="qualified package name (default: model)")
    diagram.set_defaults(handler=cmd_diagram)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        status = args.handler(args)
        if args.stats:
            from .perf import PERF

            print(PERF.report())
        return status
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        try:
            sys.stdout.close()
        except Exception:  # noqa: BLE001
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
