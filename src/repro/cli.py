"""Command-line interface: the tool face of the library.

Subcommands operate on XMI files written by :mod:`repro.xmi`::

    python -m repro info      model.xmi
    python -m repro validate  model.xmi
    python -m repro generate  model.xmi --backend vhdl -o build/
    python -m repro transform model.xmi --platform hw -o psm.xmi
    python -m repro simulate  model.xmi --top design::Top --until 100
    python -m repro simulate  model.xmi --top design::Top \
                              --faults campaign.json --seed 7
    python -m repro simulate  model.xmi --top design::Top \
                              --trace out.jsonl
    python -m repro trace-to-sequence out.jsonl --name observed
    python -m repro diagram   model.xmi --kind class --scope design

Every command exits non-zero on failure, so the CLI slots into build
scripts (the "integration with a design process" of the paper's MDA
section).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import metamodel as mm
from . import xmi
from .errors import ReproError


def _load(path: str):
    document = xmi.read_file(path)
    if document.model is None:
        raise ReproError(f"{path} contains no model")
    return document


def cmd_info(args: argparse.Namespace) -> int:
    document = _load(args.model)
    model = document.model
    print(f"model: {model.name} ({model.element_count()} elements)")
    if document.profiles:
        print(f"profiles: {[p.name for p in document.profiles]}")
    for kind, count in sorted(model.summary().items()):
        print(f"  {kind:28} {count}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .validation import validate_model

    document = _load(args.model)
    report = validate_model(document.model)
    for finding in report.findings:
        print(finding)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_generate(args: argparse.Namespace) -> int:
    from .codegen import (
        VALIDATORS,
        generate_all_parallel,
        python_gen,
        systemc,
        verilog,
        vhdl,
    )
    from .codegen.testbench import (
        generate_verilog_testbench,
        generate_vhdl_testbench,
    )

    generators = {
        "vhdl": vhdl.generate,
        "verilog": verilog.generate,
        "systemc": systemc.generate,
        "python": lambda scope: {"generated.py":
                                 python_gen.generate_module(scope)},
    }
    document = _load(args.model)
    if args.backend == "all":
        # every backend, fanned out over the parallel pipeline
        per_backend = generate_all_parallel(document.model,
                                            executor=args.executor)
    else:
        per_backend = {args.backend: generators[args.backend](
            document.model)}
    if args.testbench:
        from .codegen.base import hardware_components

        for backend in per_backend:
            if backend not in ("vhdl", "verilog"):
                continue
            bench_generator = (generate_vhdl_testbench
                               if backend == "vhdl"
                               else generate_verilog_testbench)
            suffix = ".vhd" if backend == "vhdl" else ".v"
            for component in hardware_components(document.model):
                bench_name = f"{component.name.lower()}_tb{suffix}"
                per_backend[backend][bench_name] = \
                    bench_generator(component)
    total = 0
    failures = 0
    for backend, files in per_backend.items():
        directory = (args.output if len(per_backend) == 1
                     else os.path.join(args.output, backend))
        os.makedirs(directory, exist_ok=True)
        for filename, text in sorted(files.items()):
            issues = VALIDATORS[backend](text)
            target = os.path.join(directory, filename)
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
            status = "ok" if not issues else f"INVALID: {issues}"
            if issues:
                failures += 1
            total += 1
            print(f"  {target}  ({len(text.splitlines())} lines)  "
                  f"{status}")
    print(f"{total} file(s) generated, {failures} invalid")
    return 0 if not failures else 1


def cmd_transform(args: argparse.Namespace) -> int:
    from .mda import hardware_transformation, software_transformation

    document = _load(args.model)
    transformation = (hardware_transformation() if args.platform == "hw"
                      else software_transformation())
    result = transformation.transform(document.model,
                                      profiles=document.profiles)
    print(f"applied {result.rules_applied} rule application(s); "
          f"completeness {result.completeness():.0%}")
    xmi.write_file(args.output, result.psm, profiles=document.profiles)
    print(f"PSM written to {args.output}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .engine import (
        JsonlTraceWriter,
        TraceBus,
        attach_perf_counters,
    )
    from .faults import FaultCampaign
    from .simulation import SystemSimulation

    document = _load(args.model)
    top = document.model.resolve(args.top, mm.Component)
    campaign = None
    if args.faults:
        campaign = FaultCampaign.from_file(args.faults)
    # Subscribers attach to a pre-made bus so events fired during
    # construction (a part's initial run-to-completion step may already
    # send) land in the stream too.
    bus = TraceBus()
    trace_stream = None
    writer = None
    if args.trace_file:
        trace_stream = open(args.trace_file, "w", encoding="utf-8")
        writer = JsonlTraceWriter(trace_stream, bus=bus)
    if args.stats:
        # the PERF cosim counters are just one more subscriber
        attach_perf_counters(bus, prefix="trace")
    try:
        with SystemSimulation(top, quantum=args.quantum,
                              compile=args.compiled,
                              faults=campaign, fault_seed=args.seed,
                              on_part_error=args.on_part_error,
                              bus=bus) as simulation:
            simulation.run(until=args.until, timeout=args.timeout)
            print(f"simulated {args.until} time units: "
                  f"{simulation.messages_delivered} message(s) delivered, "
                  f"{simulation.messages_dropped} dropped")
            for name, states in simulation.state_snapshot().items():
                print(f"  {name:20} {', '.join(states) or '(no behavior)'}")
            if args.compiled:
                for name, verdict in sorted(
                        simulation.compile_report.items()):
                    print(f"  {name:20} [{verdict}]")
            if campaign is not None or simulation.resilience.part_failures \
                    or simulation.resilience.kernel_incidents:
                print("resilience report:")
                print(simulation.resilience.to_json())
    finally:
        if trace_stream is not None:
            trace_stream.close()
    if writer is not None:
        print(f"trace: {writer.lines_written} event(s) -> "
              f"{args.trace_file}")
    return 0


def cmd_trace_to_sequence(args: argparse.Namespace) -> int:
    import json

    from .diagrams import render_interaction
    from .interactions import interaction_from_trace

    events = []
    with open(args.trace, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as error:
                raise ReproError(
                    f"{args.trace}:{line_number}: not a JSON trace "
                    f"record: {error}") from error
    interaction = interaction_from_trace(args.name, events,
                                         include_env=args.include_env,
                                         limit=args.limit)
    print(render_interaction(interaction))
    return 0


def cmd_diagram(args: argparse.Namespace) -> int:
    from . import statemachines as st
    from .diagrams import (
        class_diagram,
        component_diagram,
        render,
        render_state_machine,
    )

    document = _load(args.model)
    scope = document.model
    if args.scope:
        scope = document.model.resolve(args.scope, mm.Package)
    if args.kind == "class":
        print(render(class_diagram(scope)))
    elif args.kind == "component":
        print(render(component_diagram(scope)))
    elif args.kind == "statemachine":
        machines = scope.descendants_of_type(st.StateMachine)
        if not machines:
            raise ReproError(f"no state machines under {scope.name!r}")
        for machine in machines:
            print(render_state_machine(machine))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UML 2.0 / SoC model toolchain (validate, "
                    "transform, generate, simulate)")
    parser.add_argument("--stats", action="store_true",
                        help="print perf counters (compile times, cache "
                             "hits, per-backend wall time) after the "
                             "command")
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="summarize a model file")
    info.add_argument("model")
    info.set_defaults(handler=cmd_info)

    validate = commands.add_parser("validate",
                                   help="run well-formedness rules")
    validate.add_argument("model")
    validate.set_defaults(handler=cmd_validate)

    generate = commands.add_parser("generate", help="generate code")
    generate.add_argument("model")
    generate.add_argument("--backend", default="vhdl",
                          choices=("vhdl", "verilog", "systemc",
                                   "python", "all"))
    generate.add_argument("--executor", default="auto",
                          choices=("auto", "thread", "process",
                                   "sequential"),
                          help="pool for --backend all (default: size "
                               "heuristic)")
    generate.add_argument("--testbench", action="store_true",
                          help="also emit a testbench per component "
                               "(vhdl/verilog)")
    generate.add_argument("-o", "--output", default="generated")
    generate.set_defaults(handler=cmd_generate)

    transform = commands.add_parser("transform",
                                    help="PIM -> PSM (MDA mapping)")
    transform.add_argument("model")
    transform.add_argument("--platform", default="hw",
                           choices=("hw", "sw"))
    transform.add_argument("-o", "--output", default="psm.xmi")
    transform.set_defaults(handler=cmd_transform)

    simulate = commands.add_parser("simulate",
                                   help="cosimulate a top component")
    simulate.add_argument("model")
    simulate.add_argument("--top", required=True,
                          help="qualified name, e.g. design::Top")
    simulate.add_argument("--until", type=float, default=100.0)
    simulate.add_argument("--quantum", type=float, default=1.0)
    simulate.add_argument("--compiled", action="store_true",
                          help="compile state machines to dispatch "
                               "tables (interpreter fallback per part)")
    simulate.add_argument("--faults", default="",
                          help="fault campaign JSON file to inject "
                               "(see docs/FAULTS.md)")
    simulate.add_argument("--seed", type=int, default=None,
                          help="override the campaign's RNG seed")
    simulate.add_argument("--on-part-error", default="raise",
                          choices=("raise", "quarantine", "restart"),
                          dest="on_part_error",
                          help="policy when a part's behavior raises")
    simulate.add_argument("--timeout", type=float, default=None,
                          help="wall-clock watchdog in seconds")
    simulate.add_argument("--trace", default="", dest="trace_file",
                          metavar="PATH",
                          help="stream every TraceEvent as JSON Lines "
                               "into PATH (see docs/TRACING.md)")
    simulate.set_defaults(handler=cmd_simulate)

    trace_to_sequence = commands.add_parser(
        "trace-to-sequence",
        help="turn a simulate --trace file into a PlantUML sequence "
             "diagram")
    trace_to_sequence.add_argument("trace",
                                   help="JSON Lines trace file written "
                                        "by simulate --trace")
    trace_to_sequence.add_argument("--name", default="observed",
                                   help="interaction name (diagram title)")
    trace_to_sequence.add_argument("--include-env", action="store_true",
                                   dest="include_env",
                                   help="keep external stimuli (sender "
                                        "'env') in the diagram")
    trace_to_sequence.add_argument("--limit", type=int, default=None,
                                   help="stop after N messages")
    trace_to_sequence.set_defaults(handler=cmd_trace_to_sequence)

    diagram = commands.add_parser("diagram",
                                  help="export PlantUML diagrams")
    diagram.add_argument("model")
    diagram.add_argument("--kind", default="class",
                         choices=("class", "component", "statemachine"))
    diagram.add_argument("--scope", default="",
                         help="qualified package name (default: model)")
    diagram.set_defaults(handler=cmd_diagram)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        status = args.handler(args)
        if args.stats:
            from .perf import PERF

            print(PERF.report())
        return status
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        try:
            sys.stdout.close()
        except Exception:  # noqa: BLE001
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
