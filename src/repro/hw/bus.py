"""Bus fabric and SoC assembly.

A simple memory-mapped bus as a UML component: the bus decodes
``Read``/``Write`` addresses against an :class:`AddressMap` and forwards
the request to the owning slave port, routing responses back to the
requesting master.  :func:`make_soc` assembles a full system — traffic
generators, the bus, and memory-mapped slaves — into one top component
ready for :class:`~repro.simulation.cosim.SystemSimulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import repro.metamodel as mm
from ..errors import ModelError
from ..metamodel.components import Component, PortDirection
from ..profiles.core import Profile, apply_stereotype
from ..statemachines.kernel import StateMachine, TransitionKind


@dataclass(frozen=True)
class Region:
    """One address window of the bus decode map."""

    base: int
    size: int
    port: str  # the bus's slave-side port serving this window

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """True when the address falls inside this window."""
        return self.base <= address < self.end


class AddressMap:
    """An ordered, overlap-checked collection of address regions."""

    def __init__(self, regions: Sequence[Region] = ()):
        self.regions: List[Region] = []
        for region in regions:
            self.add(region)

    def add(self, region: Region) -> "AddressMap":
        """Add a region, rejecting overlaps (chainable)."""
        if region.size <= 0:
            raise ModelError(f"region at {region.base:#x} has size <= 0")
        for existing in self.regions:
            if region.base < existing.end and existing.base < region.end:
                raise ModelError(
                    f"region [{region.base:#x}, {region.end:#x}) overlaps "
                    f"[{existing.base:#x}, {existing.end:#x})")
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.base)
        return self

    def decode(self, address: int) -> Optional[Region]:
        """The region containing ``address``, or None."""
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def __len__(self) -> int:
        return len(self.regions)


def make_bus(name: str, address_map: AddressMap, width: int = 32,
             profile: Optional[Profile] = None) -> Component:
    """A decoding bus component.

    Ports: ``m`` (master side, INOUT) and one INOUT port per region
    (named per the map).  Requests carry ``addr``; the bus rewrites the
    address to slave-local offsets and forwards.  Responses return to
    the master side.
    """
    bus = Component(name)
    bus.add_port("m", direction=PortDirection.INOUT)
    for region in address_map.regions:
        bus.add_port(region.port, direction=PortDirection.INOUT)

    # decode chain in ASL: if/elif over the sorted regions
    def forward(event_kind: str, payload: str) -> str:
        branches = []
        for region in address_map.regions:
            guard = (f"event.addr >= {region.base} and "
                     f"event.addr < {region.end}")
            body = (f'send {event_kind}(addr=event.addr - {region.base}'
                    f'{payload}) to "{region.port}";')
            branches.append((guard, body))
        code = ""
        for index, (guard, body) in enumerate(branches):
            keyword = "if" if index == 0 else "elif"
            code += f"{keyword} ({guard}) {{ {body} }} "
        code += 'else { send BusError(addr=event.addr) to "m"; }'
        return code

    machine = StateMachine(f"{name}Behavior")
    region_ = machine.region
    init = region_.add_initial()
    active = region_.add_state("Active")
    region_.add_transition(init, active)
    region_.add_transition(active, active, trigger="Read",
                           effect=forward("Read", ""),
                           kind=TransitionKind.INTERNAL)
    region_.add_transition(active, active, trigger="Write",
                           effect=forward("Write", ", value=event.value"),
                           kind=TransitionKind.INTERNAL)
    # responses from slaves route back to the master side verbatim
    region_.add_transition(
        active, active, trigger="ReadResp",
        effect='send ReadResp(addr=event.addr, value=event.value) to "m";',
        kind=TransitionKind.INTERNAL)
    region_.add_transition(
        active, active, trigger="WriteAck",
        effect='send WriteAck(addr=event.addr) to "m";',
        kind=TransitionKind.INTERNAL)
    region_.add_transition(
        active, active, trigger="BusError",
        effect='send BusError(addr=event.addr) to "m";',
        kind=TransitionKind.INTERNAL)
    bus.add_behavior(machine, as_classifier_behavior=True)

    if profile is not None:
        apply_stereotype(bus, profile.stereotype("HwBus"), width=width)
    return bus


def make_soc(name: str,
             masters: Sequence[Component],
             slaves: Sequence[Tuple[Component, str, int, int]],
             bus_width: int = 32,
             profile: Optional[Profile] = None,
             package: Optional[mm.Package] = None) -> Component:
    """Assemble a SoC top component.

    ``masters`` are components with an INOUT ``bus`` port.  ``slaves``
    are ``(component, component_port, base, size)`` tuples.  A decoding
    bus is generated, all parts instantiated, and every port wired.
    Component *types* are added to ``package`` when given (so the types
    are owned and serializable); the returned top is also added.
    """
    address_map = AddressMap()
    for index, (slave, _port, base, size) in enumerate(slaves):
        address_map.add(Region(base, size, f"s{index}"))

    bus = make_bus(f"{name}Bus", address_map, bus_width, profile)

    top = Component(name)
    bus_part = top.add_part("bus", bus)
    for index, master in enumerate(masters):
        part = top.add_part(f"m{index}_{master.name.lower()}", master)
        top.connect(master.port("bus"), bus.port("m"), part, bus_part,
                    check=False)
    for index, (slave, slave_port, _base, _size) in enumerate(slaves):
        part = top.add_part(f"s{index}_{slave.name.lower()}", slave)
        top.connect(bus.port(f"s{index}"), slave.port(slave_port),
                    bus_part, part, check=False)

    if package is not None:
        for component in [bus, top] + list(masters) \
                + [slave for slave, *_ in slaves]:
            if component.owner is None:
                package.add(component)
    return top
