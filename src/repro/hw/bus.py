"""Bus fabric and SoC assembly.

A simple memory-mapped bus as a UML component: the bus decodes
``Read``/``Write`` addresses against an :class:`AddressMap` and forwards
the request to the owning slave port, routing responses back to the
requesting master.  :func:`make_soc` assembles a full system — traffic
generators, the bus, and memory-mapped slaves — into one top component
ready for :class:`~repro.simulation.cosim.SystemSimulation`.

Error protocol (PR 2): host-side decoding
(:meth:`AddressMap.decode_strict`) raises
:class:`~repro.errors.BusError` with the offending address and master;
*modeled* decode failures — an unmapped address on the simulated bus,
or an out-of-range access at a slave — answer with a ``Nak(addr=..)``
signal back to the requesting master instead of silently dropping the
transaction.  :func:`make_retry_master` is a bus master that speaks
this protocol: every request is guarded by a response timeout, and a
``Nak`` or timeout triggers an exponential-backoff retry chain before
the master gives up and raises a ``Fault`` on its ``irq`` port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import repro.metamodel as mm
from ..errors import BusError, ModelError
from ..metamodel.components import Component, PortDirection
from ..profiles.core import Profile, apply_stereotype
from ..statemachines.kernel import StateMachine, TransitionKind


@dataclass(frozen=True)
class Region:
    """One address window of the bus decode map."""

    base: int
    size: int
    port: str  # the bus's slave-side port serving this window

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """True when the address falls inside this window."""
        return self.base <= address < self.end


class AddressMap:
    """An ordered, overlap-checked collection of address regions."""

    def __init__(self, regions: Sequence[Region] = ()):
        self.regions: List[Region] = []
        for region in regions:
            self.add(region)

    def add(self, region: Region) -> "AddressMap":
        """Add a region, rejecting overlaps (chainable)."""
        if region.size <= 0:
            raise ModelError(f"region at {region.base:#x} has size <= 0")
        for existing in self.regions:
            if region.base < existing.end and existing.base < region.end:
                raise ModelError(
                    f"region [{region.base:#x}, {region.end:#x}) overlaps "
                    f"[{existing.base:#x}, {existing.end:#x})")
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.base)
        return self

    def decode(self, address: int) -> Optional[Region]:
        """The region containing ``address``, or None."""
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def decode_strict(self, address: int,
                      master: Optional[str] = None) -> Region:
        """Like :meth:`decode`, but unmapped addresses raise
        :class:`~repro.errors.BusError` carrying the offending address
        and requesting master."""
        region = self.decode(address)
        if region is None:
            who = f" from master {master!r}" if master else ""
            raise BusError(
                f"address {address:#x}{who} matches no mapped region "
                f"({len(self.regions)} regions)",
                address=address, master=master)
        return region

    def __len__(self) -> int:
        return len(self.regions)


def make_bus(name: str, address_map: AddressMap, width: int = 32,
             profile: Optional[Profile] = None) -> Component:
    """A decoding bus component.

    Ports: ``m`` (master side, INOUT) and one INOUT port per region
    (named per the map).  Requests carry ``addr``; the bus rewrites the
    address to slave-local offsets and forwards.  Responses return to
    the master side.
    """
    bus = Component(name)
    bus.add_port("m", direction=PortDirection.INOUT)
    for region in address_map.regions:
        bus.add_port(region.port, direction=PortDirection.INOUT)

    # decode chain in ASL: if/elif over the sorted regions
    def forward(event_kind: str, payload: str) -> str:
        branches = []
        for region in address_map.regions:
            guard = (f"event.addr >= {region.base} and "
                     f"event.addr < {region.end}")
            body = (f'send {event_kind}(addr=event.addr - {region.base}'
                    f'{payload}) to "{region.port}";')
            branches.append((guard, body))
        code = ""
        for index, (guard, body) in enumerate(branches):
            keyword = "if" if index == 0 else "elif"
            code += f"{keyword} ({guard}) {{ {body} }} "
        code += 'else { send Nak(addr=event.addr) to "m"; }'
        return code

    machine = StateMachine(f"{name}Behavior")
    region_ = machine.region
    init = region_.add_initial()
    active = region_.add_state("Active")
    region_.add_transition(init, active)
    region_.add_transition(active, active, trigger="Read",
                           effect=forward("Read", ""),
                           kind=TransitionKind.INTERNAL)
    region_.add_transition(active, active, trigger="Write",
                           effect=forward("Write", ", value=event.value"),
                           kind=TransitionKind.INTERNAL)
    # responses from slaves route back to the master side verbatim
    region_.add_transition(
        active, active, trigger="ReadResp",
        effect='send ReadResp(addr=event.addr, value=event.value) to "m";',
        kind=TransitionKind.INTERNAL)
    region_.add_transition(
        active, active, trigger="WriteAck",
        effect='send WriteAck(addr=event.addr) to "m";',
        kind=TransitionKind.INTERNAL)
    region_.add_transition(
        active, active, trigger="Nak",
        effect='send Nak(addr=event.addr) to "m";',
        kind=TransitionKind.INTERNAL)
    bus.add_behavior(machine, as_classifier_behavior=True)

    if profile is not None:
        apply_stereotype(bus, profile.stereotype("HwBus"), width=width)
    return bus


def make_retry_master(name: str = "RetryMaster", address: int = 0,
                      period: float = 10.0, timeout: float = 4.0,
                      backoff: float = 1.0, max_retries: int = 3,
                      profile: Optional[Profile] = None) -> Component:
    """A bus master with retry-with-backoff over the Timeout/Nak protocol.

    Every ``period`` it issues ``Read(addr=address)`` on ``bus`` and
    waits for a response.  A ``Nak`` (unmapped/out-of-range) or a
    response timeout of ``timeout`` retries the request after an
    exponential backoff (``backoff * 2**attempt``); after
    ``max_retries`` failed attempts it gives up, counts a fault, and
    raises ``Fault(addr=..)`` on its ``irq`` port.  ``served`` /
    ``retries`` / ``faults`` count outcomes.  The machine is flat
    (signal + time triggers only), so it stays in the compilable subset.
    """
    if max_retries < 0:
        raise ModelError(f"max_retries cannot be negative: {max_retries}")
    master = Component(name)
    master.add_attribute("served", mm.INTEGER, default=0)
    master.add_attribute("retries", mm.INTEGER, default=0)
    master.add_attribute("faults", mm.INTEGER, default=0)
    master.add_port("bus", direction=PortDirection.INOUT)
    master.add_port("irq", direction=PortDirection.OUT)

    issue = f'send Read(addr={address}) to "bus";'
    machine = StateMachine(f"{name}Behavior")
    region = machine.region
    init = region.add_initial()
    idle = region.add_state("Idle")
    region.add_transition(init, idle)
    waits = [region.add_state(f"Wait{attempt}")
             for attempt in range(max_retries + 1)]
    region.add_transition(idle, waits[0], after=period, effect=issue)
    for attempt, wait in enumerate(waits):
        for response in ("ReadResp", "WriteAck"):
            region.add_transition(
                wait, idle, trigger=response,
                effect="served = served + 1;")
        if attempt < max_retries:
            hold = region.add_state(f"Backoff{attempt + 1}")
            region.add_transition(wait, hold, trigger="Nak",
                                  effect="retries = retries + 1;")
            region.add_transition(wait, hold, after=timeout,
                                  effect="retries = retries + 1;")
            region.add_transition(hold, waits[attempt + 1],
                                  after=backoff * (2 ** attempt),
                                  effect=issue)
        else:
            give_up = (f'faults = faults + 1; '
                       f'send Fault(addr={address}) to "irq";')
            region.add_transition(wait, idle, trigger="Nak",
                                  effect=give_up)
            region.add_transition(wait, idle, after=timeout,
                                  effect=give_up)
    master.add_behavior(machine, as_classifier_behavior=True)

    if profile is not None:
        apply_stereotype(master, profile.stereotype("Processor"),
                         isa="retry")
    return master


def make_soc(name: str,
             masters: Sequence[Component],
             slaves: Sequence[Tuple[Component, str, int, int]],
             bus_width: int = 32,
             profile: Optional[Profile] = None,
             package: Optional[mm.Package] = None) -> Component:
    """Assemble a SoC top component.

    ``masters`` are components with an INOUT ``bus`` port.  ``slaves``
    are ``(component, component_port, base, size)`` tuples.  A decoding
    bus is generated, all parts instantiated, and every port wired.
    Component *types* are added to ``package`` when given (so the types
    are owned and serializable); the returned top is also added.
    """
    address_map = AddressMap()
    for index, (slave, _port, base, size) in enumerate(slaves):
        address_map.add(Region(base, size, f"s{index}"))

    bus = make_bus(f"{name}Bus", address_map, bus_width, profile)

    top = Component(name)
    bus_part = top.add_part("bus", bus)
    for index, master in enumerate(masters):
        part = top.add_part(f"m{index}_{master.name.lower()}", master)
        top.connect(master.port("bus"), bus.port("m"), part, bus_part,
                    check=False)
    for index, (slave, slave_port, _base, _size) in enumerate(slaves):
        part = top.add_part(f"s{index}_{slave.name.lower()}", slave)
        top.connect(bus.port(f"s{index}"), slave.port(slave_port),
                    bus_part, part, check=False)

    if package is not None:
        for component in [bus, top] + list(masters) \
                + [slave for slave, *_ in slaves]:
            if component.owner is None:
                package.add(component)
    return top
