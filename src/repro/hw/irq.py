"""Interrupt controller IP core.

A level-aggregating interrupt controller as an executable UML model:
N request lines raise ``Irq(line=k)``; a mask register gates them; the
highest-priority pending unmasked line is forwarded to the CPU port as
``Interrupt(line=k)`` and must be acknowledged (``Ack(line=k)``) before
the next one is dispatched — the classic PIC handshake, modelled
entirely in ASL.
"""

from __future__ import annotations

from typing import Optional

import repro.metamodel as mm
from ..metamodel.components import Component, PortDirection
from ..profiles.core import Profile, apply_stereotype
from ..statemachines.kernel import StateMachine, TransitionKind


def make_interrupt_controller(name: str = "Pic", lines: int = 8,
                              storm_threshold: Optional[int] = None,
                              profile: Optional[Profile] = None
                              ) -> Component:
    """Build the interrupt controller component.

    Ports: ``irq_in`` (device side, IN), ``cpu`` (INOUT: dispatches
    ``Interrupt``, receives ``Ack``), ``ctrl`` (IN: ``Mask``/``Unmask``
    with a ``line`` argument).

    Context variables: ``pending`` (list of line numbers, sorted =
    priority order, lowest line wins), ``mask`` (list of masked lines),
    ``inflight`` (line awaiting ack, or -1).

    ``storm_threshold`` arms IRQ-storm shedding: when the pending queue
    reaches the threshold, the controller sheds the whole backlog,
    counts the incident in ``storms``, and raises
    ``Storm(dropped=..)`` on ``cpu`` instead of dispatching — the
    livelock-avoidance counterpart to the kernel's event-storm guard.
    """
    if storm_threshold is not None and storm_threshold <= 0:
        raise ValueError(
            f"storm_threshold must be positive, got {storm_threshold}")
    controller = Component(name)
    controller.add_attribute("lines", mm.INTEGER, default=lines)
    controller.add_attribute("dispatched", mm.INTEGER, default=0)
    if storm_threshold is not None:
        controller.add_attribute("storms", mm.INTEGER, default=0)
    controller.add_port("irq_in", direction=PortDirection.IN)
    controller.add_port("cpu", direction=PortDirection.INOUT)
    controller.add_port("ctrl", direction=PortDirection.IN)

    dispatch_next = (
        'if (inflight == -1 and len(pending) > 0) {'
        '  candidates = [];'
        '  for line in sorted(pending) {'
        '    if (not contains(mask, line) and not contains(candidates, line)) {'
        '      candidates = candidates + [line];'
        '    }'
        '  }'
        '  if (len(candidates) > 0) {'
        '    inflight = candidates[0];'
        '    remaining = [];'
        '    for line in pending {'
        '      if (line != inflight) { remaining = remaining + [line]; }'
        '    }'
        '    pending = remaining;'
        '    dispatched = dispatched + 1;'
        '    send Interrupt(line=inflight) to "cpu";'
        '  }'
        '}'
    )

    machine = StateMachine(f"{name}Behavior")
    region = machine.region
    init = region.add_initial()
    active = region.add_state(
        "Active", entry="pending = []; mask = []; inflight = -1;")
    region.add_transition(init, active)
    irq_effect = ('if (not contains(pending, event.line) '
                  'and inflight != event.line) '
                  '{ pending = pending + [event.line]; } ')
    if storm_threshold is not None:
        irq_effect += (
            f'if (len(pending) >= {storm_threshold}) {{ '
            f'storms = storms + 1; '
            f'send Storm(dropped=len(pending)) to "cpu"; '
            f'pending = []; }} else {{ {dispatch_next} }}')
    else:
        irq_effect += dispatch_next
    region.add_transition(
        active, active, trigger="Irq",
        guard=f"event.line >= 0 and event.line < {lines}",
        effect=irq_effect,
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        active, active, trigger="Ack",
        guard="event.line == inflight",
        effect="inflight = -1; " + dispatch_next,
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        active, active, trigger="Mask",
        effect=('if (not contains(mask, event.line)) '
                '{ mask = mask + [event.line]; }'),
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        active, active, trigger="Unmask",
        effect=('remaining = []; '
                'for line in mask { if (line != event.line) '
                '{ remaining = remaining + [line]; } } '
                'mask = remaining; ' + dispatch_next),
        kind=TransitionKind.INTERNAL)
    controller.add_behavior(machine, as_classifier_behavior=True)

    if profile is not None:
        apply_stereotype(controller, profile.stereotype("IpCore"),
                         vendor="repro")
    return controller
