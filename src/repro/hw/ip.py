"""The synthetic IP-core library.

The paper's SoC perspective hinges on "seamless integration of existing
IP".  Since real vendor IP is proprietary, this module provides the
substitute: a library of parameterizable IP cores *as UML models* —
components with ports, registers (via the SoC profile) and executable
state machine behaviors written entirely in ASL, so every core can be
simulated (:mod:`repro.simulation.cosim`), interchanged (XMI) and
compiled to HDL (:mod:`repro.codegen`).

Cores: FIFO, single-port memory, round-robin arbiter, UART transmitter,
programmable timer, DMA engine, and a traffic generator used as a
synthetic CPU in benchmarks.
"""

from __future__ import annotations

from typing import Optional

import repro.metamodel as mm
from ..metamodel.components import Component, PortDirection
from ..profiles.core import Profile, apply_stereotype
from ..statemachines.kernel import StateMachine, TransitionKind


def _attach_machine(component: Component, machine: StateMachine) -> None:
    component.add_behavior(machine, as_classifier_behavior=True)


def make_fifo(name: str = "Fifo", depth: int = 8,
              profile: Optional[Profile] = None) -> Component:
    """A FIFO: ``Push(value)`` on ``in``; emits ``Pop(value)`` on ``out``
    when ``Next()`` is requested; ``Full``/``Empty`` notifications."""
    fifo = Component(name)
    fifo.add_attribute("depth", mm.INTEGER, default=depth)
    fifo.add_attribute("q", mm.STRING, default=None)  # list at runtime
    fifo.add_port("in", direction=PortDirection.IN)
    fifo.add_port("out", direction=PortDirection.OUT)

    machine = StateMachine(f"{name}Behavior")
    region = machine.region
    init = region.add_initial()
    ready = region.add_state("Ready", entry="q = [];")
    region.add_transition(init, ready)
    region.add_transition(
        ready, ready, trigger="Push",
        guard=f"len(q) < {depth}",
        effect="append(q, event.value);",
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        ready, ready, trigger="Push",
        guard=f"len(q) >= {depth}",
        effect='send Full() to "in";',
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        ready, ready, trigger="Next",
        guard="len(q) > 0",
        effect='v = pop(q); send Pop(value=v) to "out";',
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        ready, ready, trigger="Next",
        guard="len(q) == 0",
        effect='send Empty() to "out";',
        kind=TransitionKind.INTERNAL)
    _attach_machine(fifo, machine)

    if profile is not None:
        apply_stereotype(fifo, profile.stereotype("IpCore"),
                         vendor="repro", version="1.0")
    return fifo


def make_memory(name: str = "Sram", size_bytes: int = 4096,
                latency_cycles: int = 1,
                profile: Optional[Profile] = None) -> Component:
    """A single-port memory: ``Read(addr)``/``Write(addr, value)`` on
    ``bus``; replies ``ReadResp(addr, value)`` / ``WriteAck(addr)``;
    out-of-range accesses answer ``Nak(addr)``."""
    memory = Component(name)
    memory.add_attribute("size_bytes", mm.INTEGER, default=size_bytes)
    memory.add_attribute("store", mm.STRING, default=None)  # dict at runtime
    memory.add_port("bus", direction=PortDirection.INOUT)

    machine = StateMachine(f"{name}Behavior")
    region = machine.region
    init = region.add_initial()
    ready = region.add_state("Ready", entry="store = {};")
    region.add_transition(init, ready)
    region.add_transition(
        ready, ready, trigger="Read",
        guard=f"event.addr >= 0 and event.addr < {size_bytes}",
        effect=('if (contains(store, event.addr)) '
                '{ v = store[event.addr]; } else { v = 0; } '
                'send ReadResp(addr=event.addr, value=v) to "bus";'),
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        ready, ready, trigger="Write",
        guard=f"event.addr >= 0 and event.addr < {size_bytes}",
        effect=('store[event.addr] = event.value; '
                'send WriteAck(addr=event.addr) to "bus";'),
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        ready, ready, trigger="Read",
        guard=f"event.addr < 0 or event.addr >= {size_bytes}",
        effect='send Nak(addr=event.addr) to "bus";',
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        ready, ready, trigger="Write",
        guard=f"event.addr < 0 or event.addr >= {size_bytes}",
        effect='send Nak(addr=event.addr) to "bus";',
        kind=TransitionKind.INTERNAL)
    _attach_machine(memory, machine)

    if profile is not None:
        apply_stereotype(memory, profile.stereotype("Memory"),
                         size_bytes=size_bytes,
                         latency_cycles=latency_cycles)
    return memory


def make_arbiter(name: str = "Arbiter", masters: int = 2,
                 profile: Optional[Profile] = None) -> Component:
    """A round-robin arbiter: ``Request(master)`` -> ``Grant(master)``
    on ``grant``; ``Release()`` frees the resource."""
    arbiter = Component(name)
    arbiter.add_attribute("masters", mm.INTEGER, default=masters)
    arbiter.add_attribute("waiting", mm.STRING, default=None)
    arbiter.add_port("req", direction=PortDirection.IN)
    arbiter.add_port("grant", direction=PortDirection.OUT)

    machine = StateMachine(f"{name}Behavior")
    region = machine.region
    init = region.add_initial()
    idle = region.add_state("Idle", entry="waiting = [];")
    busy = region.add_state("Busy")
    region.add_transition(init, idle)
    region.add_transition(
        idle, busy, trigger="Request",
        effect='owner = event.master; '
               'send Grant(master=event.master) to "grant";')
    region.add_transition(
        busy, busy, trigger="Request",
        effect="append(waiting, event.master);",
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        busy, busy, trigger="Release",
        guard="len(waiting) > 0",
        effect='owner = pop(waiting); '
               'send Grant(master=owner) to "grant";',
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        busy, idle, trigger="Release",
        guard="len(waiting) == 0")
    _attach_machine(arbiter, machine)

    if profile is not None:
        apply_stereotype(arbiter, profile.stereotype("IpCore"),
                         vendor="repro")
    return arbiter


def make_uart_tx(name: str = "UartTx", bit_time: float = 8.0,
                 profile: Optional[Profile] = None) -> Component:
    """A UART transmitter: ``Send(byte)`` serializes after a frame time
    (start + 8 data + stop modelled as one timed state), emitting
    ``TxDone(byte)`` on ``tx``."""
    uart = Component(name)
    uart.add_attribute("current", mm.INTEGER, default=0)
    uart.add_port("data", direction=PortDirection.IN)
    uart.add_port("tx", direction=PortDirection.OUT)

    frame_time = bit_time * 10  # start + 8 data + stop

    machine = StateMachine(f"{name}Behavior")
    region = machine.region
    init = region.add_initial()
    idle = region.add_state("Idle")
    shifting = region.add_state("Shifting")
    idle.defer("Send")  # a byte arriving mid-frame waits (single buffer)
    region.add_transition(init, idle)
    region.add_transition(idle, shifting, trigger="Send",
                          effect="current = event.byte;")
    shifting.defer("Send")
    region.add_transition(
        shifting, idle, after=frame_time,
        effect='send TxDone(byte=current) to "tx";')
    _attach_machine(uart, machine)

    if profile is not None:
        apply_stereotype(uart, profile.stereotype("IpCore"),
                         vendor="repro")
    return uart


def make_timer(name: str = "Timer", period: float = 100.0,
               profile: Optional[Profile] = None) -> Component:
    """A free-running timer raising ``Tick(count)`` on ``irq`` every
    ``period``; ``Stop()``/``Start()`` control it."""
    timer = Component(name)
    timer.add_attribute("count", mm.INTEGER, default=0)
    timer.add_port("ctrl", direction=PortDirection.IN)
    timer.add_port("irq", direction=PortDirection.OUT)

    machine = StateMachine(f"{name}Behavior")
    region = machine.region
    init = region.add_initial()
    running = region.add_state("Running")
    stopped = region.add_state("Stopped")
    region.add_transition(init, running)
    region.add_transition(
        running, running, after=period,
        effect='count = count + 1; send Tick(count=count) to "irq";')
    region.add_transition(running, stopped, trigger="Stop")
    region.add_transition(stopped, running, trigger="Start")
    _attach_machine(timer, machine)

    if profile is not None:
        apply_stereotype(timer, profile.stereotype("IpCore"),
                         vendor="repro")
    return timer


def make_dma(name: str = "Dma", burst: int = 4,
             profile: Optional[Profile] = None) -> Component:
    """A DMA engine: ``Start(src, dst, length)`` issues ``Read``s on
    ``mem``; each ``ReadResp`` produces a ``Write``; ``Done(copied)``
    raised on ``irq`` when finished."""
    dma = Component(name)
    dma.add_attribute("burst", mm.INTEGER, default=burst)
    dma.add_port("ctrl", direction=PortDirection.IN)
    dma.add_port("mem", direction=PortDirection.INOUT)
    dma.add_port("irq", direction=PortDirection.OUT)

    machine = StateMachine(f"{name}Behavior")
    region = machine.region
    init = region.add_initial()
    idle = region.add_state("Idle")
    copying = region.add_state("Copying")
    region.add_transition(init, idle)
    region.add_transition(
        idle, copying, trigger="Start",
        effect='src = event.src; dst = event.dst; remaining = event.length; '
               'copied = 0; send Read(addr=src) to "mem";')
    region.add_transition(
        copying, copying, trigger="ReadResp",
        guard="remaining > 1",
        effect='send Write(addr=dst + copied, value=event.value) to "mem"; '
               'copied = copied + 1; remaining = remaining - 1; '
               'send Read(addr=src + copied) to "mem";',
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        copying, idle, trigger="ReadResp",
        guard="remaining <= 1",
        effect='send Write(addr=dst + copied, value=event.value) to "mem"; '
               'copied = copied + 1; '
               'send Done(copied=copied) to "irq";')
    _attach_machine(dma, machine)

    if profile is not None:
        apply_stereotype(dma, profile.stereotype("IpCore"), vendor="repro")
    return dma


def make_traffic_generator(name: str = "TrafficGen", period: float = 10.0,
                           address_range: int = 256,
                           profile: Optional[Profile] = None) -> Component:
    """A synthetic CPU: alternating ``Write``/``Read`` traffic on
    ``bus`` every ``period`` (LCG-scrambled addresses, so runs are
    deterministic); counts responses."""
    generator = Component(name)
    generator.add_attribute("issued", mm.INTEGER, default=0)
    generator.add_attribute("responses", mm.INTEGER, default=0)
    generator.add_attribute("naks", mm.INTEGER, default=0)
    generator.add_attribute("seed", mm.INTEGER, default=1)
    generator.add_port("bus", direction=PortDirection.INOUT)

    machine = StateMachine(f"{name}Behavior")
    region = machine.region
    init = region.add_initial()
    active = region.add_state("Active")
    region.add_transition(init, active)
    region.add_transition(
        active, active, after=period,
        effect=(
            f'seed = (seed * 1103515245 + 12345) % 2147483648; '
            f'addr = seed % {address_range}; '
            'if (issued % 2 == 0) '
            '{ send Write(addr=addr, value=issued) to "bus"; } '
            'else { send Read(addr=addr) to "bus"; } '
            'issued = issued + 1;'))
    for response in ("ReadResp", "WriteAck"):
        region.add_transition(
            active, active, trigger=response,
            effect="responses = responses + 1;",
            kind=TransitionKind.INTERNAL)
    region.add_transition(active, active, trigger="Nak",
                          effect="naks = naks + 1;",
                          kind=TransitionKind.INTERNAL)
    _attach_machine(generator, machine)

    if profile is not None:
        apply_stereotype(generator, profile.stereotype("Processor"),
                         isa="traffic")
    return generator


def ip_library(profile: Optional[Profile] = None) -> mm.Package:
    """The standard library package with one instance of every core."""
    from .irq import make_interrupt_controller

    library = mm.Package("ip_lib")
    library.add(make_fifo(profile=profile))
    library.add(make_memory(profile=profile))
    library.add(make_arbiter(profile=profile))
    library.add(make_uart_tx(profile=profile))
    library.add(make_timer(profile=profile))
    library.add(make_dma(profile=profile))
    library.add(make_traffic_generator(profile=profile))
    library.add(make_interrupt_controller(profile=profile))
    return library
