"""Hardware substrate (subsystem S11): IP library and bus fabric.

Synthetic but structurally faithful IP cores as executable UML models,
plus an address-decoding bus and a SoC assembly helper.
"""

from .ip import (
    ip_library,
    make_arbiter,
    make_dma,
    make_fifo,
    make_memory,
    make_timer,
    make_traffic_generator,
    make_uart_tx,
)
from .bus import AddressMap, Region, make_bus, make_retry_master, make_soc
from .irq import make_interrupt_controller

__all__ = [
    "ip_library", "make_arbiter", "make_dma", "make_fifo", "make_memory",
    "make_timer", "make_traffic_generator", "make_uart_tx",
    "make_interrupt_controller",
    "AddressMap", "Region", "make_bus", "make_retry_master", "make_soc",
]
