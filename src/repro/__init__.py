"""repro (uml2soc): UML 2.0 modeling, execution, MDA and HDL codegen.

A reproduction of *"UML 2.0 - Overview and Perspectives in SoC Design"*
(Schattkowsky, DATE 2005) as a working library: the UML 2.0 metamodel
surveyed by the paper, the executable semantics it highlights
(STATEMATE-style statecharts, token-based activities, MSC-style
interactions, the ASL action language), the tailoring machinery it
calls for (profiles, including a SoC profile), and the MDA flow it
envisions (PIM->PSM transformation, code generation to VHDL / Verilog /
SystemC / Python, discrete-event cosimulation of the models).

Subpackages
-----------
``metamodel``      UML 2.0 structural metamodel (S1)
``statemachines``  statecharts + run-to-completion runtime (S2)
``activities``     token-semantics activities + Petri mapping (S3)
``interactions``   sequence diagrams + trace semantics (S4)
``profiles``       profile mechanism, SoC & UML-RT profiles (S5)
``asl``            the Action Specification Language (S6)
``xmi``            XMI interchange (S7)
``mda``            PIM->PSM transformation engine (S8)
``codegen``        VHDL/Verilog/SystemC/Python backends (S9)
``simulation``     discrete-event kernel + cosimulation (S10)
``hw``             IP library and bus fabric (S11)
``validation``     well-formedness rules (S12)
``store``          content-addressed artifact store + build graph (S15)
``metrics``        size/complexity/productivity metrics (S13)
``diagrams``       the 13 diagram types + PlantUML export (S14)

Quick start::

    import repro.metamodel as mm
    from repro.statemachines import StateMachine, StateMachineRuntime

    model = mm.Model("soc")
    cpu = model.add(mm.Component("Cpu"))
    machine = StateMachine("boot")
    region = machine.region
    region.add_transition(region.add_initial(), region.add_state("Run"))
    cpu.add_behavior(machine, as_classifier_behavior=True)
    runtime = StateMachineRuntime(machine).start()
"""

from ._ids import reset_ids
from .errors import (
    ActivityError,
    AslRuntimeError,
    AslSyntaxError,
    CodegenError,
    InteractionError,
    LookupFailed,
    ModelError,
    ProfileError,
    ReproError,
    SimulationError,
    StateMachineError,
    StoreError,
    TransformError,
    ValidationError,
    XmiError,
)

__version__ = "1.0.0"

__all__ = [
    "reset_ids",
    "ActivityError", "AslRuntimeError", "AslSyntaxError", "CodegenError",
    "InteractionError", "LookupFailed", "ModelError", "ProfileError",
    "ReproError", "SimulationError", "StateMachineError", "StoreError",
    "TransformError",
    "ValidationError", "XmiError",
    "__version__",
]
