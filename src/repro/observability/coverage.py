"""Functional coverage in the SystemVerilog-covergroup spirit.

Hardware verification teams ask one question of every run: *which bins
did we exercise, and which never fired?*  This module answers it for
executable UML models:

* :class:`CoverageModel` — the **static** bin universe, derived from a
  part's behavior *before* any execution: per-part state bins,
  transition bins (``source --event--> target``), event bins and
  state×event cross bins for state machines (hierarchical, via
  :class:`~repro.statemachines.StateMachine`, or configuration-level,
  via :class:`~repro.statemachines.FlatStateMachine`), and node/event
  bins for :class:`~repro.activities.Activity` token games.  Because
  the universe is static, *uncovered* bins are enumerable — the whole
  point of coverage-driven verification.
* :class:`CoverageCollector` — a :class:`~repro.engine.TraceBus`
  subscriber accumulating hit counts from the typed trace stream.  It
  consumes only event payloads, so it is engine-agnostic by
  construction: interpreted and compiled engines produce identical
  streams on the same seed, hence byte-identical coverage reports.
* :class:`CoverageReport` — bins + counts with per-part and model-wide
  rollups, deterministic (sorted-key) JSON serialization, and
  :meth:`CoverageReport.merge` for combining runs — e.g. accumulating
  closure over the seeds of a fault campaign.

Bin keys are plain strings so reports survive JSON round-trips:
``"Idle"`` (state/node), ``"Idle --Start--> Busy"`` (transition),
``"Start"`` (event), ``"Idle @ Start"`` (cross).  Completion events
carry model-internal ids in their trace names; they are normalized to
``"<completion>"`` so bins are stable across processes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import ReproError

#: Bin kinds, in rollup order.
BIN_KINDS = ("state", "transition", "event", "cross")

#: Normalized label for synthetic completion events (their trace names
#: embed per-process element ids).
COMPLETION = "<completion>"


def _normalize_event(name: str) -> str:
    return COMPLETION if name.startswith("completion(") else name


def transition_key(source: str, event: str, target: str) -> str:
    """The canonical transition bin key."""
    return f"{source} --{_normalize_event(event)}--> {target}"


def cross_key(state: str, event: str) -> str:
    """The canonical state×event cross bin key."""
    return f"{state} @ {_normalize_event(event)}"


class PartCoverageModel:
    """The static bin universe of one part."""

    __slots__ = ("part", "behavior", "bins")

    def __init__(self, part: str, behavior: str,
                 bins: Mapping[str, Iterable[str]]):
        self.part = part
        #: "statemachine", "flat" or "activity"
        self.behavior = behavior
        self.bins: Dict[str, Tuple[str, ...]] = {
            kind: tuple(sorted(set(bins.get(kind, ()))))
            for kind in BIN_KINDS}

    @property
    def total_bins(self) -> int:
        return sum(len(keys) for keys in self.bins.values())

    def __repr__(self) -> str:
        return (f"<PartCoverageModel {self.part!r} ({self.behavior}) "
                f"bins={self.total_bins}>")


class CoverageModel:
    """Static bin universes for every behavioral part of a model."""

    def __init__(self, parts: Optional[Iterable[PartCoverageModel]] = None):
        self.parts: Dict[str, PartCoverageModel] = {}
        for part in parts or ():
            self.add(part)

    def add(self, part: PartCoverageModel) -> "CoverageModel":
        self.parts[part.part] = part
        return self

    @property
    def total_bins(self) -> int:
        return sum(part.total_bins for part in self.parts.values())

    # -- derivations -------------------------------------------------------

    @classmethod
    def from_machine(cls, part: str, machine: Any) -> PartCoverageModel:
        """Bins of a (possibly hierarchical) state machine.

        States come from ``all_states()``; transition bins from every
        (state-source, trigger, state-target) triple; event bins from
        every trigger name (completion transitions normalized); cross
        bins are the full state×event product.
        """
        from ..statemachines import State

        states = [state.name for state in machine.all_states()]
        events = set()
        transitions = set()
        for transition in machine.all_transitions():
            source, target = transition.source, transition.target
            named_ends = isinstance(source, State) \
                and isinstance(target, State)
            if not transition.triggers:
                if getattr(transition, "is_completion", False) \
                        and named_ends:
                    events.add(COMPLETION)
                    transitions.add(transition_key(
                        source.name, COMPLETION, target.name))
                continue
            for trigger in transition.triggers:
                name = _normalize_event(trigger.name)
                events.add(name)
                if named_ends:
                    transitions.add(transition_key(
                        source.name, name, target.name))
        crosses = [cross_key(state, event)
                   for state in states for event in sorted(events)]
        return PartCoverageModel(part, "statemachine", {
            "state": states, "transition": transitions,
            "event": sorted(events), "cross": crosses})

    @classmethod
    def from_flat(cls, part: str, flat: Any) -> PartCoverageModel:
        """Bins of a :class:`~repro.statemachines.FlatStateMachine`:
        configurations as states, table edges as transitions, the
        alphabet as events, configurations×alphabet as crosses."""
        states = list(flat.states)
        events = list(flat.alphabet)
        transitions = [
            transition_key(source, event, target)
            for (source, event), target in flat.transitions.items()]
        crosses = [cross_key(state, event)
                   for state in states for event in events]
        return PartCoverageModel(part, "flat", {
            "state": states, "transition": transitions,
            "event": events, "cross": crosses})

    @classmethod
    def from_activity(cls, part: str, activity: Any) -> PartCoverageModel:
        """Bins of an activity: named nodes (hit by token firings) and
        accept-event names (hit by harness deliveries).  The token game
        has no transition/cross structure."""
        from ..activities import AcceptEventAction

        nodes = [node.name for node in activity.nodes if node.name]
        events = sorted({node.event for node in activity.nodes
                         if isinstance(node, AcceptEventAction)
                         and node.event})
        return PartCoverageModel(part, "activity", {
            "state": nodes, "event": events})

    @classmethod
    def for_behavior(cls, part: str,
                     behavior: Any) -> Optional[PartCoverageModel]:
        """Dispatch on the behavior type; None when not coverable."""
        from ..activities import Activity
        from ..statemachines import FlatStateMachine, StateMachine

        if isinstance(behavior, StateMachine):
            return cls.from_machine(part, behavior)
        if isinstance(behavior, FlatStateMachine):
            return cls.from_flat(part, behavior)
        if isinstance(behavior, Activity):
            return cls.from_activity(part, behavior)
        return None

    @classmethod
    def for_component(cls, top: Any) -> "CoverageModel":
        """The model-wide bin universe of a component assembly's parts."""
        from ..metamodel.classifiers import UmlClass

        model = cls()
        for part in top.parts:
            part_type = part.type
            if not isinstance(part_type, UmlClass):
                continue
            behavior = part_type.classifier_behavior
            if behavior is None:
                continue
            derived = cls.for_behavior(part.name, behavior)
            if derived is not None:
                model.add(derived)
        return model

    def __repr__(self) -> str:
        return (f"<CoverageModel parts={len(self.parts)} "
                f"bins={self.total_bins}>")


class CoverageCollector:
    """TraceBus subscriber accumulating hit counts against a model.

    Subscribe it to the engine-level kinds (the default when a ``bus``
    is given).  Cross bins need the active-state context, which the
    collector reconstructs from the enter/exit stream — no engine
    internals are touched.
    """

    #: The trace kinds the collector consumes.
    KINDS = ("event", "transition", "state_enter", "state_exit", "token")

    def __init__(self, model: CoverageModel, bus: Any = None):
        self.model = model
        #: part -> bin kind -> key -> count (pre-zeroed, so membership
        #: tests and increments share one dict on the hot path)
        self.hits: Dict[str, Dict[str, Dict[str, int]]] = {
            name: {kind: {key: 0 for key in part.bins[kind]}
                   for kind in BIN_KINDS}
            for name, part in model.parts.items()}
        #: observed hits outside the static universe (e.g. events
        #: delivered to a part that never declared them)
        self._unplanned = [0]
        self._active: Dict[str, List[str]] = {name: []
                                              for name in model.parts}
        # cross keys resolved ahead of time: part -> event -> state -> key
        # (the cross universe is a static product, so no string is ever
        # built while events stream)
        self._cross: Dict[str, Dict[str, Dict[str, str]]] = {}
        for name, part in model.parts.items():
            by_event: Dict[str, Dict[str, str]] = {}
            for key in part.bins["cross"]:
                state, _, cross_event = key.partition(" @ ")
                by_event.setdefault(cross_event, {})[state] = key
            self._cross[name] = by_event
        self._ingest = self._make_ingest()
        self.subscription = None
        if bus is not None:
            self.subscription = bus.subscribe(self._ingest,
                                              kinds=self.KINDS)

    # -- the hot path ------------------------------------------------------

    @property
    def unplanned(self) -> int:
        return self._unplanned[0]

    def __call__(self, event: Any) -> None:
        self._ingest(event)

    def _make_ingest(self):
        # one closure per collector with every per-part lookup table
        # bound as a cell variable — this runs once per engine trace
        # event, so each avoided attribute/keyed lookup counts
        active = self._active
        cross = self._cross
        unplanned = self._unplanned
        state_counts = {name: h["state"] for name, h in self.hits.items()}
        event_counts = {name: h["event"] for name, h in self.hits.items()}
        edge_counts = {name: h["transition"]
                       for name, h in self.hits.items()}
        cross_counts = {name: h["cross"] for name, h in self.hits.items()}
        edge_keys: Dict[Tuple[str, str, str], str] = {}

        def ingest(event: Any) -> None:
            part = event.part
            kind = event.kind
            data = event.data
            if kind == "event":
                counts = event_counts.get(part)
                if counts is None:
                    return
                name = data["event"]
                if name.startswith("completion("):
                    name = COMPLETION
                if name in counts:
                    counts[name] += 1
                else:
                    unplanned[0] += 1
                by_state = cross[part].get(name)
                if by_state:
                    crosses = cross_counts[part]
                    for state in active[part]:
                        key = by_state.get(state)
                        if key is not None:
                            crosses[key] += 1
            elif kind == "transition":
                counts = edge_counts.get(part)
                if counts is None:
                    return
                edge = (data["source"], data["event"], data["target"])
                key = edge_keys.get(edge)
                if key is None:
                    key = edge_keys[edge] = transition_key(*edge)
                if key in counts:
                    counts[key] += 1
                else:
                    unplanned[0] += 1
            elif kind == "state_enter":
                counts = state_counts.get(part)
                if counts is None:
                    return
                key = data["state"]
                if key in counts:
                    counts[key] += 1
                else:
                    unplanned[0] += 1
                active[part].append(key)
            elif kind == "state_exit":
                states = active.get(part)
                if states is None:
                    return
                key = data["state"]
                if key in states:
                    states.remove(key)
            elif kind == "token":
                counts = state_counts.get(part)
                if counts is None:
                    return
                key = data["node"]
                if key in counts:
                    counts[key] += 1
                else:
                    unplanned[0] += 1

        return ingest

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Capture hit counts and active-state context for rollback."""
        return {
            "hits": {part: {kind: dict(counts)
                            for kind, counts in kinds.items()}
                     for part, kinds in self.hits.items()},
            "active": {part: list(states)
                       for part, states in self._active.items()},
            "unplanned": self._unplanned[0],
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        """Reinstate a :meth:`checkpoint` — in place, because the ingest
        closure binds the count dicts as cell variables."""
        for part, kinds in self.hits.items():
            saved_kinds = snap["hits"].get(part, {})
            for kind, counts in kinds.items():
                saved = saved_kinds.get(kind, {})
                for key in counts:
                    counts[key] = saved.get(key, 0)
        for part, states in self._active.items():
            states[:] = snap["active"].get(part, ())
        self._unplanned[0] = snap["unplanned"]

    # -- results -----------------------------------------------------------

    def report(self) -> "CoverageReport":
        """Freeze the current counts into a :class:`CoverageReport`."""
        parts: Dict[str, Dict[str, Any]] = {}
        for name, part in self.model.parts.items():
            # counts are pre-zeroed over the full universe, so a copy
            # already carries every uncovered bin
            bins = {kind: dict(self.hits[name][kind])
                    for kind in BIN_KINDS}
            parts[name] = {"behavior": part.behavior, "bins": bins}
        return CoverageReport(parts, unplanned=self._unplanned[0])


class CoverageReport:
    """Bins + hit counts, rollups, merge, deterministic serialization."""

    def __init__(self, parts: Dict[str, Dict[str, Any]],
                 unplanned: int = 0):
        #: part -> {"behavior": ..., "bins": {kind: {key: count}}}
        self.parts = parts
        self.unplanned = unplanned

    # -- rollups -----------------------------------------------------------

    def part_summary(self, name: str) -> Dict[str, Any]:
        """Covered/total/percent per bin kind plus the part rollup."""
        part = self.parts[name]
        summary: Dict[str, Any] = {}
        covered_total = bins_total = 0
        for kind in BIN_KINDS:
            counts = part["bins"][kind]
            covered = sum(1 for count in counts.values() if count)
            covered_total += covered
            bins_total += len(counts)
            summary[kind] = {
                "bins": len(counts), "covered": covered,
                "percent": _percent(covered, len(counts)),
            }
        summary["bins"] = bins_total
        summary["covered"] = covered_total
        summary["percent"] = _percent(covered_total, bins_total)
        return summary

    def total_bins(self) -> int:
        """How many bins the whole report tracks."""
        return sum(len(part["bins"][kind])
                   for part in self.parts.values() for kind in BIN_KINDS)

    def total_percent(self) -> float:
        """Model-wide coverage: covered bins / all bins, all parts."""
        covered = bins = 0
        for name in self.parts:
            summary = self.part_summary(name)
            covered += summary["covered"]
            bins += summary["bins"]
        return _percent(covered, bins)

    def uncovered(self, name: str) -> Dict[str, List[str]]:
        """The enumerable holes: never-hit bin keys per kind, sorted."""
        part = self.parts[name]
        return {kind: sorted(key for key, count in part["bins"][kind].items()
                             if not count)
                for kind in BIN_KINDS}

    # -- merge (coverage closure across runs) ------------------------------

    def merge(self, other: "CoverageReport") -> "CoverageReport":
        """A new report summing this report's counts with ``other``'s.

        Bin universes are united, so runs over slightly different
        model revisions still merge; matching bins sum their counts.
        """
        parts: Dict[str, Dict[str, Any]] = {}
        for name in sorted(set(self.parts) | set(other.parts)):
            mine = self.parts.get(name)
            theirs = other.parts.get(name)
            if mine is None or theirs is None:
                source = mine if mine is not None else theirs
                parts[name] = {
                    "behavior": source["behavior"],
                    "bins": {kind: dict(source["bins"][kind])
                             for kind in BIN_KINDS}}
                continue
            bins = {}
            for kind in BIN_KINDS:
                merged = dict(mine["bins"][kind])
                for key, count in theirs["bins"][kind].items():
                    merged[key] = merged.get(key, 0) + count
                bins[kind] = merged
            parts[name] = {"behavior": mine["behavior"], "bins": bins}
        return CoverageReport(parts,
                              unplanned=self.unplanned + other.unplanned)

    @classmethod
    def merged(cls, reports: Iterable["CoverageReport"]) -> "CoverageReport":
        """Fold :meth:`merge` over an iterable of reports."""
        result: Optional[CoverageReport] = None
        for report in reports:
            result = report if result is None else result.merge(report)
        if result is None:
            raise ReproError("cannot merge zero coverage reports")
        return result

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain data, deterministically ordered."""
        return {
            "parts": {
                name: {
                    "behavior": self.parts[name]["behavior"],
                    "bins": {
                        kind: {key: self.parts[name]["bins"][kind][key]
                               for key in sorted(self.parts[name]
                                                 ["bins"][kind])}
                        for kind in BIN_KINDS},
                    "summary": self.part_summary(name),
                    "uncovered": self.uncovered(name),
                }
                for name in sorted(self.parts)},
            "total_percent": self.total_percent(),
            "unplanned": self.unplanned,
            "version": 1,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Byte-deterministic JSON (two equal reports serialize equal)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent,
                          separators=(",", ": ") if indent else (",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CoverageReport":
        """Rebuild a report from :meth:`to_dict` data."""
        if not isinstance(data, dict) or "parts" not in data:
            raise ReproError(f"not a coverage report: {data!r}")
        parts = {
            name: {"behavior": part.get("behavior", "statemachine"),
                   "bins": {kind: dict(part["bins"].get(kind, {}))
                            for kind in BIN_KINDS}}
            for name, part in data["parts"].items()}
        return cls(parts, unplanned=int(data.get("unplanned", 0)))

    @classmethod
    def from_json(cls, text: str) -> "CoverageReport":
        try:
            return cls.from_dict(json.loads(text))
        except ValueError as error:
            raise ReproError(
                f"coverage report is not valid JSON: {error}") from error

    def __repr__(self) -> str:
        return (f"<CoverageReport parts={len(self.parts)} "
                f"total={self.total_percent():.1f}%>")


def _percent(covered: int, total: int) -> float:
    return round(100.0 * covered / total, 2) if total else 100.0
