"""Post-mortem flight recorder: the last N trace events, always.

Aircraft keep a crash-survivable ring of the last minutes of telemetry;
a long fault-campaign run deserves the same.  The
:class:`FlightRecorder` subscribes to *every* trace kind and keeps a
fixed-size ring buffer (``collections.deque(maxlen=N)``) of the most
recent events — O(N) memory however long the run.  When a
:class:`~repro.errors.SimulationError` escapes the harness's ``run`` or
a part is quarantined, the attached recorder auto-dumps a JSONL
post-mortem: one header record (reason, simulated time, every part's
active configuration, quarantine set, and — when a fault campaign is
attached — the injector's exact RNG state for replay), followed by the
buffered events oldest-first.

Everything written is derived from simulated state, so two engines (or
two runs of one engine) over the same model and seed crash with
byte-identical black boxes — the dump itself is lockstep-testable.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional

#: Default ring capacity.
DEFAULT_CAPACITY = 256


def _jsonable(value: Any) -> Any:
    """Recursively convert tuples (e.g. ``random.getstate()``) to lists."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    if isinstance(value, list):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


class FlightRecorder:
    """Bounded ring of recent :class:`~repro.engine.TraceEvent` records.

    ``path`` arms auto-dump: :meth:`attach` registers an incident hook
    on a :class:`~repro.simulation.SystemSimulation`, and every
    escaping kernel error or quarantine writes the post-mortem there
    (each dump overwrites the previous one — the *last* incident is the
    one you debug).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, bus: Any = None,
                 path: Optional[str] = None):
        if capacity <= 0:
            from ..errors import SimulationError
            raise SimulationError(
                f"flight recorder capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.path = path
        self.dumps_written = 0
        self.last_dump: Optional[str] = None
        self._simulation: Any = None
        self.subscription = None
        if bus is not None:
            # deque.append is a C function: recording costs no Python
            # frame at all, only the bus dispatch
            self.subscription = bus.subscribe(self.events.append)

    # -- the hot path ------------------------------------------------------

    def __call__(self, event: Any) -> None:
        self.events.append(event)

    # -- wiring ------------------------------------------------------------

    def attach(self, simulation: Any) -> "FlightRecorder":
        """Register the auto-dump incident hook on a simulation."""
        self._simulation = simulation
        simulation.incident_hooks.append(self._on_incident)
        return self

    def _on_incident(self, reason: str, detail: str) -> None:
        if self.path is not None:
            text = self.dump_text(self._simulation, reason=reason,
                                  detail=detail)
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(text)
            self.dumps_written += 1
            self.last_dump = self.path

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Capture the ring content (dump counters are side effects on
        disk and intentionally not rolled back)."""
        return {"events": list(self.events)}

    def restore(self, snap: Dict[str, Any]) -> None:
        self.events.clear()
        self.events.extend(snap["events"])

    # -- dumping -----------------------------------------------------------

    def header(self, simulation: Any = None, reason: str = "manual",
               detail: str = "") -> Dict[str, Any]:
        """The post-mortem header record (deterministically ordered)."""
        record: Dict[str, Any] = {
            "kind": "postmortem",
            "reason": reason,
            "detail": detail,
            "buffered": len(self.events),
            "capacity": self.capacity,
        }
        if simulation is not None:
            record["t"] = simulation.simulator.now
            record["configurations"] = {
                name: list(states)
                for name, states in sorted(
                    simulation.state_snapshot().items())}
            record["quarantined"] = list(simulation.quarantined_parts)
            injector = simulation.injector
            record["injector_rng"] = (
                _jsonable(injector.snapshot()["rng"])
                if injector is not None else None)
        return record

    def dump_lines(self, simulation: Any = None, reason: str = "manual",
                   detail: str = "") -> List[str]:
        """Header + buffered events as JSONL lines (oldest first)."""
        lines = [json.dumps(self.header(simulation, reason, detail),
                            sort_keys=True, separators=(",", ":"),
                            default=str)]
        lines.extend(event.to_json() for event in self.events)
        return lines

    def dump_text(self, simulation: Any = None, reason: str = "manual",
                  detail: str = "") -> str:
        """The whole post-mortem as one JSONL string."""
        return "\n".join(self.dump_lines(simulation, reason, detail)) + "\n"

    def dump(self, path: str, simulation: Any = None,
             reason: str = "manual", detail: str = "") -> int:
        """Write the post-mortem to ``path``; returns the line count."""
        lines = self.dump_lines(simulation, reason, detail)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        self.dumps_written += 1
        self.last_dump = path
        return len(lines)

    def __repr__(self) -> str:
        return (f"<FlightRecorder {len(self.events)}/{self.capacity} "
                f"dumps={self.dumps_written}>")
