"""Live campaign telemetry (PR 9).

Fault-campaign workers are forked processes; until now the only
feedback during a long campaign was silence followed by a result
table.  This module streams worker heartbeats over a plain OS pipe so
the parent can render a live progress line and a ``campaign.live``
Prometheus snapshot *without touching the TraceBus* — subscribing
telemetry to the bus would change which events are emitted and shift
ordinals, breaking the serial == parallel == vectorized report
byte-identity guarantee of PR 6.  A pipe is invisible to the
simulation.

Protocol (one short line per beat, written atomically — every line is
far below ``PIPE_BUF``):

* ``start <seed>`` — the worker has begun simulating;
* ``hb <seed> <events>`` — periodic sample of the worker's kernel
  ``events_processed`` counter (a daemon thread, ~4 Hz);
* ``done <seed> <events>`` / ``fail <seed>`` — terminal beats; the
  parent's reap loop remains the ground truth for results, these only
  keep the progress display honest between reaps.

Everything degrades to silence: if the pipe is gone (spawn start
method, closed parent) writes are swallowed, and the progress line is
rendered only when the stream is a TTY or rendering is forced.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from .metrics import PREFIX, metric_name

#: Seconds between worker heartbeat samples.
HEARTBEAT_INTERVAL = 0.25

#: Minimum seconds between progress-line renders in the parent.
RENDER_INTERVAL = 0.1


def send_beat(fd: Optional[int], line: str) -> bool:
    """Write one protocol line to the telemetry pipe, silently
    swallowing every failure (missing fd, closed pipe, spawn-context
    inheritance gaps).  Returns whether the write went through."""
    if fd is None:
        return False
    try:
        os.write(fd, (line.rstrip("\n") + "\n").encode("utf-8"))
        return True
    except (OSError, ValueError):
        return False


class WorkerHeartbeat:
    """Worker-side beat sender: a daemon thread sampling a counter.

    ``sample`` is called on the telemetry thread (~4 Hz) and must be
    cheap and thread-safe to *read* — the kernel's ``events_processed``
    int qualifies.  ``close()`` sends the terminal beat.
    """

    def __init__(self, fd: Optional[int], seed: int,
                 sample: Callable[[], int],
                 interval: float = HEARTBEAT_INTERVAL):
        self.fd = fd
        self.seed = seed
        self.sample = sample
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if send_beat(fd, f"start {seed}"):
            self._thread = threading.Thread(
                target=self._run, name=f"telemetry-seed-{seed}",
                daemon=True)
            self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                events = int(self.sample())
            except Exception:
                events = 0
            if not send_beat(self.fd, f"hb {self.seed} {events}"):
                return  # pipe is gone; stop sampling

    def close(self, ok: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
        if ok:
            try:
                events = int(self.sample())
            except Exception:
                events = 0
            send_beat(self.fd, f"done {self.seed} {events}")
        else:
            send_beat(self.fd, f"fail {self.seed}")


class CampaignTelemetry:
    """Parent-side aggregation and rendering of campaign progress.

    Tracks per-seed state (``pending`` -> ``running`` -> ``done`` /
    ``failed``) fed by pipe beats and by the runner's reap loop, and
    renders a single carriage-return progress line::

        campaign demo: 12/20 done (1 failed) | 3 running | 48231 ev/s | ETA 4.2s

    Rendering auto-enables only when the stream is a TTY (``enabled``
    forces it either way); when disabled the object still aggregates,
    so :meth:`prometheus` and :meth:`snapshot` work headlessly.
    """

    def __init__(self, total: int, name: str = "campaign",
                 stream: Any = None, enabled: Optional[bool] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.total = int(total)
        self.name = name
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = enabled
        self._clock = clock
        self.started_at = clock()
        self.done = 0
        self.failed = 0
        self.running: Dict[int, int] = {}  # seed -> last sampled events
        self.events_done = 0  # events of finished seeds
        self._done_seeds: set = set()
        self._finish_times: List[float] = []
        self._last_render = 0.0
        self._rendered = False
        self._read_fd: Optional[int] = None
        self._write_fd: Optional[int] = None
        self._buffer = b""

    # -- the pipe ----------------------------------------------------------

    def open_pipe(self) -> int:
        """Create the beat pipe; returns the write fd workers inherit."""
        read_fd, write_fd = os.pipe()
        os.set_blocking(read_fd, False)
        self._read_fd, self._write_fd = read_fd, write_fd
        return write_fd

    @property
    def write_fd(self) -> Optional[int]:
        return self._write_fd

    def poll(self) -> None:
        """Drain pending beats (non-blocking) and maybe re-render."""
        if self._read_fd is not None:
            while True:
                try:
                    chunk = os.read(self._read_fd, 65536)
                except BlockingIOError:
                    break
                except OSError:
                    break
                if not chunk:
                    break
                self._buffer += chunk
            *lines, self._buffer = self._buffer.split(b"\n")
            for raw in lines:
                self._apply(raw.decode("utf-8", "replace"))
        self.render()

    def _apply(self, line: str) -> None:
        fields = line.split()
        if len(fields) < 2:
            return
        verb = fields[0]
        try:
            seed = int(fields[1])
        except ValueError:
            return
        if verb == "start":
            self.running.setdefault(seed, 0)
        elif verb == "hb" and len(fields) >= 3:
            try:
                self.running[seed] = int(fields[2])
            except ValueError:
                pass
        elif verb == "done":
            events = 0
            if len(fields) >= 3:
                try:
                    events = int(fields[2])
                except ValueError:
                    events = 0
            self.seed_done(seed, events)
        elif verb == "fail":
            # a failed attempt may be retried; only the runner's reap
            # loop decides terminal failure (seed_failed)
            self.running.pop(seed, None)

    # -- direct feeds (serial / vectorized runners, reap loop) -------------

    def seed_started(self, seed: int) -> None:
        self.running.setdefault(seed, 0)

    def beat(self, seed: int, events: int) -> None:
        self.running[seed] = int(events)
        self.render()

    def seed_done(self, seed: int, events: int = 0) -> None:
        sampled = self.running.pop(seed, 0)
        if seed not in self._done_seeds:
            self._done_seeds.add(seed)
            self.done += 1
            self.events_done += max(int(events), sampled)
            self._finish_times.append(self._clock())

    def seed_failed(self, seed: int) -> None:
        self.running.pop(seed, None)
        if seed not in self._done_seeds:
            self._done_seeds.add(seed)
            self.done += 1
            self.failed += 1
            self._finish_times.append(self._clock())

    # -- derived numbers ---------------------------------------------------

    def elapsed(self) -> float:
        return max(self._clock() - self.started_at, 1e-9)

    def events_total(self) -> int:
        return self.events_done + sum(self.running.values())

    def events_per_second(self) -> float:
        return self.events_total() / self.elapsed()

    def eta(self) -> Optional[float]:
        """Seconds until completion, from the mean seed finish pace."""
        if not self._finish_times or self.done >= self.total:
            return None
        pace = self.elapsed() / self.done
        remaining = self.total - self.done
        # running seeds are partway through; count them as half-done
        credit = min(len(self.running) * 0.5, remaining)
        return max((remaining - credit) * pace, 0.0)

    # -- rendering ---------------------------------------------------------

    def progress_line(self) -> str:
        bits = [f"campaign {self.name}:",
                f"{self.done}/{self.total} done"]
        if self.failed:
            bits.append(f"({self.failed} failed)")
        bits.append(f"| {len(self.running)} running")
        bits.append(f"| {self.events_per_second():.0f} ev/s")
        eta = self.eta()
        if eta is not None:
            bits.append(f"| ETA {eta:.1f}s")
        return " ".join(bits)

    def render(self, force: bool = False) -> None:
        if not self.enabled:
            return
        now = self._clock()
        if not force and now - self._last_render < RENDER_INTERVAL:
            return
        self._last_render = now
        try:
            self.stream.write("\r\x1b[2K" + self.progress_line())
            self.stream.flush()
        except (OSError, ValueError):
            self.enabled = False
        else:
            self._rendered = True

    def finish(self) -> None:
        """Final render plus newline; close the pipe ends."""
        self.render(force=True)
        if self._rendered:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass
        for fd in (self._read_fd, self._write_fd):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._read_fd = self._write_fd = None

    def close_worker_end(self) -> None:
        """Close the parent's copy of the write fd (after the last fork)
        so EOF propagates once every worker exits."""
        if self._write_fd is not None:
            try:
                os.close(self._write_fd)
            except OSError:
                pass
            self._write_fd = None

    # -- exports -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "running": len(self.running),
            "events": self.events_total(),
            "events_per_second": round(self.events_per_second(), 3),
            "elapsed": round(self.elapsed(), 6),
        }

    def prometheus(self) -> str:
        """A ``campaign.live`` Prometheus text snapshot."""
        snap = self.snapshot()
        lines: List[str] = []
        for key in ("total", "done", "failed", "running", "events"):
            name = metric_name(f"campaign.live.{key}")
            lines.append(f"# HELP {name} "
                         f"Live campaign telemetry: {key} seeds"
                         if key != "events" else
                         f"# HELP {name} "
                         f"Live campaign telemetry: kernel events so far")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {snap[key]}")
        name = metric_name("campaign.live.events_per_second")
        lines.append(f"# HELP {name} Aggregate kernel event throughput")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {snap['events_per_second']}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (f"<CampaignTelemetry {self.name!r} {self.done}/"
                f"{self.total} running={len(self.running)}>")
