"""One-stop wiring of the observability subscribers onto a simulation.

:class:`ObservabilitySuite` is what ``SystemSimulation(coverage=True,
profile=True, flight_recorder=N)`` constructs: it derives the static
:class:`~repro.observability.CoverageModel` from the top component,
attaches the requested subscribers to the simulation's
:class:`~repro.engine.TraceBus` *before* the part engines start (so
initial-configuration entries are covered too), and registers the
flight recorder's auto-dump incident hook.  The suite holds no
execution state of its own — everything lives in the individual
collectors, which remain usable stand-alone.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import SimulationError
from .causality import CausalIndex
from .coverage import CoverageCollector, CoverageModel, CoverageReport
from .flightrecorder import DEFAULT_CAPACITY, FlightRecorder
from .profiler import SimProfiler


class ObservabilitySuite:
    """The verification-grade observers of one simulation."""

    def __init__(self, simulation: Any, coverage: bool = False,
                 profile: bool = False, flight_recorder: int = 0,
                 flight_dump: Optional[str] = None,
                 causality: bool = False):
        bus = simulation.bus
        if bus is None:
            raise SimulationError(
                "observability needs a trace bus; construct the "
                "simulation without bus=False")
        self.simulation = simulation
        self.coverage: Optional[CoverageCollector] = None
        self.profiler: Optional[SimProfiler] = None
        self.recorder: Optional[FlightRecorder] = None
        self.causal: Optional[CausalIndex] = None
        if causality:
            # first: provenance is only complete if the index sees
            # every record other subscribers might force on
            self.causal = CausalIndex(bus)
        if coverage:
            model = CoverageModel.for_component(simulation.top)
            self.coverage = CoverageCollector(model, bus=bus)
        if profile:
            self.profiler = SimProfiler(bus=bus)
        if flight_recorder:
            capacity = (flight_recorder if flight_recorder > 0
                        else DEFAULT_CAPACITY)
            self.recorder = FlightRecorder(capacity=capacity, bus=bus,
                                           path=flight_dump)
            self.recorder.attach(simulation)

    def coverage_report(self) -> CoverageReport:
        """The current functional-coverage report."""
        if self.coverage is None:
            raise SimulationError(
                "coverage was not enabled on this simulation")
        return self.coverage.report()

    def profile_lines(self, metric: str = "time") -> list:
        """Collapsed-stack lines (``metric`` = "time" or "steps"),
        finalized at the current simulated time."""
        if self.profiler is None:
            raise SimulationError(
                "profiling was not enabled on this simulation")
        self.profiler.finalize(self.simulation.simulator.now)
        if metric == "time":
            return self.profiler.collapsed_time()
        if metric == "steps":
            return self.profiler.collapsed_steps()
        raise SimulationError(
            f"unknown profile metric {metric!r}; choose 'time' or 'steps'")

    def checkpoint(self) -> Dict[str, Any]:
        """Capture every attached collector (part of the simulation's
        full :meth:`~repro.simulation.SystemSimulation.checkpoint`, so
        rollback rewinds coverage counts, profiler attribution and the
        flight-recorder ring together with the execution state)."""
        return {
            "coverage": (self.coverage.checkpoint()
                         if self.coverage is not None else None),
            "profiler": (self.profiler.checkpoint()
                         if self.profiler is not None else None),
            "recorder": (self.recorder.checkpoint()
                         if self.recorder is not None else None),
            "causality": (self.causal.checkpoint()
                          if self.causal is not None else None),
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        if self.coverage is not None and snap.get("coverage") is not None:
            self.coverage.restore(snap["coverage"])
        if self.profiler is not None and snap.get("profiler") is not None:
            self.profiler.restore(snap["profiler"])
        if self.recorder is not None and snap.get("recorder") is not None:
            self.recorder.restore(snap["recorder"])
        if self.causal is not None and snap.get("causality") is not None:
            self.causal.restore(snap["causality"])

    def summary(self) -> Dict[str, Any]:
        """What is attached, and the headline numbers so far."""
        summary: Dict[str, Any] = {}
        if self.coverage is not None:
            summary["coverage_percent"] = \
                self.coverage.report().total_percent()
        if self.profiler is not None:
            summary["profiler_events"] = self.profiler.events_seen
        if self.recorder is not None:
            summary["flight_buffered"] = len(self.recorder.events)
            summary["flight_dumps"] = self.recorder.dumps_written
        if self.causal is not None:
            records, edges = self.causal.counts()
            summary["causal_records"] = records
            summary["causal_edges"] = edges
        return summary

    def __repr__(self) -> str:
        attached = [name for name, value in
                    (("coverage", self.coverage),
                     ("profiler", self.profiler),
                     ("recorder", self.recorder),
                     ("causality", self.causal)) if value is not None]
        return f"<ObservabilitySuite {'+'.join(attached) or 'empty'}>"
