"""Causal span tracing over the TraceBus (PR 9).

The trace stream of PRs 3-8 answers *what* happened; this module
answers *why*.  Engines and the cosimulation harness thread a causal
register through the hot path (see docs/TRACING.md): every emitted
record may carry an optional ``cause`` payload field naming the ordinal
of the record that provoked it — message delivery -> event dispatch ->
transition fired -> effect send -> next delivery; timer fire ->
transition; fault injection -> corrupted delivery; supervisor decision
-> part restored.  The result is a forest of provenance trees over the
ordinary ordinal stream, in the span/causal-context spirit of
distributed tracing (Dapper / OpenTelemetry), reconstructed here by
:class:`CausalIndex`:

* :meth:`CausalIndex.why` walks a record back to its root cause —
  the full causal chain, three parts upstream if need be;
* :meth:`CausalIndex.slice` computes the backward and forward causal
  cones of one part (everything that influenced it, everything it
  influenced);
* :func:`span_lines` serializes the forest as a JSONL span format and
  :func:`perfetto_json` as Chrome/Perfetto ``trace_event`` JSON (one
  track per part, flow arrows for cross-part causality) — both pure
  functions of the event stream, hence byte-identical wherever the
  stream is (interpreted == compiled == batched, plain or faulted,
  through supervised rollback).

Attaching a :class:`CausalIndex` turns the bus fully observed (every
kind) and flips :attr:`~repro.engine.TraceBus.causal` on; without one
the causal register costs the hot path a single attribute check per
emit site.  Like every PR 4 subscriber it checkpoints and restores, so
whole-simulation rollback rewinds the provenance forest in lockstep.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine import KINDS, TraceBus, TraceEvent
from ..errors import SimulationError

#: Payload keys tried (in order) for a human-readable span label.
#: Deliberately excludes the free-text ``reason``/``error`` keys: the
#: engines word action errors differently, and the lockstep contract
#: (and therefore the byte-identity of these exports) covers
#: everything *except* that free text — same rule the PR 5 recovery
#: lockstep tests pin.
_LABEL_KEYS = ("signal", "event", "state", "fault", "action")

#: Free-text payload keys excluded from exports (engine-worded).
_VOLATILE_KEYS = ("reason", "error")


def event_label(event: Any) -> str:
    """A compact ``kind:detail`` label for one trace event/record."""
    data = event.data if isinstance(event, TraceEvent) else event
    kind = event.kind if isinstance(event, TraceEvent) else \
        data.get("kind", "?")
    for key in _LABEL_KEYS:
        value = data.get(key)
        if value is not None:
            return f"{kind}:{value}"
    return kind


class CausalIndex:
    """Reconstructs provenance trees from a causally-stamped stream.

    Subscribes to *every* kind (provenance is only complete over the
    full stream) and sets ``bus.causal = True`` so emits start carrying
    the register.  Ingestion is a bare list append (the D18 bound:
    no dearer than the materialization floor); the parent/children/edge
    maps are folded lazily on first query.  ``keep_events=False`` keeps
    compact ``(ordinal, kind, part, cause)`` rows instead of the event
    objects — the low-memory mode campaign workers use for hot-edge
    statistics.
    """

    def __init__(self, bus: TraceBus, keep_events: bool = True):
        self.bus = bus
        self.keep_events = keep_events
        #: every received event, in emission order (``keep_events``)
        self.events: List[TraceEvent] = []
        #: compact (ordinal, kind, part, cause) rows (``keep_events``
        #: off: the events themselves are not retained)
        self._records: List[Tuple[int, str, str, Optional[int]]] = []
        #: how many stored rows are folded into the derived maps
        self._indexed = 0
        #: ordinal -> (kind, part) for every received record
        self._meta: Dict[int, Tuple[str, str]] = {}
        #: child ordinal -> cause ordinal
        self.parent: Dict[int, int] = {}
        #: cause ordinal -> child ordinals, in emission order
        self.children: Dict[int, List[int]] = {}
        #: "src_part->dst_part" -> count, for cross-part causal edges
        self.part_edges: Dict[str, int] = {}
        #: "src_kind->dst_kind" -> count, for every causal edge
        self.kind_edges: Dict[str, int] = {}
        self._was_causal = bus.causal
        bus.causal = True
        # Hot-path contract (the D18 acceptance bound): ingestion must
        # cost no more than the materialization floor any full-stream
        # subscriber already pays, so the callback is a bare append —
        # the provenance maps are folded lazily at query time, the way
        # a profiler defers symbolication.
        if keep_events:
            callback: Any = self.events.append
        else:
            def callback(event: TraceEvent,
                         _append=self._records.append) -> None:
                _append((event.ordinal, event.kind, event.part,
                         event.data.get("cause")))
        self.subscription = bus.subscribe(callback, kinds=KINDS)

    # -- ingestion ---------------------------------------------------------

    def _store(self) -> Any:
        return self.events if self.keep_events else self._records

    def _index(self) -> None:
        """Fold rows received since the last query into the maps.

        The stored stream is append-only between restores, so folding
        is incremental; every query calls this first.
        """
        store = self._store()
        count = len(store)
        if self._indexed == count:
            return
        meta = self._meta
        parent = self.parent
        children = self.children
        kind_edges = self.kind_edges
        part_edges = self.part_edges
        if self.keep_events:
            pending: Any = ((e.ordinal, e.kind, e.part,
                             e.data.get("cause"))
                            for e in store[self._indexed:])
        else:
            pending = store[self._indexed:]
        for ordinal, kind, part, cause in pending:
            meta[ordinal] = (kind, part)
            if cause is None:
                continue
            parent[ordinal] = cause
            children.setdefault(cause, []).append(ordinal)
            cause_meta = meta.get(cause)
            if cause_meta is None:
                continue  # cause predates this index (attached mid-run)
            edge = f"{cause_meta[0]}->{kind}"
            kind_edges[edge] = kind_edges.get(edge, 0) + 1
            if cause_meta[1] != part:
                edge = f"{cause_meta[1]}->{part}"
                part_edges[edge] = part_edges.get(edge, 0) + 1
        self._indexed = count

    def counts(self) -> Tuple[int, int]:
        """(records ingested, causal links) — folds pending rows."""
        self._index()
        return len(self._meta), len(self.parent)

    def close(self) -> None:
        """Detach from the bus and restore its causal flag."""
        self.subscription.cancel()
        self.bus.causal = self._was_causal

    # -- queries -----------------------------------------------------------

    def event(self, ordinal: int) -> TraceEvent:
        if not self.keep_events:
            raise SimulationError(
                "CausalIndex(keep_events=False) keeps edge statistics "
                "only; event lookup needs keep_events=True")
        index = self._find(ordinal)
        if index is None:
            raise SimulationError(
                f"no trace event with ordinal {ordinal} in this index")
        return self.events[index]

    def _find(self, ordinal: int) -> Optional[int]:
        """Index of an ordinal in :attr:`events` (binary search: the
        stream is ordinal-sorted but may start past 1 and the bus
        ordinal can rewind on restore, keeping the list monotonic)."""
        low, high = 0, len(self.events) - 1
        while low <= high:
            mid = (low + high) // 2
            found = self.events[mid].ordinal
            if found == ordinal:
                return mid
            if found < ordinal:
                low = mid + 1
            else:
                high = mid - 1
        return None

    def why(self, ordinal: int) -> List[TraceEvent]:
        """The full causal chain of one record, root first.

        Walks ``cause`` links up to the root (a record with no cause:
        an external stimulus, a timer expiry, a checkpoint) and returns
        the events along the way — ``why(x)[-1]`` is ``x`` itself.
        """
        self._index()
        chain: List[int] = []
        seen = set()
        cursor: Optional[int] = ordinal
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            chain.append(cursor)
            cursor = self.parent.get(cursor)
        chain.reverse()
        return [self.event(o) for o in chain]

    def roots(self) -> List[int]:
        """Ordinals of every causal root, ascending."""
        self._index()
        return sorted(o for o in self._meta if o not in self.parent)

    def descendants(self, ordinal: int) -> List[int]:
        """Every ordinal transitively caused by ``ordinal``, ascending."""
        self._index()
        found: List[int] = []
        stack = list(self.children.get(ordinal, ()))
        seen = set()
        while stack:
            cursor = stack.pop()
            if cursor in seen:
                continue
            seen.add(cursor)
            found.append(cursor)
            stack.extend(self.children.get(cursor, ()))
        return sorted(found)

    def slice(self, part: str) -> Dict[str, List[int]]:
        """The causal cones of one part.

        ``events`` — ordinals of the part's own records; ``backward`` —
        everything that (transitively) caused them, i.e. what influenced
        this part; ``forward`` — everything they caused, i.e. what this
        part influenced.  All three ascending.
        """
        self._index()
        own = sorted(o for o, (_kind, p) in self._meta.items()
                     if p == part)
        backward: set = set()
        for ordinal in own:
            cursor = self.parent.get(ordinal)
            while cursor is not None and cursor not in backward:
                backward.add(cursor)
                cursor = self.parent.get(cursor)
        forward: set = set()
        for ordinal in own:
            forward.update(self.descendants(ordinal))
        own_set = set(own)
        return {
            "events": own,
            "backward": sorted(backward - own_set),
            "forward": sorted(forward - own_set),
        }

    def edge_counts(self) -> Dict[str, Dict[str, int]]:
        """Causal hot-edge statistics (sorted-key plain data)."""
        self._index()
        return {
            "kinds": {edge: self.kind_edges[edge]
                      for edge in sorted(self.kind_edges)},
            "parts": {edge: self.part_edges[edge]
                      for edge in sorted(self.part_edges)},
        }

    # -- exports -----------------------------------------------------------

    def span_lines(self) -> List[str]:
        """The provenance forest as JSONL span records."""
        return span_lines(self.events)

    def to_span_jsonl(self) -> str:
        return "\n".join(self.span_lines()) + "\n"

    def to_perfetto(self) -> str:
        """The stream as Chrome/Perfetto ``trace_event`` JSON."""
        return perfetto_json(self.events)

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Capture the ingestion high-water mark (the forest is an
        append-only function of the stream, so a count suffices)."""
        store = self._store()
        last = store[-1] if store else None
        max_ordinal = 0
        if last is not None:
            max_ordinal = last.ordinal if self.keep_events else last[0]
        return {"count": len(store), "max_ordinal": max_ordinal}

    def restore(self, snap: Dict[str, Any]) -> None:
        """Drop everything ingested after a checkpoint.

        Truncates the stored stream and invalidates the derived maps;
        the next query refolds from the survivors (restores are rare,
        queries amortize)."""
        del self._store()[snap["count"]:]
        self._meta = {}
        self.parent = {}
        self.children = {}
        self.part_edges = {}
        self.kind_edges = {}
        self._indexed = 0

    def __repr__(self) -> str:
        records, edges = self.counts()
        return (f"<CausalIndex records={records} "
                f"edges={edges} roots={len(self.roots())}>")


# ---------------------------------------------------------------------------
# pure-function exporters (byte-identical wherever the stream is)
# ---------------------------------------------------------------------------


def _children_of(events: Sequence[TraceEvent]) -> Dict[int, List[int]]:
    children: Dict[int, List[int]] = {}
    for event in events:
        cause = event.data.get("cause")
        if cause is not None:
            children.setdefault(cause, []).append(event.ordinal)
    return children


def span_lines(events: Sequence[TraceEvent]) -> List[str]:
    """Serialize a causally-stamped stream as JSONL span records.

    One compact sorted-key JSON object per record: ``ordinal``, ``t``,
    ``kind``, ``part``, ``label``, ``cause`` (null at roots) and
    ``children`` (ordinals, emission order).  A pure function of the
    stream — the lockstep CI job byte-compares it across engines.
    """
    children = _children_of(events)
    lines: List[str] = []
    for event in events:
        record = {
            "cause": event.data.get("cause"),
            "children": children.get(event.ordinal, []),
            "kind": event.kind,
            "label": event_label(event),
            "ordinal": event.ordinal,
            "part": event.part,
            "t": event.t,
        }
        lines.append(json.dumps(record, sort_keys=True,
                                separators=(",", ":"), default=str))
    return lines


#: Perfetto timestamps are microseconds; one simulated time unit maps
#: to one millisecond so sub-unit latencies stay visible on the ruler.
PERFETTO_US_PER_UNIT = 1000.0


def perfetto_json(events: Sequence[TraceEvent],
                  process_name: str = "repro-sim") -> str:
    """Render a stream as Chrome/Perfetto ``trace_event`` JSON.

    One thread (track) per part — thread-name metadata first, then one
    instant event per record in ordinal order, then a flow-arrow pair
    (``s``/``f``) for every cross-part causal edge, anchored at the
    cause's track/time and the effect's track/time.  Deterministic:
    sorted parts get stable tids, keys are sorted, floats are emitted
    by ``json.dumps`` — so equal streams render byte-identically.
    """
    parts = sorted({event.part for event in events})
    tids = {part: index + 1 for index, part in enumerate(parts)}
    trace: List[Dict[str, Any]] = [{
        "args": {"name": process_name},
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
    }]
    for part in parts:
        trace.append({
            "args": {"name": part or "(harness)"},
            "name": "thread_name", "ph": "M", "pid": 1,
            "tid": tids[part],
        })
    by_ordinal = {event.ordinal: event for event in events}
    for event in events:
        ts = event.t * PERFETTO_US_PER_UNIT
        args = {key: event.data[key] for key in sorted(event.data)
                if key not in _VOLATILE_KEYS}
        args["ordinal"] = event.ordinal
        trace.append({
            "args": args, "cat": event.kind, "name": event_label(event),
            "ph": "i", "pid": 1, "s": "t", "tid": tids[event.part],
            "ts": ts,
        })
        cause = event.data.get("cause")
        parent = by_ordinal.get(cause) if cause is not None else None
        if parent is not None and parent.part != event.part:
            # flow arrow: cause's track -> this record's track
            trace.append({
                "cat": "causal", "id": event.ordinal, "name": "cause",
                "ph": "s", "pid": 1, "tid": tids[parent.part],
                "ts": parent.t * PERFETTO_US_PER_UNIT,
            })
            trace.append({
                "bp": "e", "cat": "causal", "id": event.ordinal,
                "name": "cause", "ph": "f", "pid": 1,
                "tid": tids[event.part], "ts": ts,
            })
    payload = {"displayTimeUnit": "ms", "traceEvents": trace}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)


def spans_from_jsonl(lines: Iterable[str]) -> List[Dict[str, Any]]:
    """Parse :func:`span_lines` output back into span dicts."""
    spans = []
    for line in lines:
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans
