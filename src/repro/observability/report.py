"""Cross-seed observability report (PR 9).

One campaign, many seeds, four telemetry streams — functional coverage
(PR 4), temporal-property verdicts (PR 7), profiler hot paths (PR 4)
and causal hot edges (PR 9) — merged into a single deterministic
artifact.  :class:`ObservabilityReport` is built from a
:class:`~repro.faults.runner.CampaignResult` whose rows were collected
with ``CampaignSpec(obs=True)``: each row then carries ``profile``
(collapsed-stack lines) and ``causal_edges`` (kind/part edge counts)
next to the usual coverage/property payloads.

Determinism: everything here is a sorted-key fold over simulation
-derived row data — no wall-clock, no completion order — so serial,
parallel, vectorized and resumed sweeps over the same seeds produce a
byte-identical report, which is what lets it be stored (and deduped)
in the PR 8 artifact store under a campaign fingerprint.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: How many merged hot frames / hot edges the report keeps.
TOP_FRAMES = 20
TOP_EDGES = 20


def parse_collapsed(lines: Iterable[str]) -> Dict[str, float]:
    """Parse collapsed-stack lines (``frame;frame value``) to a map."""
    frames: Dict[str, float] = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        stack, _, value = line.rpartition(" ")
        if not stack:
            continue
        try:
            frames[stack] = frames.get(stack, 0.0) + float(value)
        except ValueError:
            continue
    return frames


def merge_frames(per_seed: Iterable[Iterable[str]],
                 top: int = TOP_FRAMES) -> List[Dict[str, Any]]:
    """Sum collapsed stacks across seeds; keep the ``top`` hottest."""
    total: Dict[str, float] = {}
    for lines in per_seed:
        for stack, value in parse_collapsed(lines).items():
            total[stack] = total.get(stack, 0.0) + value
    ranked = sorted(total.items(), key=lambda item: (-item[1], item[0]))
    return [{"stack": stack, "value": round(value, 9)}
            for stack, value in ranked[:top]]


def merge_edges(per_seed: Iterable[Dict[str, Dict[str, int]]]
                ) -> Dict[str, Dict[str, int]]:
    """Sum per-seed causal edge counts (kind edges and part edges)."""
    merged: Dict[str, Dict[str, int]] = {"kinds": {}, "parts": {}}
    for counts in per_seed:
        for family in ("kinds", "parts"):
            for edge, count in (counts.get(family) or {}).items():
                merged[family][edge] = \
                    merged[family].get(edge, 0) + int(count)
    return {family: {edge: merged[family][edge]
                     for edge in sorted(merged[family])}
            for family in ("kinds", "parts")}


def hot_edges(edges: Dict[str, int], top: int = TOP_EDGES
              ) -> List[Dict[str, Any]]:
    ranked = sorted(edges.items(), key=lambda item: (-item[1], item[0]))
    return [{"edge": edge, "count": count}
            for edge, count in ranked[:top]]


class ObservabilityReport:
    """The merged observability picture of one multi-seed campaign."""

    __slots__ = ("name", "seeds", "failed_seeds", "coverage",
                 "properties", "hot_frames", "causal_edges",
                 "messages_delivered", "messages_dropped",
                 "quarantined")

    def __init__(self, name: str, seeds: List[int],
                 failed_seeds: List[int],
                 coverage: Optional[Dict[str, Any]],
                 properties: Optional[Dict[str, Any]],
                 hot_frames: List[Dict[str, Any]],
                 causal_edges: Dict[str, Dict[str, int]],
                 messages_delivered: int, messages_dropped: int,
                 quarantined: List[str]):
        self.name = name
        self.seeds = seeds
        self.failed_seeds = failed_seeds
        self.coverage = coverage
        self.properties = properties
        self.hot_frames = hot_frames
        self.causal_edges = causal_edges
        self.messages_delivered = messages_delivered
        self.messages_dropped = messages_dropped
        self.quarantined = quarantined

    @classmethod
    def from_result(cls, result: Any) -> "ObservabilityReport":
        """Fold a :class:`~repro.faults.runner.CampaignResult`.

        Works on any result — rows without ``profile``/``causal_edges``
        (collected with ``obs=False``) simply contribute nothing to
        those sections.
        """
        rows = result.rows
        merged_coverage = result.coverage()
        coverage_dict: Optional[Dict[str, Any]] = None
        if merged_coverage is not None:
            report_dict = merged_coverage.to_dict()
            coverage_dict = {
                "percent": merged_coverage.total_percent(),
                "report": report_dict,
            }
        quarantined = sorted({part for row in rows
                              for part in row.get("quarantined", ())})
        return cls(
            name=result.name,
            seeds=[row["seed"] for row in rows],
            failed_seeds=list(result.failed_seeds),
            coverage=coverage_dict,
            properties=result.properties(),
            hot_frames=merge_frames(
                row["profile"] for row in rows if "profile" in row),
            causal_edges=merge_edges(
                row["causal_edges"] for row in rows
                if "causal_edges" in row),
            messages_delivered=sum(row.get("messages_delivered", 0)
                                   for row in rows),
            messages_dropped=sum(row.get("messages_dropped", 0)
                                 for row in rows),
            quarantined=quarantined,
        )

    # -- exports -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.name,
            "causal_edges": self.causal_edges,
            "causal_hot_edges": {
                "kinds": hot_edges(self.causal_edges.get("kinds", {})),
                "parts": hot_edges(self.causal_edges.get("parts", {})),
            },
            "coverage": self.coverage,
            "failed_seeds": self.failed_seeds,
            "hot_frames": self.hot_frames,
            "messages": {
                "delivered": self.messages_delivered,
                "dropped": self.messages_dropped,
            },
            "properties": self.properties,
            "quarantined": self.quarantined,
            "seeds": self.seeds,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          default=str)

    def to_html(self) -> str:
        """A dependency-free, self-contained HTML rendering."""
        data = self.to_dict()

        def esc(value: Any) -> str:
            return (str(value).replace("&", "&amp;")
                    .replace("<", "&lt;").replace(">", "&gt;"))

        def table(headers: Tuple[str, ...],
                  rows: Iterable[Tuple[Any, ...]]) -> str:
            head = "".join(f"<th>{esc(h)}</th>" for h in headers)
            body = "".join(
                "<tr>" + "".join(f"<td>{esc(cell)}</td>" for cell in row)
                + "</tr>" for row in rows)
            return (f"<table><thead><tr>{head}</tr></thead>"
                    f"<tbody>{body}</tbody></table>")

        sections: List[str] = []
        summary_rows = [
            ("seeds", len(self.seeds)),
            ("failed seeds", len(self.failed_seeds)),
            ("messages delivered", self.messages_delivered),
            ("messages dropped", self.messages_dropped),
            ("quarantined parts", ", ".join(self.quarantined) or "-"),
        ]
        if self.coverage is not None:
            summary_rows.append(
                ("coverage", f"{self.coverage['percent']:.1f}%"))
        if self.properties is not None:
            summary_rows.append(
                ("property violations",
                 self.properties.get("total_violations", 0)))
        sections.append("<h2>Summary</h2>"
                        + table(("metric", "value"), summary_rows))
        if self.hot_frames:
            sections.append(
                "<h2>Hot paths (merged collapsed stacks)</h2>"
                + table(("stack", "time"),
                        ((frame["stack"], f"{frame['value']:g}")
                         for frame in self.hot_frames)))
        kinds = data["causal_hot_edges"]["kinds"]
        parts = data["causal_hot_edges"]["parts"]
        if kinds or parts:
            sections.append(
                "<h2>Causal hot edges</h2>"
                + table(("kind edge", "count"),
                        ((e["edge"], e["count"]) for e in kinds))
                + table(("part edge", "count"),
                        ((e["edge"], e["count"]) for e in parts)))
        if self.properties is not None:
            prop_rows = [
                (name, stats.get("pass_rate", ""),
                 stats.get("violations", 0))
                for name, stats in sorted(
                    (self.properties.get("properties") or {}).items())]
            if prop_rows:
                sections.append(
                    "<h2>Temporal properties</h2>"
                    + table(("property", "pass rate", "violations"),
                            prop_rows))
        style = ("body{font-family:sans-serif;margin:2em;}"
                 "table{border-collapse:collapse;margin:1em 0;}"
                 "td,th{border:1px solid #999;padding:.3em .6em;"
                 "text-align:left;font-size:13px;}"
                 "th{background:#eee;}")
        return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
                f"<title>observability: {esc(self.name)}</title>"
                f"<style>{style}</style></head><body>"
                f"<h1>Observability report — {esc(self.name)}</h1>"
                + "".join(sections) + "</body></html>")

    def __repr__(self) -> str:
        return (f"<ObservabilityReport {self.name!r} "
                f"seeds={len(self.seeds)} "
                f"frames={len(self.hot_frames)}>")


def campaign_fingerprint(spec: Any) -> str:
    """A stable artifact-store key for one campaign configuration.

    Hashes the canonical spec dict (which already includes the seed
    list), so re-running the identical campaign dedupes to the same
    ``report`` artifact in the PR 8 store.
    """
    from ..store import ArtifactStore, canonical_json

    spec_dict = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
    return ArtifactStore.make_key("obs-report", canonical_json(spec_dict))
