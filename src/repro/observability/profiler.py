"""Deterministic simulated-time profiler over the trace stream.

Wall-clock profilers answer "where does my CPU go"; a *model* profiler
must answer "where does **simulated** time go" — which states a design
lingers in, which transitions dominate the event budget — and do it
identically on every engine and every run of the same seed.  This
profiler therefore consumes only :class:`~repro.engine.TraceEvent`
timestamps (simulated time) and counts, never the host clock, so its
output is byte-deterministic and lockstep-identical between the
interpreted and compiled engines.

Attribution model: each part owns a *frame stack* of its active states
in entry order (outermost first — hierarchical configurations stack
naturally because engines emit ``state_enter`` outside-in).  Whenever
the stack changes or time advances past an event, the elapsed simulated
time since the part's previous sample is attributed to the stack as it
was — exact attribution, not sampling.  Run-to-completion steps and
transition firings are counted against the same frames, giving the
"step-count" profile; token firings profile activity parts.

Output: *collapsed stack* lines — ``frame;frame;frame <value>`` — the
lingua franca of flamegraph tooling (inferno, speedscope, Brendan
Gregg's ``flamegraph.pl``).  Simulated time is scaled to an integer
(default: milli-units) because the format wants integral sample
counts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Frame used while a part has no active state (before start / after
#: termination).
IDLE = "<idle>"


class SimProfiler:
    """TraceBus subscriber attributing simulated time and step counts.

    ``residence`` maps frame tuples to simulated time; ``steps`` maps
    frame tuples to counts (RTC dispatches, transition firings, token
    firings).  Call :meth:`finalize` with the end-of-run time to close
    the open intervals, then :meth:`collapsed_time` /
    :meth:`collapsed_steps` for flamegraph input.
    """

    KINDS = ("event", "transition", "state_enter", "state_exit", "token")

    def __init__(self, bus: Any = None):
        #: (part, state, state, ...) -> simulated time units
        self.residence: Dict[Tuple[str, ...], float] = {}
        #: (part, ..., leaf-frame) -> count
        self.steps: Dict[Tuple[str, ...], int] = {}
        self._stacks: Dict[str, List[str]] = {}
        self._last_t: Dict[str, float] = {}
        # hot-path caches: the current frame tuple per part (rebuilt
        # only when the stack changes) and the step-key tuples per
        # (frame, label) — event vocabularies are small, so both stay
        # tiny while saving a tuple build + string format per event
        self._frames: Dict[str, Tuple[str, ...]] = {}
        self._step_keys: Dict[Tuple[str, ...], Dict[str, Tuple[str, ...]]]\
            = {}
        self._labels: Dict[Any, str] = {}
        self._finalized_at: Optional[float] = None
        self._seen = [0]
        self._ingest = self._make_ingest()
        self.subscription = None
        if bus is not None:
            self.subscription = bus.subscribe(self._ingest,
                                              kinds=self.KINDS)

    # -- the hot path ------------------------------------------------------

    @property
    def events_seen(self) -> int:
        return self._seen[0]

    def __call__(self, event: Any) -> None:
        self._ingest(event)

    def _make_ingest(self):
        # the ingest closure binds every mutable structure as a cell
        # variable: this runs once per engine trace event, and each
        # avoided ``self.`` lookup is measurable at that rate
        stacks = self._stacks
        last_t = self._last_t
        frames = self._frames
        step_keys = self._step_keys
        labels = self._labels
        residence = self.residence
        steps = self.steps
        seen = self._seen

        def ingest(event: Any) -> None:
            seen[0] += 1
            part = event.part
            stack = stacks.get(part)
            if stack is None:
                stack = stacks[part] = []
                last_t[part] = 0.0
                frames[part] = (part, IDLE)
            now = event.t
            elapsed = now - last_t[part]
            if elapsed > 0:
                frame = frames[part]
                residence[frame] = residence.get(frame, 0.0) + elapsed
                last_t[part] = now
            kind = event.kind
            data = event.data
            if kind == "event":
                name = data["event"]
                label = labels.get(name)
                if label is None:
                    label = labels[name] = f"event:{name}"
            elif kind == "transition":
                edge = (data["source"], data["target"], data["event"])
                label = labels.get(edge)
                if label is None:
                    label = labels[edge] = \
                        f"fire:{edge[0]}->{edge[1]}@{edge[2]}"
            elif kind == "state_enter":
                stack.append(data["state"])
                frames[part] = (part, *stack)
                return
            elif kind == "state_exit":
                state = data["state"]
                if state in stack:
                    stack.remove(state)
                    frames[part] = (part, *stack) if stack \
                        else (part, IDLE)
                return
            elif kind == "token":
                key = (part, f"token:{data['node']}")
                steps[key] = steps.get(key, 0) + 1
                return
            else:
                return
            frame = frames[part]
            by_label = step_keys.get(frame)
            if by_label is None:
                by_label = step_keys[frame] = {}
            key = by_label.get(label)
            if key is None:
                key = by_label[label] = (part, *stack, label)
            steps[key] = steps.get(key, 0) + 1

        return ingest

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Capture attribution state for rollback (frame stacks, open
        interval starts, accumulated residence/steps)."""
        return {
            "residence": dict(self.residence),
            "steps": dict(self.steps),
            "stacks": {part: list(stack)
                       for part, stack in self._stacks.items()},
            "last_t": dict(self._last_t),
            "frames": dict(self._frames),
            "seen": self._seen[0],
            "finalized_at": self._finalized_at,
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        """Reinstate a :meth:`checkpoint` — mutating the structures in
        place because the ingest closure binds them as cell variables.
        The ``_step_keys``/``_labels`` caches are pure functions of
        their keys, so stale entries are harmless and kept."""
        self.residence.clear()
        self.residence.update(snap["residence"])
        self.steps.clear()
        self.steps.update(snap["steps"])
        self._stacks.clear()
        for part, stack in snap["stacks"].items():
            self._stacks[part] = list(stack)
        self._last_t.clear()
        self._last_t.update(snap["last_t"])
        self._frames.clear()
        self._frames.update(snap["frames"])
        self._seen[0] = snap["seen"]
        self._finalized_at = snap["finalized_at"]

    # -- results -----------------------------------------------------------

    def finalize(self, now: float) -> "SimProfiler":
        """Attribute the tail interval up to ``now`` (idempotent for a
        given time; chainable)."""
        for part in self._stacks:
            elapsed = now - self._last_t[part]
            if elapsed > 0:
                frame = self._frames[part]
                self.residence[frame] = \
                    self.residence.get(frame, 0.0) + elapsed
                self._last_t[part] = now
        self._finalized_at = now
        return self

    def collapsed_time(self, scale: float = 1000.0) -> List[str]:
        """Simulated-time profile as collapsed-stack lines.

        ``scale`` converts time units to the integral value flamegraph
        tools expect (default: 1 time unit = 1000 samples).
        """
        lines = []
        for frame in sorted(self.residence):
            value = int(round(self.residence[frame] * scale))
            if value:
                lines.append(";".join(frame) + f" {value}")
        return lines

    def collapsed_steps(self) -> List[str]:
        """Step-count profile (RTC/transition/token) as collapsed lines."""
        return [";".join(frame) + f" {count}"
                for frame, count in sorted(self.steps.items())]

    def report(self) -> Dict[str, Any]:
        """Plain-data summary (deterministically ordered)."""
        per_part_time: Dict[str, float] = {}
        for frame, value in self.residence.items():
            per_part_time[frame[0]] = per_part_time.get(frame[0], 0) + value
        per_part_steps: Dict[str, int] = {}
        for frame, count in self.steps.items():
            per_part_steps[frame[0]] = per_part_steps.get(frame[0], 0) + count
        return {
            "events_seen": self.events_seen,
            "finalized_at": self._finalized_at,
            "parts": {
                part: {"steps": per_part_steps.get(part, 0),
                       "time": round(per_part_time.get(part, 0.0), 9)}
                for part in sorted(set(per_part_time) | set(per_part_steps))},
            "top_frames": [
                {"frame": ";".join(frame),
                 "time": round(value, 9)}
                for frame, value in sorted(
                    self.residence.items(),
                    key=lambda item: (-item[1], item[0]))[:10]],
        }

    def __repr__(self) -> str:
        return (f"<SimProfiler frames={len(self.residence)} "
                f"steps={sum(self.steps.values())}>")
