"""`repro.observability` — verification-grade observability (PR 4).

Four engine-agnostic :class:`~repro.engine.TraceBus` consumers plus an
export layer, all byte-deterministic across the interpreted and
compiled engines:

* functional coverage (:mod:`~repro.observability.coverage`) — static
  bin universes with enumerable holes, hit collection, mergeable
  reports;
* the deterministic profiler (:mod:`~repro.observability.profiler`) —
  simulated-time and step-count attribution as collapsed stacks;
* metrics export (:mod:`~repro.observability.metrics`) — Prometheus
  text / JSON rendering of :data:`repro.perf.PERF` plus coverage;
* the flight recorder (:mod:`~repro.observability.flightrecorder`) —
  a bounded ring of recent events auto-dumped on kernel errors and
  quarantines.

``SystemSimulation(coverage=True, profile=True, flight_recorder=N)``
wires them through :class:`ObservabilitySuite`; see
docs/OBSERVABILITY.md.

PR 9 adds the *why* layer on top:

* causal span tracing (:mod:`~repro.observability.causality`) —
  provenance trees over the causally-stamped trace stream, with
  ``why()`` root-cause walks, per-part causal cones, JSONL span and
  Chrome/Perfetto exports (``SystemSimulation(causality=True)``);
* live campaign telemetry (:mod:`~repro.observability.campaign`) —
  worker heartbeats over an OS pipe (never the TraceBus), a live
  progress line and a ``campaign.live`` Prometheus snapshot;
* the cross-seed report (:mod:`~repro.observability.report`) —
  coverage, property pass rates, profiler hot paths and causal hot
  edges of a whole campaign merged into one deterministic artifact.
"""

from .campaign import CampaignTelemetry, WorkerHeartbeat, send_beat
from .causality import (
    CausalIndex,
    event_label,
    perfetto_json,
    span_lines,
    spans_from_jsonl,
)
from .coverage import (
    BIN_KINDS,
    COMPLETION,
    CoverageCollector,
    CoverageModel,
    CoverageReport,
    PartCoverageModel,
    cross_key,
    transition_key,
)
from .flightrecorder import DEFAULT_CAPACITY, FlightRecorder
from .metrics import PREFIX, metric_name, to_json, to_prometheus
from .profiler import IDLE, SimProfiler
from .report import ObservabilityReport, campaign_fingerprint
from .suite import ObservabilitySuite

__all__ = [
    "CampaignTelemetry",
    "WorkerHeartbeat",
    "send_beat",
    "CausalIndex",
    "event_label",
    "perfetto_json",
    "span_lines",
    "spans_from_jsonl",
    "ObservabilityReport",
    "campaign_fingerprint",
    "BIN_KINDS",
    "COMPLETION",
    "CoverageCollector",
    "CoverageModel",
    "CoverageReport",
    "PartCoverageModel",
    "cross_key",
    "transition_key",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "PREFIX",
    "metric_name",
    "to_json",
    "to_prometheus",
    "IDLE",
    "SimProfiler",
    "ObservabilitySuite",
]
