"""Metrics export: Prometheus text format and JSON.

The :data:`repro.perf.PERF` registry already aggregates counters,
timing observations and bounded histograms; this module renders a
``snapshot()`` (plus, optionally, a
:class:`~repro.observability.CoverageReport`) in the two formats a
verification pipeline actually scrapes:

* **Prometheus text exposition** — counters as ``counter``, timing
  observations as ``summary``-style ``_sum``/``_count`` plus min/max
  gauges, histograms as classic cumulative ``_bucket{le=...}`` series
  with deterministic p50/p95/p99 gauges, and coverage as labelled
  percent gauges per part and bin kind.
* **JSON** — the snapshot embedded verbatim under ``"perf"`` with the
  coverage dict under ``"coverage"``, sorted keys throughout.

Both renderings are pure functions of their inputs and iterate only
sorted containers, so equal snapshots export byte-identically — the
property the lockstep tests pin.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_RE = re.compile(r"([\\\"\n])")

#: Prefix for every exported metric family.
PREFIX = "repro"


def metric_name(name: str, prefix: str = PREFIX) -> str:
    """A Prometheus-legal metric name (dots and dashes become ``_``)."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}_{sanitized}"


def _label_value(value: str) -> str:
    return _LABEL_RE.sub(r"\\\1", value).replace("\n", "\\n")


def _format(value: float) -> str:
    """Shortest faithful decimal (integers without the trailing .0)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _coverage_dict(coverage: Any) -> Optional[Dict[str, Any]]:
    if coverage is None:
        return None
    if hasattr(coverage, "to_dict"):
        return coverage.to_dict()
    return coverage


def to_prometheus(snapshot: Dict[str, Any], coverage: Any = None,
                  prefix: str = PREFIX) -> str:
    """Render a perf snapshot (+ optional coverage) as Prometheus text."""
    lines: List[str] = []

    for name in sorted(snapshot.get("counters", {})):
        family = metric_name(name, prefix)
        lines.append(f"# HELP {family} Event counter {name!r}")
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_format(snapshot['counters'][name])}")

    for name in sorted(snapshot.get("observations", {})):
        stats = snapshot["observations"][name]
        family = metric_name(name, prefix)
        lines.append(f"# HELP {family} Timing observations {name!r}")
        lines.append(f"# TYPE {family} summary")
        lines.append(f"{family}_sum {_format(stats['total'])}")
        lines.append(f"{family}_count {_format(stats['count'])}")
        lines.append(f"# HELP {family}_min Minimum observed {name!r}")
        lines.append(f"# TYPE {family}_min gauge")
        lines.append(f"{family}_min {_format(stats['min'])}")
        lines.append(f"# HELP {family}_max Maximum observed {name!r}")
        lines.append(f"# TYPE {family}_max gauge")
        lines.append(f"{family}_max {_format(stats['max'])}")

    for name in sorted(snapshot.get("histograms", {})):
        series = snapshot["histograms"][name]
        family = metric_name(name, prefix)
        lines.append(f"# HELP {family} Histogram {name!r}")
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for bound, count in zip(series["buckets"], series["counts"]):
            cumulative += count
            lines.append(
                f'{family}_bucket{{le="{_format(bound)}"}} {cumulative}')
        lines.append(f'{family}_bucket{{le="+Inf"}} {series["count"]}')
        lines.append(f"{family}_sum {_format(series['sum'])}")
        lines.append(f"{family}_count {_format(series['count'])}")
        for point in ("p50", "p95", "p99"):
            if point in series:
                lines.append(f"# HELP {family}_{point} "
                             f"Deterministic {point} of {name!r}")
                lines.append(f"# TYPE {family}_{point} gauge")
                lines.append(
                    f"{family}_{point} {_format(series[point])}")

    coverage_data = _coverage_dict(coverage)
    if coverage_data is not None:
        percent = metric_name("coverage_percent", prefix)
        bins = metric_name("coverage_bins", prefix)
        covered = metric_name("coverage_covered", prefix)
        lines.append(f"# HELP {percent} Functional coverage percent "
                     f"per part and bin kind")
        lines.append(f"# TYPE {percent} gauge")
        lines.append(f"# HELP {bins} Total coverage bins per part "
                     f"and bin kind")
        lines.append(f"# TYPE {bins} gauge")
        lines.append(f"# HELP {covered} Covered bins per part "
                     f"and bin kind")
        lines.append(f"# TYPE {covered} gauge")
        for part in sorted(coverage_data.get("parts", {})):
            summary = coverage_data["parts"][part].get("summary", {})
            label = _label_value(part)
            for kind in sorted(summary):
                stats = summary[kind]
                if not isinstance(stats, dict):
                    continue
                lines.append(
                    f'{percent}{{part="{label}",kind="{kind}"}} '
                    f"{_format(stats['percent'])}")
                lines.append(
                    f'{bins}{{part="{label}",kind="{kind}"}} '
                    f"{_format(stats['bins'])}")
                lines.append(
                    f'{covered}{{part="{label}",kind="{kind}"}} '
                    f"{_format(stats['covered'])}")
            if "percent" in summary:
                lines.append(f'{percent}{{part="{label}",kind="all"}} '
                             f"{_format(summary['percent'])}")
        total = metric_name("coverage_total_percent", prefix)
        lines.append(f"# HELP {total} Functional coverage percent "
                     f"over every bin universe")
        lines.append(f"# TYPE {total} gauge")
        lines.append(
            f"{total} {_format(coverage_data.get('total_percent', 0.0))}")

    return "\n".join(lines) + "\n"


def to_json(snapshot: Dict[str, Any], coverage: Any = None,
            indent: Optional[int] = 2) -> str:
    """Render a perf snapshot (+ optional coverage) as sorted-key JSON."""
    payload: Dict[str, Any] = {"perf": snapshot}
    coverage_data = _coverage_dict(coverage)
    if coverage_data is not None:
        payload["coverage"] = coverage_data
    return json.dumps(payload, sort_keys=True, indent=indent, default=str)
