"""Instance specifications: object diagrams.

An :class:`InstanceSpecification` is a modelled instance of a
classifier; its :class:`Slot` values assign attribute values.  Links
(instances of associations) connect instance specifications.  Together
these realize the paper's "Object Diagram ... describes how individual
class instances (objects) are related".
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..errors import ModelError
from .associations import Association
from .classifiers import Classifier
from .features import Property
from .namespaces import PackageableElement
from .element import Element
from .values import ValueSpecification, literal


class Slot(Element):
    """Assigns values to one structural feature of an instance."""

    _id_tag = "Slot"

    def __init__(self, feature: Property):
        super().__init__()
        self.feature = feature

    @property
    def values(self) -> Tuple[ValueSpecification, ...]:
        """The value specifications held by this slot."""
        return self.owned_of_type(ValueSpecification)

    def add_value(self, raw: Any) -> ValueSpecification:
        """Append a value (wraps plain Python values as literals)."""
        spec = literal(raw)
        self._own(spec)
        return spec

    def plain_values(self) -> Tuple[Any, ...]:
        """The concrete Python values of this slot."""
        return tuple(v.value() for v in self.values)

    def __repr__(self) -> str:
        return f"<Slot {self.feature.name} = {list(self.plain_values())!r}>"


class InstanceSpecification(PackageableElement):
    """A modelled instance of one (or more) classifiers."""

    _id_tag = "InstanceSpecification"

    def __init__(self, name: str = "", classifier: Optional[Classifier] = None):
        super().__init__(name)
        self.classifiers: list = [classifier] if classifier is not None else []

    @property
    def classifier(self) -> Optional[Classifier]:
        """The first classified type (the common single-classifier case)."""
        return self.classifiers[0] if self.classifiers else None

    @property
    def slots(self) -> Tuple[Slot, ...]:
        """Owned slots."""
        return self.owned_of_type(Slot)

    def set_slot(self, feature_name: str, *raw_values: Any) -> Slot:
        """Assign values to the named attribute of the classifier.

        The feature is resolved through the classifier's full attribute
        set (including inherited attributes); existing slot values for
        the feature are replaced.
        """
        classifier = self.classifier
        if classifier is None:
            raise ModelError(f"instance {self.name!r} has no classifier")
        feature = next(
            (p for p in classifier.all_attributes() if p.name == feature_name),
            None,
        )
        if feature is None:
            raise ModelError(
                f"{classifier.name!r} has no attribute {feature_name!r}"
            )
        existing = self.find_slot(feature_name)
        if existing is not None:
            self._disown(existing)
        slot = Slot(feature)
        self._own(slot)
        for raw in raw_values:
            slot.add_value(raw)
        if not feature.multiplicity.accepts(len(raw_values)):
            raise ModelError(
                f"slot {feature_name!r}: {len(raw_values)} value(s) violate "
                f"multiplicity {feature.multiplicity}"
            )
        return slot

    def find_slot(self, feature_name: str) -> Optional[Slot]:
        """The slot for the named feature, or None."""
        for slot in self.slots:
            if slot.feature.name == feature_name:
                return slot
        return None

    def slot_value(self, feature_name: str, default: Any = None) -> Any:
        """Convenience: the single value of the named slot (or default)."""
        slot = self.find_slot(feature_name)
        if slot is None:
            feature = None
            if self.classifier is not None:
                feature = next(
                    (p for p in self.classifier.all_attributes()
                     if p.name == feature_name), None)
            if feature is not None and feature.default_value is not None:
                return feature.default_value
            return default
        values = slot.plain_values()
        return values[0] if len(values) == 1 else values

    def as_dict(self) -> Dict[str, Any]:
        """All slot values as a plain dict (single values unwrapped)."""
        return {slot.feature.name: self.slot_value(slot.feature.name)
                for slot in self.slots}

    def __repr__(self) -> str:
        ctype = self.classifier.name if self.classifier else "?"
        return f"<InstanceSpecification {self.name}: {ctype}>"


class Link(PackageableElement):
    """An instance of an association, tying instance specifications."""

    _id_tag = "Link"

    def __init__(self, association: Association,
                 *participants: InstanceSpecification, name: str = ""):
        super().__init__(name)
        self.association = association
        expected = len(association.member_ends)
        if len(participants) != expected:
            raise ModelError(
                f"link over {association.name!r} needs {expected} "
                f"participants, got {len(participants)}"
            )
        for end, instance in zip(association.member_ends, participants):
            end_type = end.type
            inst_type = instance.classifier
            if (isinstance(end_type, Classifier) and inst_type is not None
                    and not inst_type.conforms_to(end_type)):
                raise ModelError(
                    f"link participant {instance.name!r} "
                    f"({inst_type.name}) does not conform to end type "
                    f"{end_type.name!r}"
                )
        self.participants: Tuple[InstanceSpecification, ...] = tuple(participants)

    def __repr__(self) -> str:
        names = " - ".join(p.name for p in self.participants)
        return f"<Link {self.association.name or ''} ({names})>"
