"""Value specifications: literal values used for defaults and slots.

UML models carry values in attribute defaults, slot values of instance
specifications, and tagged values of stereotype applications.  This
module implements the UML 2.0 ``ValueSpecification`` hierarchy plus
:class:`OpaqueExpression`, which wraps an ASL (or any textual)
expression for later evaluation.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ModelError
from .element import Element


class ValueSpecification(Element):
    """Abstract specification of a value."""

    _id_tag = "ValueSpecification"

    def value(self) -> Any:
        """The concrete Python value this specification denotes."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.value()!r}>"


class LiteralInteger(ValueSpecification):
    """An integer literal."""

    _id_tag = "LiteralInteger"

    def __init__(self, literal: int = 0):
        super().__init__()
        self.literal = int(literal)

    def value(self) -> int:
        return self.literal


class LiteralReal(ValueSpecification):
    """A real (floating-point) literal."""

    _id_tag = "LiteralReal"

    def __init__(self, literal: float = 0.0):
        super().__init__()
        self.literal = float(literal)

    def value(self) -> float:
        return self.literal


class LiteralBoolean(ValueSpecification):
    """A boolean literal."""

    _id_tag = "LiteralBoolean"

    def __init__(self, literal: bool = False):
        super().__init__()
        self.literal = bool(literal)

    def value(self) -> bool:
        return self.literal


class LiteralString(ValueSpecification):
    """A string literal."""

    _id_tag = "LiteralString"

    def __init__(self, literal: str = ""):
        super().__init__()
        self.literal = str(literal)

    def value(self) -> str:
        return self.literal


class LiteralNull(ValueSpecification):
    """The absence of a value."""

    _id_tag = "LiteralNull"

    def value(self) -> None:
        return None


class LiteralUnlimitedNatural(ValueSpecification):
    """An unlimited natural: a non-negative integer or ``*`` (None)."""

    _id_tag = "LiteralUnlimitedNatural"

    def __init__(self, literal: Optional[int] = None):
        super().__init__()
        if literal is not None and literal < 0:
            raise ModelError("unlimited natural literals must be >= 0 or None (*)")
        self.literal = literal

    def value(self) -> Optional[int]:
        return self.literal

    def __repr__(self) -> str:
        return f"<LiteralUnlimitedNatural {'*' if self.literal is None else self.literal}>"


class InstanceValue(ValueSpecification):
    """A value that refers to an instance specification (or enum literal)."""

    _id_tag = "InstanceValue"

    def __init__(self, instance: Element):
        super().__init__()
        self.instance = instance

    def value(self) -> Element:
        return self.instance


class OpaqueExpression(ValueSpecification):
    """A textual expression in a named language (by default ``"asl"``).

    The library evaluates ASL opaque expressions with
    :mod:`repro.asl`; other languages are carried verbatim.
    """

    _id_tag = "OpaqueExpression"

    def __init__(self, body: str, language: str = "asl",
                 name: str = ""):
        super().__init__()
        self.body = body
        self.language = language
        self.name = name  # optional label (e.g. invariant names)

    def value(self) -> str:
        return self.body

    def __repr__(self) -> str:
        return f"<OpaqueExpression [{self.language}] {self.body!r}>"


def literal(raw: Any) -> ValueSpecification:
    """Wrap a plain Python value in the appropriate literal specification.

    >>> literal(3)
    <LiteralInteger 3>
    >>> literal(None)
    <LiteralNull None>
    """
    if raw is None:
        return LiteralNull()
    if isinstance(raw, bool):  # before int: bool is a subclass of int
        return LiteralBoolean(raw)
    if isinstance(raw, int):
        return LiteralInteger(raw)
    if isinstance(raw, float):
        return LiteralReal(raw)
    if isinstance(raw, str):
        return LiteralString(raw)
    if isinstance(raw, ValueSpecification):
        return raw
    if isinstance(raw, Element):
        return InstanceValue(raw)
    raise ModelError(f"cannot build a literal from {type(raw).__name__}")
