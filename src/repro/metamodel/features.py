"""Structural and behavioral features: properties, operations, parameters.

These are the members of classifiers.  A :class:`Property` doubles as an
association end (UML unifies the two); an :class:`Operation` owns its
:class:`Parameter` list and may carry an ASL body (making the model
executable, per the paper's xUML discussion).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, TYPE_CHECKING

from ..errors import ModelError
from .element import (
    AggregationKind,
    Multiplicity,
    ONE,
    ParameterDirection,
)
from .namespaces import NamedElement, Namespace
from .types import TypeElement
from .values import OpaqueExpression, ValueSpecification, literal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .associations import Association
    from .classifiers import Classifier


class TypedElement(NamedElement):
    """A named element with a (possibly absent) type."""

    _id_tag = "TypedElement"

    def __init__(self, name: str = "", type: Optional[TypeElement] = None):
        super().__init__(name)
        self.type = type

    @property
    def type_name(self) -> str:
        """Name of the element's type, or ``""`` when untyped."""
        return self.type.name if self.type is not None else ""


class Feature(TypedElement):
    """A classifier member; may be per-instance or static."""

    _id_tag = "Feature"

    def __init__(self, name: str = "", type: Optional[TypeElement] = None,
                 is_static: bool = False):
        super().__init__(name, type)
        self.is_static = is_static

    @property
    def featuring_classifier(self) -> Optional["Classifier"]:
        """The classifier that owns this feature, if any."""
        from .classifiers import Classifier  # local import breaks the cycle

        owner = self.owner
        return owner if isinstance(owner, Classifier) else None


class Property(Feature):
    """An attribute of a classifier or an end of an association.

    A property holds its multiplicity, aggregation kind, optional default
    value and the usual UML boolean modifiers.  When it takes part in an
    association, :attr:`association` points back at it.
    """

    _id_tag = "Property"

    def __init__(self, name: str = "", type: Optional[TypeElement] = None,
                 multiplicity: Multiplicity = ONE,
                 aggregation: AggregationKind = AggregationKind.NONE,
                 default: Any = None,
                 is_read_only: bool = False,
                 is_derived: bool = False,
                 is_static: bool = False,
                 is_ordered: bool = False,
                 is_unique: bool = True):
        super().__init__(name, type, is_static)
        self.multiplicity = multiplicity
        self.aggregation = aggregation
        self.is_read_only = is_read_only
        self.is_derived = is_derived
        self.is_ordered = is_ordered
        self.is_unique = is_unique
        self.association: Optional["Association"] = None
        self.is_navigable = True
        self._default: Optional[ValueSpecification] = None
        if default is not None:
            self.set_default(default)

    @property
    def default(self) -> Optional[ValueSpecification]:
        """The default value specification, if one was set."""
        return self._default

    def set_default(self, raw: Any) -> ValueSpecification:
        """Set the default from a plain Python value or a specification."""
        if self._default is not None:
            self._disown(self._default)
        spec = literal(raw)
        self._own(spec)
        self._default = spec
        return spec

    @property
    def default_value(self) -> Any:
        """The concrete default value, or None when unset."""
        return self._default.value() if self._default is not None else None

    @property
    def is_composite(self) -> bool:
        """True when this end aggregates its target compositely."""
        return self.aggregation is AggregationKind.COMPOSITE

    @property
    def opposite(self) -> Optional["Property"]:
        """For a binary association end, the other end; else None."""
        if self.association is None:
            return None
        ends = self.association.member_ends
        if len(ends) != 2:
            return None
        return ends[1] if ends[0] is self else ends[0]

    def __repr__(self) -> str:
        type_part = f": {self.type_name}" if self.type is not None else ""
        return f"<Property {self.name}{type_part} [{self.multiplicity}]>"


class Parameter(TypedElement):
    """A parameter of an operation (or other behavioral feature)."""

    _id_tag = "Parameter"

    def __init__(self, name: str = "", type: Optional[TypeElement] = None,
                 direction: ParameterDirection = ParameterDirection.IN,
                 multiplicity: Multiplicity = ONE,
                 default: Any = None):
        super().__init__(name, type)
        self.direction = direction
        self.multiplicity = multiplicity
        self._default: Optional[ValueSpecification] = None
        if default is not None:
            spec = literal(default)
            self._own(spec)
            self._default = spec

    @property
    def default_value(self) -> Any:
        """The concrete default value, or None when unset."""
        return self._default.value() if self._default is not None else None

    def __repr__(self) -> str:
        return f"<Parameter {self.direction.value} {self.name}: {self.type_name}>"


class Operation(Feature, Namespace):
    """A behavioral feature of a classifier.

    Parameters are owned; at most one may have ``RETURN`` direction.  An
    operation can carry a *method body* as ASL source text, which the
    xUML interpreter (:mod:`repro.asl`) executes and the code generators
    translate.
    """

    _id_tag = "Operation"

    def __init__(self, name: str = "", return_type: Optional[TypeElement] = None,
                 is_abstract: bool = False, is_query: bool = False,
                 is_static: bool = False):
        super().__init__(name, None, is_static)
        self.is_abstract = is_abstract
        self.is_query = is_query
        self._body: Optional[OpaqueExpression] = None
        if return_type is not None:
            self.set_return_type(return_type)

    # -- parameters -------------------------------------------------------

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        """All owned parameters, including the return parameter."""
        return self.owned_of_type(Parameter)

    @property
    def in_parameters(self) -> Tuple[Parameter, ...]:
        """Parameters with IN or INOUT direction, in declaration order."""
        return tuple(p for p in self.parameters
                     if p.direction in (ParameterDirection.IN,
                                        ParameterDirection.INOUT))

    @property
    def out_parameters(self) -> Tuple[Parameter, ...]:
        """Parameters with OUT or INOUT direction."""
        return tuple(p for p in self.parameters
                     if p.direction in (ParameterDirection.OUT,
                                        ParameterDirection.INOUT))

    @property
    def return_parameter(self) -> Optional[Parameter]:
        """The unique RETURN-direction parameter, if declared."""
        for param in self.parameters:
            if param.direction is ParameterDirection.RETURN:
                return param
        return None

    @property
    def return_type(self) -> Optional[TypeElement]:
        """Type of the return parameter, or None for void operations."""
        ret = self.return_parameter
        return ret.type if ret is not None else None

    def add_parameter(self, name: str, type: Optional[TypeElement] = None,
                      direction: ParameterDirection = ParameterDirection.IN,
                      default: Any = None) -> Parameter:
        """Create and own a parameter."""
        if direction is ParameterDirection.RETURN and self.return_parameter:
            raise ModelError(
                f"operation {self.name!r} already has a return parameter"
            )
        if name and self.has_member(name):
            raise ModelError(
                f"operation {self.name!r} already has a parameter {name!r}"
            )
        param = Parameter(name, type, direction, default=default)
        self._own(param)
        return param

    def set_return_type(self, type: TypeElement) -> Parameter:
        """Declare (or replace) the return parameter's type."""
        existing = self.return_parameter
        if existing is not None:
            existing.type = type
            return existing
        param = Parameter("return", type, ParameterDirection.RETURN)
        self._own(param)
        return param

    # -- method body (xUML) ------------------------------------------------

    @property
    def body(self) -> Optional[str]:
        """The ASL method body source text, if any."""
        return self._body.body if self._body is not None else None

    def set_body(self, source: str, language: str = "asl") -> OpaqueExpression:
        """Attach (or replace) the textual method body."""
        if self._body is not None:
            self._disown(self._body)
        expr = OpaqueExpression(source, language)
        self._own(expr)
        self._body = expr
        return expr

    @property
    def signature(self) -> str:
        """Human-readable signature, e.g. ``read(addr: Integer): Integer``."""
        params = ", ".join(
            f"{p.name}: {p.type_name or 'void'}" for p in self.in_parameters
        )
        ret = self.return_type
        suffix = f": {ret.name}" if ret is not None else ""
        return f"{self.name}({params}){suffix}"

    def __repr__(self) -> str:
        return f"<Operation {self.signature}>"


class Reception(Feature):
    """Declares that a classifier reacts to receipt of a signal."""

    _id_tag = "Reception"

    def __init__(self, signal: "Classifier"):
        super().__init__(signal.name)
        self.signal = signal

    def __repr__(self) -> str:
        return f"<Reception of {self.signal.name!r}>"
