"""Associations between classifiers.

UML represents relationships in class diagrams as associations whose
ends are :class:`~repro.metamodel.features.Property` instances.  The
factory :func:`associate` covers the overwhelmingly common binary case
with sensible defaults; n-ary associations are supported directly by
:class:`Association`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import ModelError
from .classifiers import Classifier
from .element import AggregationKind, Multiplicity, ONE
from .features import Property
from .namespaces import PackageableElement


class Association(PackageableElement):
    """A semantic relationship between two or more classifiers.

    Ends that are *owned by the association* live in ``self`` and are
    non-navigable by default; ends owned by a participating classifier
    (i.e. appearing as its attribute) are navigable.  ``member_ends``
    always lists all ends in order.
    """

    _id_tag = "Association"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._member_ends: list = []

    @property
    def member_ends(self) -> Tuple[Property, ...]:
        """All ends of the association, in declaration order."""
        return tuple(self._member_ends)

    @property
    def owned_ends(self) -> Tuple[Property, ...]:
        """The ends owned by the association itself."""
        return tuple(end for end in self._member_ends if end.owner is self)

    @property
    def end_types(self) -> Tuple[Classifier, ...]:
        """Classifiers at the ends, in order."""
        return tuple(end.type for end in self._member_ends)  # type: ignore[misc]

    @property
    def is_binary(self) -> bool:
        """True for the common two-ended association."""
        return len(self._member_ends) == 2

    def add_end(self, end: Property, owned_here: bool = True) -> Property:
        """Register ``end`` as a member end.

        ``owned_here=False`` means the caller already attached the end
        to a classifier as an attribute (a navigable end).
        """
        if end.type is None or not isinstance(end.type, Classifier):
            raise ModelError("association ends must be typed by a classifier")
        if end.association is not None:
            raise ModelError(f"{end!r} already belongs to an association")
        if owned_here:
            self._own(end)
            end.is_navigable = False
        end.association = self
        self._member_ends.append(end)
        return end

    def validate_arity(self) -> None:
        """Raise unless the association has at least two ends."""
        if len(self._member_ends) < 2:
            raise ModelError(
                f"association {self.name!r} needs >= 2 ends, "
                f"has {len(self._member_ends)}"
            )

    def __repr__(self) -> str:
        ends = " - ".join(e.type_name for e in self._member_ends)
        return f"<Association {self.name or self.xmi_id} ({ends})>"


def associate(source: Classifier, target: Classifier,
              source_end: str = "", target_end: str = "",
              source_multiplicity: Multiplicity = ONE,
              target_multiplicity: Multiplicity = ONE,
              aggregation: AggregationKind = AggregationKind.NONE,
              name: str = "",
              navigable_both: bool = False) -> Association:
    """Create a binary association between two classifiers.

    The *target* end becomes an attribute of ``source`` (navigable
    source→target) named ``target_end`` (default: decapitalized target
    class name).  The *source* end is owned by the association unless
    ``navigable_both`` is set, in which case it becomes an attribute of
    ``target`` as well.  ``aggregation`` applies to the source side
    (e.g. COMPOSITE means *source compositely owns target instances* —
    the black diamond sits at the source).

    Returns the association; it is left ownerless so the caller can
    ``package.add(...)`` it.
    """
    association = Association(name)

    target_prop = Property(
        target_end or _default_end_name(target),
        target,
        target_multiplicity,
        aggregation,
    )
    source._own(target_prop)
    association.add_end(target_prop, owned_here=False)

    source_prop = Property(
        source_end or _default_end_name(source),
        source,
        source_multiplicity,
    )
    if navigable_both:
        target._own(source_prop)
        association.add_end(source_prop, owned_here=False)
    else:
        association.add_end(source_prop, owned_here=True)

    association.validate_arity()
    return association


def _default_end_name(classifier: Classifier) -> str:
    """Decapitalize a classifier name for use as an end name."""
    name = classifier.name or "end"
    return name[0].lower() + name[1:]
