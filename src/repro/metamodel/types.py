"""Types: data types, primitive types and enumerations.

:class:`TypeElement` is the abstract supertype for everything usable as
the type of a property or parameter (classifiers subclass it too).  The
module also exposes the standard UML primitive types as a shared,
read-only library (:data:`PRIMITIVES`) so models agree on identity of
``Integer``, ``Boolean`` and friends.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import ModelError
from .namespaces import Namespace, PackageableElement


class TypeElement(PackageableElement):
    """Abstract supertype of all things usable as the type of a value.

    (Named ``TypeElement`` rather than UML's ``Type`` to avoid clashing
    with :class:`typing.Type` in user code.)
    """

    _id_tag = "Type"

    def conforms_to(self, other: "TypeElement") -> bool:
        """Default type conformance: identity (classifiers override)."""
        return self is other


class DataType(TypeElement, Namespace):
    """A type whose instances are identified only by their value."""

    _id_tag = "DataType"


class PrimitiveType(DataType):
    """A predefined atomic data type (Integer, Boolean, ...)."""

    _id_tag = "PrimitiveType"


class EnumerationLiteral(PackageableElement):
    """One value of an enumeration."""

    _id_tag = "EnumerationLiteral"

    @property
    def enumeration(self) -> Optional["Enumeration"]:
        """The owning enumeration."""
        owner = self.owner
        return owner if isinstance(owner, Enumeration) else None


class Enumeration(DataType):
    """A data type with a finite set of named literals."""

    _id_tag = "Enumeration"

    def __init__(self, name: str = "", literals: Tuple[str, ...] = ()):
        super().__init__(name)
        for literal_name in literals:
            self.add_literal(literal_name)

    def add_literal(self, name: str) -> EnumerationLiteral:
        """Append a literal with the given name (names must be unique)."""
        if self.has_member(name):
            raise ModelError(f"enumeration {self.name!r} already has literal {name!r}")
        lit = EnumerationLiteral(name)
        self._own(lit)
        return lit

    @property
    def literals(self) -> Tuple[EnumerationLiteral, ...]:
        """The owned literals, in declaration order."""
        return self.owned_of_type(EnumerationLiteral)

    def literal(self, name: str) -> EnumerationLiteral:
        """Lookup a literal by name."""
        return self.member(name, EnumerationLiteral)


def standard_primitives() -> Dict[str, PrimitiveType]:
    """Create a fresh set of the five UML standard primitive types.

    Returns a dict keyed by type name.  Models that should share
    primitive-type identity should use the module-level
    :data:`PRIMITIVES` instead.
    """
    return {
        name: PrimitiveType(name)
        for name in ("Integer", "Boolean", "String", "Real", "UnlimitedNatural")
    }


#: Library-wide shared primitive type instances.  They are deliberately
#: ownerless so any number of models can reference them.
PRIMITIVES: Dict[str, PrimitiveType] = standard_primitives()

INTEGER = PRIMITIVES["Integer"]
BOOLEAN = PRIMITIVES["Boolean"]
STRING = PRIMITIVES["String"]
REAL = PRIMITIVES["Real"]
UNLIMITED_NATURAL = PRIMITIVES["UnlimitedNatural"]
