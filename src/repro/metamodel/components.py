"""Components, ports and connectors (UML 2.0 composite structures).

The paper's central structural claim is that "software components and
IP cores" already look alike; this module provides the component side.
A :class:`Component` exposes typed :class:`Port` instances; assembly
:class:`Connector` links wire required ports to provided ports, and
delegation connectors forward a component's own port to an internal
part.  :func:`can_connect` implements the interface-compatibility test
that makes hardware/software interchangeability checkable.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from ..errors import ModelError
from .classifiers import Interface, UmlClass
from .element import Element, Multiplicity, ONE
from .features import Property
from .types import TypeElement


class PortDirection(enum.Enum):
    """Dataflow direction of a port, used heavily by the SoC profile."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"


class Port(Property):
    """An interaction point of a component or class.

    ``provided``/``required`` hold the interfaces offered and expected
    through this port.  ``direction`` is a pragmatic extension (UML
    leaves dataflow direction to profiles; the SoC profile relies on it).
    """

    _id_tag = "Port"

    def __init__(self, name: str = "", type: Optional[TypeElement] = None,
                 direction: PortDirection = PortDirection.INOUT,
                 is_behavior: bool = False, is_service: bool = True,
                 multiplicity: Multiplicity = ONE):
        super().__init__(name, type, multiplicity)
        self.direction = direction
        self.is_behavior = is_behavior
        self.is_service = is_service
        self._provided: list = []
        self._required: list = []

    @property
    def provided(self) -> Tuple[Interface, ...]:
        """Interfaces offered to the environment through this port."""
        return tuple(self._provided)

    @property
    def required(self) -> Tuple[Interface, ...]:
        """Interfaces this port expects the environment to offer."""
        return tuple(self._required)

    def provide(self, interface: Interface) -> "Port":
        """Add a provided interface (chainable)."""
        if interface in self._provided:
            raise ModelError(f"port {self.name!r} already provides {interface.name!r}")
        self._provided.append(interface)
        return self

    def require(self, interface: Interface) -> "Port":
        """Add a required interface (chainable)."""
        if interface in self._required:
            raise ModelError(f"port {self.name!r} already requires {interface.name!r}")
        self._required.append(interface)
        return self

    @property
    def component(self) -> Optional["Component"]:
        """The owning component, if the owner is one."""
        owner = self.owner
        return owner if isinstance(owner, Component) else None

    def __repr__(self) -> str:
        return f"<Port {self.name} ({self.direction.value})>"


class ConnectorKind(enum.Enum):
    """UML connector kinds."""

    ASSEMBLY = "assembly"
    DELEGATION = "delegation"


class ConnectorEnd(Element):
    """One end of a connector: a port, optionally on a specific part."""

    _id_tag = "ConnectorEnd"

    def __init__(self, port: Port, part: Optional[Property] = None):
        super().__init__()
        self.port = port
        self.part = part

    def __repr__(self) -> str:
        part_name = f"{self.part.name}." if self.part is not None else ""
        return f"<ConnectorEnd {part_name}{self.port.name}>"


class Connector(Element):
    """Wires two ports together inside a structured classifier."""

    _id_tag = "Connector"

    def __init__(self, end1: ConnectorEnd, end2: ConnectorEnd,
                 kind: ConnectorKind = ConnectorKind.ASSEMBLY,
                 name: str = ""):
        super().__init__()
        self.name = name
        self.kind = kind
        self._own(end1)
        self._own(end2)
        self.ends: Tuple[ConnectorEnd, ConnectorEnd] = (end1, end2)

    def __repr__(self) -> str:
        return f"<Connector {self.kind.value} {self.ends[0]!r} <-> {self.ends[1]!r}>"


def can_connect(required_port: Port, provided_port: Port) -> bool:
    """Interface-compatibility test for an assembly connector.

    Every interface required on one side must be provided (or conformed
    to) on the other.  Direction compatibility: OUT may feed IN or
    INOUT; INOUT pairs with anything; two OUTs or two INs never match
    unless neither declares interfaces (pure direction check).
    """
    for needed in required_port.required:
        if not any(offered.conforms_to(needed) or offered is needed
                   for offered in provided_port.provided):
            return False
    directions = {required_port.direction, provided_port.direction}
    if directions == {PortDirection.OUT} or directions == {PortDirection.IN}:
        return False
    return True


class Component(UmlClass):
    """A modular unit with well-defined provided/required interfaces.

    Components own *parts* (properties typed by other components —
    composite structure), ports, and connectors.  This is the element
    the SoC profile stereotypes as ``HwModule``/``IpCore``.
    """

    _id_tag = "Component"

    def __init__(self, name: str = "", is_abstract: bool = False):
        super().__init__(name, is_abstract, is_active=True)

    # -- ports ---------------------------------------------------------------

    @property
    def ports(self) -> Tuple[Port, ...]:
        """Directly owned ports."""
        return self.owned_of_type(Port)

    def add_port(self, name: str, type: Optional[TypeElement] = None,
                 direction: PortDirection = PortDirection.INOUT,
                 is_behavior: bool = False) -> Port:
        """Create and own a port."""
        if self.has_member(name):
            raise ModelError(f"component {self.name!r} already has member {name!r}")
        port = Port(name, type, direction, is_behavior=is_behavior)
        self._own(port)
        return port

    def port(self, name: str) -> Port:
        """Lookup an owned port by name."""
        return self.member(name, Port)

    @property
    def provided_interfaces(self) -> Tuple[Interface, ...]:
        """Union of realized interfaces and all port-provided interfaces."""
        collected = list(self.realized_interfaces)
        for port in self.ports:
            for iface in port.provided:
                if iface not in collected:
                    collected.append(iface)
        return tuple(collected)

    @property
    def required_interfaces(self) -> Tuple[Interface, ...]:
        """Union of all port-required interfaces."""
        collected: list = []
        for port in self.ports:
            for iface in port.required:
                if iface not in collected:
                    collected.append(iface)
        return tuple(collected)

    # -- composite structure ---------------------------------------------------

    @property
    def parts(self) -> Tuple[Property, ...]:
        """Internal parts: composite attributes typed by a class/component."""
        return tuple(p for p in self.attributes
                     if not isinstance(p, Port) and p.is_composite
                     and isinstance(p.type, UmlClass))

    def add_part(self, name: str, type: UmlClass,
                 multiplicity: Multiplicity = ONE) -> Property:
        """Add an internal part of the given component/class type."""
        from .element import AggregationKind  # avoid top-level re-export churn

        return self.add_attribute(name, type, multiplicity,
                                  aggregation=AggregationKind.COMPOSITE)

    @property
    def connectors(self) -> Tuple[Connector, ...]:
        """Connectors owned by this component's internal structure."""
        return self.owned_of_type(Connector)

    def connect(self, end1: Port, end2: Port,
                part1: Optional[Property] = None,
                part2: Optional[Property] = None,
                kind: ConnectorKind = ConnectorKind.ASSEMBLY,
                name: str = "",
                check: bool = True) -> Connector:
        """Create a connector between two ports.

        For assembly connectors with ``check=True`` the interface
        compatibility of the two ports is verified in both directions.
        """
        if check and kind is ConnectorKind.ASSEMBLY:
            if not (can_connect(end1, end2) and can_connect(end2, end1)):
                raise ModelError(
                    f"incompatible ports: {end1.name!r} on "
                    f"{part1.name if part1 else self.name!r} and {end2.name!r} on "
                    f"{part2.name if part2 else self.name!r}"
                )
        connector = Connector(ConnectorEnd(end1, part1),
                              ConnectorEnd(end2, part2), kind, name)
        self._own(connector)
        return connector

    def delegate(self, outer: Port, inner: Port, part: Property,
                 name: str = "") -> Connector:
        """Create a delegation connector from an own port to a part's port."""
        if outer.owner is not self:
            raise ModelError(
                f"delegation must start at a port of {self.name!r}, "
                f"got {outer.name!r}"
            )
        return self.connect(outer, inner, None, part,
                            kind=ConnectorKind.DELEGATION, name=name,
                            check=False)
