"""Use cases and actors.

"Behavioral specification in the UML at the highest level often starts
by the identification of the use cases for a system described in terms
of involved actors" — this module implements exactly that layer:
actors, use cases, include/extend relationships and subject binding.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import ModelError
from .classifiers import Classifier
from .element import Element


class Actor(Classifier):
    """An external entity interacting with the system."""

    _id_tag = "Actor"


class Include(Element):
    """The owning use case unconditionally includes ``addition``."""

    _id_tag = "Include"

    def __init__(self, addition: "UseCase"):
        super().__init__()
        self.addition = addition

    def __repr__(self) -> str:
        return f"<Include {self.addition.name!r}>"


class Extend(Element):
    """The owning use case may extend ``extended`` at an extension point."""

    _id_tag = "Extend"

    def __init__(self, extended: "UseCase", extension_point: str = "",
                 condition: str = ""):
        super().__init__()
        self.extended = extended
        self.extension_point = extension_point
        self.condition = condition

    def __repr__(self) -> str:
        return f"<Extend {self.extended.name!r} at {self.extension_point!r}>"


class UseCase(Classifier):
    """A coherent unit of externally visible functionality."""

    _id_tag = "UseCase"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._subjects: list = []
        self._actors: list = []
        self.extension_points: list = []

    # -- relationships ----------------------------------------------------

    @property
    def includes(self) -> Tuple[Include, ...]:
        """Owned include relationships."""
        return self.owned_of_type(Include)

    @property
    def extends(self) -> Tuple[Extend, ...]:
        """Owned extend relationships."""
        return self.owned_of_type(Extend)

    def include(self, other: "UseCase") -> Include:
        """Declare that this use case always runs ``other`` as a part."""
        if other is self:
            raise ModelError(f"use case {self.name!r} cannot include itself")
        if any(i.addition is other for i in self.includes):
            raise ModelError(
                f"use case {self.name!r} already includes {other.name!r}"
            )
        inc = Include(other)
        self._own(inc)
        return inc

    def extend(self, other: "UseCase", extension_point: str = "",
               condition: str = "") -> Extend:
        """Declare that this use case conditionally extends ``other``."""
        if other is self:
            raise ModelError(f"use case {self.name!r} cannot extend itself")
        if extension_point and extension_point not in other.extension_points:
            raise ModelError(
                f"{other.name!r} has no extension point {extension_point!r}"
            )
        ext = Extend(other, extension_point, condition)
        self._own(ext)
        return ext

    def add_extension_point(self, name: str) -> str:
        """Declare a named location where extensions may hook in."""
        if name in self.extension_points:
            raise ModelError(
                f"use case {self.name!r} already has extension point {name!r}"
            )
        self.extension_points.append(name)
        return name

    # -- participation ------------------------------------------------------

    @property
    def subjects(self) -> Tuple[Classifier, ...]:
        """The systems (classifiers) this use case applies to."""
        return tuple(self._subjects)

    @property
    def actors(self) -> Tuple[Actor, ...]:
        """Actors associated with this use case."""
        return tuple(self._actors)

    def add_subject(self, subject: Classifier) -> Classifier:
        """Bind the use case to the subject system it describes."""
        if subject in self._subjects:
            raise ModelError(
                f"{subject.name!r} is already a subject of {self.name!r}"
            )
        self._subjects.append(subject)
        return subject

    def add_actor(self, actor: Actor) -> Actor:
        """Associate an actor with this use case."""
        if actor in self._actors:
            raise ModelError(
                f"{actor.name!r} is already an actor of {self.name!r}"
            )
        self._actors.append(actor)
        return actor

    def all_included(self) -> Tuple["UseCase", ...]:
        """Transitively included use cases (cycle-safe, nearest first)."""
        seen: list = []
        frontier = [i.addition for i in self.includes]
        while frontier:
            case = frontier.pop(0)
            if case not in seen and case is not self:
                seen.append(case)
                frontier.extend(i.addition for i in case.includes)
        return tuple(seen)
