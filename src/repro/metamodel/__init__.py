"""UML 2.0 structural metamodel (subsystem S1).

This package implements the structural half of UML 2.0 as surveyed by
the paper: elements and ownership, named elements and packages, types,
classifiers with features and generalization, associations, components
with ports and connectors, instance specifications (object diagrams),
use cases and deployments.

Behavioral metamodels live in sibling packages:
:mod:`repro.statemachines`, :mod:`repro.activities`,
:mod:`repro.interactions`.
"""

from .element import (
    AggregationKind,
    Comment,
    Element,
    MANY,
    Multiplicity,
    ONE,
    ONE_OR_MORE,
    OPTIONAL,
    ParameterDirection,
    UNLIMITED,
    VisibilityKind,
)
from .namespaces import (
    NamedElement,
    Namespace,
    Package,
    PackageImport,
    PackageableElement,
    QUALIFIED_NAME_SEPARATOR,
)
from .values import (
    InstanceValue,
    LiteralBoolean,
    LiteralInteger,
    LiteralNull,
    LiteralReal,
    LiteralString,
    LiteralUnlimitedNatural,
    OpaqueExpression,
    ValueSpecification,
    literal,
)
from .types import (
    BOOLEAN,
    DataType,
    Enumeration,
    EnumerationLiteral,
    INTEGER,
    PRIMITIVES,
    PrimitiveType,
    REAL,
    STRING,
    TypeElement,
    UNLIMITED_NATURAL,
    standard_primitives,
)
from .features import (
    Feature,
    Operation,
    Parameter,
    Property,
    Reception,
    TypedElement,
)
from .classifiers import (
    Classifier,
    Dependency,
    Generalization,
    Interface,
    InterfaceRealization,
    Signal,
    UmlClass,
    classifiers_in,
)
from .associations import Association, associate
from .components import (
    Component,
    Connector,
    ConnectorEnd,
    ConnectorKind,
    Port,
    PortDirection,
    can_connect,
)
from .instances import InstanceSpecification, Link, Slot
from .usecases import Actor, Extend, Include, UseCase
from .deployments import (
    Artifact,
    CommunicationPath,
    Deployment,
    Device,
    ExecutionEnvironment,
    Manifestation,
    Node,
)
from .model import Model, element_fingerprint, model_fingerprint

__all__ = [
    "AggregationKind", "Comment", "Element", "MANY", "Multiplicity", "ONE",
    "ONE_OR_MORE", "OPTIONAL", "ParameterDirection", "UNLIMITED",
    "VisibilityKind",
    "NamedElement", "Namespace", "Package", "PackageImport",
    "PackageableElement", "QUALIFIED_NAME_SEPARATOR",
    "InstanceValue", "LiteralBoolean", "LiteralInteger", "LiteralNull",
    "LiteralReal", "LiteralString", "LiteralUnlimitedNatural",
    "OpaqueExpression", "ValueSpecification", "literal",
    "BOOLEAN", "DataType", "Enumeration", "EnumerationLiteral", "INTEGER",
    "PRIMITIVES", "PrimitiveType", "REAL", "STRING", "TypeElement",
    "UNLIMITED_NATURAL", "standard_primitives",
    "Feature", "Operation", "Parameter", "Property", "Reception",
    "TypedElement",
    "Classifier", "Dependency", "Generalization", "Interface",
    "InterfaceRealization", "Signal", "UmlClass", "classifiers_in",
    "Association", "associate",
    "Component", "Connector", "ConnectorEnd", "ConnectorKind", "Port",
    "PortDirection", "can_connect",
    "InstanceSpecification", "Link", "Slot",
    "Actor", "Extend", "Include", "UseCase",
    "Artifact", "CommunicationPath", "Deployment", "Device",
    "ExecutionEnvironment", "Manifestation", "Node",
    "Model", "element_fingerprint", "model_fingerprint",
]
