"""Named elements, namespaces and packages.

A :class:`NamedElement` carries a name and visibility; a
:class:`Namespace` additionally resolves names among its owned members.
:class:`Package` is the general-purpose container for packageable
elements — the paper notes packages "provide just a little more than a
namespace for classes", and that is exactly what this class implements,
plus package import and merge-free nesting.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Type, TypeVar

from ..errors import LookupFailed, ModelError
from .element import Element, VisibilityKind

N = TypeVar("N", bound="NamedElement")

#: Separator used in UML qualified names.
QUALIFIED_NAME_SEPARATOR = "::"


class NamedElement(Element):
    """An element with an (optional) name and a visibility."""

    _id_tag = "NamedElement"

    def __init__(self, name: str = "",
                 visibility: VisibilityKind = VisibilityKind.PUBLIC):
        super().__init__()
        self.name = name
        self.visibility = visibility

    @property
    def namespace(self) -> Optional["Namespace"]:
        """The nearest owning :class:`Namespace`, if any."""
        for ancestor in self.owner_chain():
            if isinstance(ancestor, Namespace):
                return ancestor
        return None

    @property
    def qualified_name(self) -> str:
        """The ``::``-separated path from the root namespace to this element.

        Elements without a name, or with an unnamed ancestor namespace,
        still produce a usable path (empty segments are skipped).
        """
        parts = [self.name] if self.name else []
        for ancestor in self.owner_chain():
            if isinstance(ancestor, NamedElement) and ancestor.name:
                parts.append(ancestor.name)
        return QUALIFIED_NAME_SEPARATOR.join(reversed(parts))

    def __repr__(self) -> str:
        label = self.name or self.xmi_id
        return f"<{type(self).__name__} {label!r}>"


class PackageableElement(NamedElement):
    """A named element that may be owned directly by a package."""

    _id_tag = "PackageableElement"


class Namespace(NamedElement):
    """A named element that contains and resolves named members."""

    _id_tag = "Namespace"

    @property
    def members(self) -> Tuple[NamedElement, ...]:
        """Owned members that are named elements."""
        return self.owned_of_type(NamedElement)

    def member(self, name: str, kind: Type[N] = NamedElement) -> N:  # type: ignore[assignment]
        """Return the owned member with the given name (and kind).

        Raises :class:`~repro.errors.LookupFailed` when absent; use
        :meth:`find_member` for an optional lookup.
        """
        found = self.find_member(name, kind)
        if found is None:
            raise LookupFailed(
                f"{self.qualified_name or self.xmi_id} has no member "
                f"{name!r} of kind {kind.__name__}"
            )
        return found

    def find_member(self, name: str, kind: Type[N] = NamedElement) -> Optional[N]:  # type: ignore[assignment]
        """Like :meth:`member` but returns None when not found."""
        for candidate in self._owned:
            if isinstance(candidate, kind) and candidate.name == name:
                return candidate
        return None

    def has_member(self, name: str) -> bool:
        """True if a named member with this name is owned here."""
        return self.find_member(name) is not None

    def resolve(self, qualified: str, kind: Type[N] = NamedElement) -> N:  # type: ignore[assignment]
        """Resolve a ``::``-separated path relative to this namespace.

        ``resolve("sub::Thing")`` descends through nested namespaces.
        Raises :class:`~repro.errors.LookupFailed` on any missing step.
        """
        node: NamedElement = self
        parts = qualified.split(QUALIFIED_NAME_SEPARATOR)
        for index, part in enumerate(parts):
            if not isinstance(node, Namespace):
                raise LookupFailed(
                    f"{node.qualified_name!r} is not a namespace; cannot "
                    f"resolve remainder {QUALIFIED_NAME_SEPARATOR.join(parts[index:])!r}"
                )
            is_last = index == len(parts) - 1
            node = node.member(part, kind if is_last else NamedElement)
        return node  # type: ignore[return-value]


class Package(Namespace, PackageableElement):
    """A UML package: a namespace for packageable elements.

    Packages may nest, own classifiers and import other packages.
    """

    _id_tag = "Package"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._imports: list = []  # PackageImport elements (owned)

    # -- construction helpers -------------------------------------------

    def add(self, element: PackageableElement) -> PackageableElement:
        """Own a packageable element, rejecting duplicate member names."""
        if not isinstance(element, PackageableElement):
            raise ModelError(
                f"packages own PackageableElements, not {type(element).__name__}"
            )
        if element.name and self.has_member(element.name):
            raise ModelError(
                f"package {self.qualified_name!r} already has a member "
                f"named {element.name!r}"
            )
        self._own(element)
        return element

    def create_package(self, name: str) -> "Package":
        """Create and own a nested package."""
        nested = Package(name)
        self.add(nested)
        return nested

    # -- derived content ------------------------------------------------

    @property
    def packaged_elements(self) -> Tuple[PackageableElement, ...]:
        """All directly owned packageable elements."""
        return self.owned_of_type(PackageableElement)

    @property
    def nested_packages(self) -> Tuple["Package", ...]:
        """Directly owned sub-packages."""
        return self.owned_of_type(Package)

    def all_packages(self) -> Iterator["Package"]:
        """Yield this package and all transitively nested packages."""
        yield self
        for sub in self.nested_packages:
            yield from sub.all_packages()

    # -- imports ----------------------------------------------------------

    def import_package(self, other: "Package") -> "PackageImport":
        """Record a package import (makes members visible, not owned)."""
        imp = PackageImport(other)
        self._own(imp)
        self._imports.append(imp)
        return imp

    @property
    def imported_packages(self) -> Tuple["Package", ...]:
        """Packages imported by this one."""
        return tuple(imp.imported for imp in self._imports)

    def visible_member(self, name: str, kind: Type[N] = NamedElement) -> N:  # type: ignore[assignment]
        """Lookup including imported packages' public members."""
        local = self.find_member(name, kind)
        if local is not None:
            return local
        for imported in self.imported_packages:
            candidate = imported.find_member(name, kind)
            if candidate is not None and candidate.visibility is VisibilityKind.PUBLIC:
                return candidate
        raise LookupFailed(
            f"{self.qualified_name!r} has no visible member {name!r}"
        )


class PackageImport(Element):
    """Directed import relationship between two packages."""

    _id_tag = "PackageImport"

    def __init__(self, imported: Package):
        super().__init__()
        self.imported = imported

    def __repr__(self) -> str:
        return f"<PackageImport of {self.imported.name!r}>"
