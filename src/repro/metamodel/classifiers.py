"""Classifiers: classes, interfaces, signals and generalization.

The paper stresses that "the notion of class, object and component have
to be aligned" with real circuits; this module provides the class side
of that alignment.  A :class:`Classifier` owns attributes and
operations, participates in generalization hierarchies and realizes
interfaces.  Conformance (:meth:`Classifier.conforms_to`) follows UML
substitutability: a classifier conforms to itself, to its generals
(transitively) and — for behaviored classifiers — to realized
interfaces.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from ..errors import ModelError
from .element import (
    AggregationKind,
    Element,
    Multiplicity,
    ONE,
)
from .features import Operation, Property, Reception
from .namespaces import Namespace
from .types import TypeElement


class Generalization(Element):
    """Taxonomic relationship: the *specific* classifier inherits the
    features of the *general* one.  Owned by the specific classifier."""

    _id_tag = "Generalization"

    def __init__(self, general: "Classifier"):
        super().__init__()
        self.general = general

    @property
    def specific(self) -> Optional["Classifier"]:
        """The inheriting classifier (the owner)."""
        owner = self.owner
        return owner if isinstance(owner, Classifier) else None

    def __repr__(self) -> str:
        return f"<Generalization -> {self.general.name!r}>"


class InterfaceRealization(Element):
    """The owning classifier promises to implement the contract of
    ``contract`` (an :class:`Interface`)."""

    _id_tag = "InterfaceRealization"

    def __init__(self, contract: "Interface"):
        super().__init__()
        self.contract = contract

    def __repr__(self) -> str:
        return f"<InterfaceRealization of {self.contract.name!r}>"


class Dependency(Element):
    """A supplier/client dependency between named elements.

    Owned by the client; ``supplier`` is referenced.
    """

    _id_tag = "Dependency"

    def __init__(self, supplier: Element, kind: str = "use"):
        super().__init__()
        self.supplier = supplier
        self.kind = kind

    def __repr__(self) -> str:
        return f"<Dependency ({self.kind}) -> {self.supplier!r}>"


class Classifier(TypeElement, Namespace):
    """Abstract classifier: a namespace of features that is also a type."""

    _id_tag = "Classifier"

    def __init__(self, name: str = "", is_abstract: bool = False):
        super().__init__(name)
        self.is_abstract = is_abstract

    # -- features -----------------------------------------------------------

    @property
    def attributes(self) -> Tuple[Property, ...]:
        """Directly owned attributes (excluding association-owned ends)."""
        return self.owned_of_type(Property)

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """Directly owned operations."""
        return self.owned_of_type(Operation)

    def add_attribute(self, name: str, type: Optional[TypeElement] = None,
                      multiplicity: Multiplicity = ONE,
                      default: Any = None,
                      aggregation: AggregationKind = AggregationKind.NONE,
                      is_read_only: bool = False,
                      is_static: bool = False) -> Property:
        """Create and own an attribute."""
        if self.has_member(name):
            raise ModelError(
                f"classifier {self.name!r} already has a member {name!r}"
            )
        prop = Property(name, type, multiplicity, aggregation,
                        default=default, is_read_only=is_read_only,
                        is_static=is_static)
        self._own(prop)
        return prop

    def add_operation(self, name: str, return_type: Optional[TypeElement] = None,
                      is_abstract: bool = False,
                      is_query: bool = False) -> Operation:
        """Create and own an operation (overloading is not modelled)."""
        if self.has_member(name):
            raise ModelError(
                f"classifier {self.name!r} already has a member {name!r}"
            )
        op = Operation(name, return_type, is_abstract=is_abstract,
                       is_query=is_query)
        self._own(op)
        return op

    # -- generalization -------------------------------------------------------

    @property
    def generalizations(self) -> Tuple[Generalization, ...]:
        """Owned generalization relationships."""
        return self.owned_of_type(Generalization)

    @property
    def generals(self) -> Tuple["Classifier", ...]:
        """Direct superclassifiers."""
        return tuple(g.general for g in self.generalizations)

    def add_generalization(self, general: "Classifier") -> Generalization:
        """Declare that this classifier specializes ``general``.

        Rejects self-inheritance and cycles.
        """
        if general is self:
            raise ModelError(f"{self.name!r} cannot specialize itself")
        if self in general.all_generals() or general in self.generals:
            raise ModelError(
                f"generalization {self.name!r} -> {general.name!r} would "
                "create a cycle or duplicate"
            )
        gen = Generalization(general)
        self._own(gen)
        return gen

    def all_generals(self) -> Tuple["Classifier", ...]:
        """All transitive superclassifiers, nearest first, duplicates removed."""
        seen: list = []
        frontier = list(self.generals)
        while frontier:
            general = frontier.pop(0)
            if general not in seen:
                seen.append(general)
                frontier.extend(general.generals)
        return tuple(seen)

    def all_attributes(self) -> Tuple[Property, ...]:
        """Own attributes plus inherited ones (own first, no name shadow dedup)."""
        collected = list(self.attributes)
        names = {p.name for p in collected}
        for general in self.all_generals():
            for prop in general.attributes:
                if prop.name not in names:
                    collected.append(prop)
                    names.add(prop.name)
        return tuple(collected)

    def all_operations(self) -> Tuple[Operation, ...]:
        """Own operations plus inherited ones (overrides shadow by name)."""
        collected = list(self.operations)
        names = {op.name for op in collected}
        for general in self.all_generals():
            for op in general.operations:
                if op.name not in names:
                    collected.append(op)
                    names.add(op.name)
        return tuple(collected)

    def find_operation(self, name: str) -> Optional[Operation]:
        """Lookup an operation by name, searching the inheritance chain."""
        for op in self.all_operations():
            if op.name == name:
                return op
        return None

    # -- interface realization ---------------------------------------------

    @property
    def interface_realizations(self) -> Tuple[InterfaceRealization, ...]:
        """Owned interface realizations."""
        return self.owned_of_type(InterfaceRealization)

    @property
    def realized_interfaces(self) -> Tuple["Interface", ...]:
        """Interfaces directly realized by this classifier."""
        return tuple(r.contract for r in self.interface_realizations)

    def realize(self, contract: "Interface") -> InterfaceRealization:
        """Declare that this classifier implements ``contract``."""
        if contract in self.realized_interfaces:
            raise ModelError(
                f"{self.name!r} already realizes {contract.name!r}"
            )
        realization = InterfaceRealization(contract)
        self._own(realization)
        return realization

    def all_realized_interfaces(self) -> Tuple["Interface", ...]:
        """Realized interfaces of self and all generals, plus their supers."""
        collected: list = []
        for classifier in (self,) + self.all_generals():
            for contract in classifier.realized_interfaces:
                for iface in (contract,) + contract.all_generals():
                    if isinstance(iface, Interface) and iface not in collected:
                        collected.append(iface)
        return tuple(collected)

    # -- conformance -----------------------------------------------------------

    def conforms_to(self, other: TypeElement) -> bool:
        """UML substitutability test."""
        if other is self:
            return True
        if isinstance(other, Classifier) and other in self.all_generals():
            return True
        return other in self.all_realized_interfaces()

    # -- dependencies -----------------------------------------------------------

    def add_dependency(self, supplier: Element, kind: str = "use") -> Dependency:
        """Record a dependency on ``supplier``."""
        dep = Dependency(supplier, kind)
        self._own(dep)
        return dep

    @property
    def dependencies(self) -> Tuple[Dependency, ...]:
        """Owned dependencies."""
        return self.owned_of_type(Dependency)


class Interface(Classifier):
    """A contract: operations and attributes without implementation."""

    _id_tag = "Interface"

    def implementers(self, scope: Element) -> Tuple[Classifier, ...]:
        """All classifiers under ``scope`` that realize this interface."""
        return tuple(
            c for c in scope.descendants_of_type(Classifier)
            if self in c.all_realized_interfaces()
        )


class UmlClass(Classifier):
    """A UML class (named ``UmlClass`` to avoid the Python keyword).

    Active classes (``is_active``) own their thread of control — the
    natural mapping for hardware modules, which the SoC profile builds
    on.  A class may own *behaviors* (state machines, activities) added
    by the behavior packages via :meth:`add_behavior`.
    """

    _id_tag = "Class"

    def __init__(self, name: str = "", is_abstract: bool = False,
                 is_active: bool = False):
        super().__init__(name, is_abstract)
        self.is_active = is_active
        self._classifier_behavior: Optional[Element] = None

    # -- owned behaviors -------------------------------------------------------

    def add_behavior(self, behavior: Element, as_classifier_behavior: bool = False) -> Element:
        """Own a behavior (state machine or activity).

        When ``as_classifier_behavior`` is set, the behavior becomes the
        class's *classifier behavior*: the one started when an instance
        is created.
        """
        self._own(behavior)
        if as_classifier_behavior:
            self._classifier_behavior = behavior
        return behavior

    @property
    def classifier_behavior(self) -> Optional[Element]:
        """The behavior executed by instances of this class, if set."""
        return self._classifier_behavior

    # -- receptions -------------------------------------------------------------

    @property
    def receptions(self) -> Tuple[Reception, ...]:
        """Declared signal receptions."""
        return self.owned_of_type(Reception)

    def add_reception(self, signal: "Signal") -> Reception:
        """Declare that instances react to receipt of ``signal``."""
        if any(r.signal is signal for r in self.receptions):
            raise ModelError(
                f"class {self.name!r} already receives {signal.name!r}"
            )
        reception = Reception(signal)
        self._own(reception)
        return reception


class Signal(Classifier):
    """An asynchronous stimulus; its attributes are the payload."""

    _id_tag = "Signal"


def classifiers_in(scope: Element) -> Iterator[Classifier]:
    """Yield every classifier transitively owned by ``scope``."""
    for element in scope.all_owned():
        if isinstance(element, Classifier):
            yield element
