"""Root of the UML 2.0 metamodel: :class:`Element` and ownership.

Every UML model element derives from :class:`Element`.  Elements form a
strict ownership *tree* (UML's composite ownership): each element has at
most one owner, and the library enforces that invariant on every
structural mutation.  This mirrors the UML 2.0 Superstructure's
``Element::owner`` / ``Element::ownedElement`` derived unions.

Also defined here: the enumerations shared across the metamodel
(:class:`VisibilityKind`, :class:`AggregationKind`,
:class:`ParameterDirection`) and :class:`Multiplicity`, the value object
behind UML multiplicity strings such as ``"0..*"``.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional, Tuple, Type, TypeVar

from .._ids import next_id
from ..errors import ModelError

E = TypeVar("E", bound="Element")


class VisibilityKind(enum.Enum):
    """UML visibility of a named element within its namespace."""

    PUBLIC = "public"
    PRIVATE = "private"
    PROTECTED = "protected"
    PACKAGE = "package"


class AggregationKind(enum.Enum):
    """Kind of aggregation for a property that is an association end."""

    NONE = "none"
    SHARED = "shared"
    COMPOSITE = "composite"


class ParameterDirection(enum.Enum):
    """Direction of an operation parameter."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"
    RETURN = "return"


#: Upper bound value representing UML's unlimited natural ``*``.
UNLIMITED: Optional[int] = None


class Multiplicity:
    """A UML multiplicity: a lower bound and an upper bound.

    The upper bound is ``None`` for ``*`` (unlimited).  Instances are
    immutable value objects and compare by bounds.

    >>> Multiplicity.parse("0..*")
    Multiplicity('0..*')
    >>> Multiplicity.parse("1").accepts(1)
    True
    """

    __slots__ = ("lower", "upper")

    def __init__(self, lower: int = 1, upper: Optional[int] = 1):
        if lower < 0:
            raise ModelError(f"multiplicity lower bound must be >= 0, got {lower}")
        if upper is not None and upper < lower:
            raise ModelError(
                f"multiplicity upper bound {upper} is below lower bound {lower}"
            )
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Multiplicity is immutable")

    def __reduce__(self):
        # immutability blocks the default slot-state protocol; rebuild
        # through the constructor (needed to ship models to process
        # pools in codegen.pipeline)
        return (Multiplicity, (self.lower, self.upper))

    @classmethod
    def parse(cls, text: str) -> "Multiplicity":
        """Parse a UML multiplicity string: ``"1"``, ``"0..1"``, ``"2..*"``, ``"*"``."""
        text = text.strip()
        if text == "*":
            return cls(0, UNLIMITED)
        if ".." in text:
            low_text, high_text = text.split("..", 1)
            lower = int(low_text)
            upper = UNLIMITED if high_text.strip() == "*" else int(high_text)
            return cls(lower, upper)
        value = int(text)
        return cls(value, value)

    def accepts(self, count: int) -> bool:
        """Return True if ``count`` values satisfy this multiplicity."""
        if count < self.lower:
            return False
        return self.upper is None or count <= self.upper

    @property
    def is_unlimited(self) -> bool:
        """True when the upper bound is ``*``."""
        return self.upper is None

    @property
    def is_collection(self) -> bool:
        """True when more than one value may be held."""
        return self.upper is None or self.upper > 1

    def __str__(self) -> str:
        if self.upper is None:
            return "*" if self.lower == 0 else f"{self.lower}..*"
        if self.lower == self.upper:
            return str(self.lower)
        return f"{self.lower}..{self.upper}"

    def __repr__(self) -> str:
        return f"Multiplicity('{self}')"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiplicity):
            return NotImplemented
        return (self.lower, self.upper) == (other.lower, other.upper)

    def __hash__(self) -> int:
        return hash((self.lower, self.upper))


#: Common multiplicities, ready to share (the object is immutable).
ONE = Multiplicity(1, 1)
OPTIONAL = Multiplicity(0, 1)
MANY = Multiplicity(0, UNLIMITED)
ONE_OR_MORE = Multiplicity(1, UNLIMITED)


class Element:
    """Abstract root of the metamodel; owns other elements compositely.

    Subclasses *must* route ownership changes through :meth:`_own` and
    :meth:`_disown` so the single-owner invariant holds everywhere.
    """

    _id_tag = "Element"

    def __init__(self) -> None:
        self.xmi_id: str = next_id(type(self)._id_tag)
        self._owner: Optional[Element] = None
        self._owned: List[Element] = []

    # -- mutation tracking ----------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        """Set the attribute and bump the owning tree's generation.

        The generation counter lives on the tree root and increments on
        every attribute assignment anywhere in the tree; the transform
        cache uses it to invalidate memoized fingerprints in O(1).
        Writes go through ``__dict__`` directly so the bump itself never
        re-enters this hook.
        """
        object.__setattr__(self, name, value)
        target: Element = self
        node = target.__dict__.get("_owner")
        while node is not None:
            target = node
            node = node.__dict__.get("_owner")
        owner_dict = target.__dict__
        owner_dict["_generation"] = owner_dict.get("_generation", 0) + 1

    def _note_mutation(self) -> None:
        """Record a structural mutation invisible to ``__setattr__``.

        List/dict mutations (``_owned.append``, deferrable triggers, …)
        do not pass through the attribute hook; call this explicitly.
        """
        root = self.root()
        owner_dict = root.__dict__
        owner_dict["_generation"] = owner_dict.get("_generation", 0) + 1

    @property
    def generation(self) -> int:
        """Mutation counter of the tree rooted here (0 when untouched).

        Only meaningful on a tree root: mutations anywhere in a tree bump
        the *root's* counter.
        """
        return self.__dict__.get("_generation", 0)

    # -- ownership tree -------------------------------------------------

    @property
    def owner(self) -> Optional["Element"]:
        """The unique owner of this element, or None for a root."""
        return self._owner

    @property
    def owned_elements(self) -> Tuple["Element", ...]:
        """Directly owned elements, in insertion order."""
        return tuple(self._owned)

    def _own(self, child: "Element") -> "Element":
        """Take composite ownership of ``child`` (single-owner enforced)."""
        if child is self:
            raise ModelError(f"{self!r} cannot own itself")
        if child._owner is not None:
            raise ModelError(
                f"{child!r} is already owned by {child._owner!r}; "
                "remove it from its owner first"
            )
        ancestor: Optional[Element] = self
        while ancestor is not None:
            if ancestor is child:
                raise ModelError(f"ownership cycle: {child!r} is an ancestor of {self!r}")
            ancestor = ancestor._owner
        child._owner = self
        self._owned.append(child)
        return child

    def _disown(self, child: "Element") -> "Element":
        """Release ownership of ``child``."""
        if child._owner is not self:
            raise ModelError(f"{child!r} is not owned by {self!r}")
        # bump the old tree's generation while the child is still
        # attached — after the unlink the child walks to itself
        self._note_mutation()
        child._owner = None
        self._owned.remove(child)
        return child

    def root(self) -> "Element":
        """The top of the ownership tree containing this element."""
        node: Element = self
        while node._owner is not None:
            node = node._owner
        return node

    def owner_chain(self) -> Iterator["Element"]:
        """Yield owners from the direct owner up to the root."""
        node = self._owner
        while node is not None:
            yield node
            node = node._owner

    def all_owned(self) -> Iterator["Element"]:
        """Yield every transitively owned element (pre-order)."""
        for child in self._owned:
            yield child
            yield from child.all_owned()

    def owned_of_type(self, kind: Type[E]) -> Tuple[E, ...]:
        """Directly owned elements that are instances of ``kind``."""
        return tuple(child for child in self._owned if isinstance(child, kind))

    def descendants_of_type(self, kind: Type[E]) -> Tuple[E, ...]:
        """All transitively owned elements that are instances of ``kind``."""
        return tuple(child for child in self.all_owned() if isinstance(child, kind))

    # -- comments --------------------------------------------------------

    @property
    def comments(self) -> Tuple["Comment", ...]:
        """Comments attached to this element."""
        return self.owned_of_type(Comment)

    def add_comment(self, body: str) -> "Comment":
        """Attach a :class:`Comment` with the given body text."""
        comment = Comment(body)
        self._own(comment)
        return comment

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.xmi_id}>"


class Comment(Element):
    """An annotation attached to an element (UML Comment)."""

    _id_tag = "Comment"

    def __init__(self, body: str = ""):
        super().__init__()
        self.body = body

    def __repr__(self) -> str:
        preview = self.body if len(self.body) <= 30 else self.body[:27] + "..."
        return f"<Comment {preview!r}>"
