"""Deployment diagrams: nodes, artifacts and deployments.

The physical layer of a UML model — "the composition and physical
deployment of a system".  For SoC design, nodes model silicon resources
(processors, memories, fabric) and artifacts model the binaries or
bitstreams deployed onto them; the MDA hardware platform mapping emits
a deployment model alongside the PSM.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import ModelError
from .classifiers import Classifier
from .element import Element, Multiplicity, ONE
from .namespaces import PackageableElement


class Artifact(Classifier):
    """A physical piece of information: binary, bitstream, config file."""

    _id_tag = "Artifact"

    def __init__(self, name: str = "", file_name: str = ""):
        super().__init__(name)
        self.file_name = file_name or name

    @property
    def manifestations(self) -> Tuple["Manifestation", ...]:
        """What model elements this artifact embodies."""
        return self.owned_of_type(Manifestation)

    def manifest(self, element: PackageableElement) -> "Manifestation":
        """Record that this artifact is the physical rendering of ``element``."""
        if any(m.utilized is element for m in self.manifestations):
            raise ModelError(
                f"artifact {self.name!r} already manifests {element.name!r}"
            )
        manifestation = Manifestation(element)
        self._own(manifestation)
        return manifestation


class Manifestation(Element):
    """Artifact-to-model-element realization relationship."""

    _id_tag = "Manifestation"

    def __init__(self, utilized: PackageableElement):
        super().__init__()
        self.utilized = utilized

    def __repr__(self) -> str:
        return f"<Manifestation of {self.utilized.name!r}>"


class Deployment(Element):
    """Assignment of an artifact to a deployment target (owned by the node)."""

    _id_tag = "Deployment"

    def __init__(self, artifact: Artifact):
        super().__init__()
        self.artifact = artifact

    def __repr__(self) -> str:
        return f"<Deployment of {self.artifact.name!r}>"


class Node(Classifier):
    """A computational resource onto which artifacts are deployed.

    Nodes may nest (a board contains chips; a chip contains cores).
    """

    _id_tag = "Node"

    @property
    def deployments(self) -> Tuple[Deployment, ...]:
        """Artifact deployments hosted on this node."""
        return self.owned_of_type(Deployment)

    @property
    def deployed_artifacts(self) -> Tuple[Artifact, ...]:
        """The artifacts deployed here."""
        return tuple(d.artifact for d in self.deployments)

    def deploy(self, artifact: Artifact) -> Deployment:
        """Deploy an artifact onto this node."""
        if artifact in self.deployed_artifacts:
            raise ModelError(
                f"node {self.name!r} already hosts {artifact.name!r}"
            )
        deployment = Deployment(artifact)
        self._own(deployment)
        return deployment

    @property
    def nested_nodes(self) -> Tuple["Node", ...]:
        """Directly contained nodes."""
        return self.owned_of_type(Node)

    def add_node(self, node: "Node") -> "Node":
        """Nest another node inside this one."""
        self._own(node)
        return node


class Device(Node):
    """A physical computational device (processor core, DMA engine...)."""

    _id_tag = "Device"


class ExecutionEnvironment(Node):
    """A software execution context (RTOS, VM, firmware runtime)."""

    _id_tag = "ExecutionEnvironment"


class CommunicationPath(PackageableElement):
    """A physical connection between two nodes (bus, link, network)."""

    _id_tag = "CommunicationPath"

    def __init__(self, end1: Node, end2: Node, name: str = ""):
        super().__init__(name)
        if end1 is end2:
            raise ModelError("a communication path needs two distinct nodes")
        self.ends: Tuple[Node, Node] = (end1, end2)

    def connects(self, node: Node) -> bool:
        """True if ``node`` is one of the two ends."""
        return node in self.ends

    def __repr__(self) -> str:
        return f"<CommunicationPath {self.ends[0].name} <-> {self.ends[1].name}>"
