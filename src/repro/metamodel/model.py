"""The model root and whole-model queries.

A :class:`Model` is the top-level package of a UML model.  It provides
indexed lookup by ``xmi_id``, typed iteration, and summary statistics
used by the metrics package and the benchmark workload generators.

Also here: :func:`model_fingerprint`, the content-addressed hash over
an ownership tree that keys the MDA transform cache.  Two independently
built but structurally identical models fingerprint the same (the hash
walks content, not ``xmi_id`` identities), and any mutation changes the
fingerprint.  Recomputation is O(1) for an unchanged tree: the digest
is cached per :attr:`Element.generation`.
"""

from __future__ import annotations

import enum
import hashlib
import re
from typing import Any, Dict, Iterator, Optional, Tuple, Type, TypeVar

from ..errors import LookupFailed
from .element import Element, Multiplicity
from .namespaces import Package

E = TypeVar("E", bound=Element)

#: Attributes excluded from the fingerprint: identity (fresh per run),
#: tree bookkeeping (covered by the walk itself) and the cache fields.
_FP_SKIP = frozenset(
    {"xmi_id", "_owner", "_owned", "_generation", "_fp_cache",
     "_subtree_fp_cache"})

#: CPython default reprs embed process-local addresses ("at 0x7f...").
_ADDRESS_RE = re.compile(r" at 0x[0-9a-fA-F]+")


def _encode_value(value: Any, index: Dict[int, int], out: list) -> None:
    """Append a canonical token stream for one attribute value."""
    if value is None:
        out.append("N")
    elif isinstance(value, bool):
        out.append(f"b{value}")
    elif isinstance(value, (int, float)):
        out.append(f"n{value!r}")
    elif isinstance(value, str):
        out.append(f"s{len(value)}:{value}")
    elif isinstance(value, enum.Enum):
        out.append(f"e{type(value).__name__}.{value.name}")
    elif isinstance(value, Element):
        position = index.get(id(value))
        if position is not None:
            out.append(f"@{position}")  # in-tree ref -> walk position
        else:
            # reference into another tree: hash by type and name only
            out.append(f"x{type(value).__name__}:"
                       f"{getattr(value, 'name', '')}")
    elif isinstance(value, Multiplicity):
        out.append(f"m{value}")
    elif isinstance(value, (list, tuple)):
        out.append(f"[{len(value)}")
        for item in value:
            _encode_value(item, index, out)
        out.append("]")
    elif isinstance(value, dict):
        out.append(f"{{{len(value)}")
        for key in sorted(value, key=str):
            out.append(f"k{key}")
            _encode_value(value[key], index, out)
        out.append("}")
    elif isinstance(value, (set, frozenset)):
        # tokenize each member recursively, then sort the token strings:
        # str(member) would leak process-local state (xmi_id counters,
        # default reprs with memory addresses) into the digest
        member_tokens = []
        for item in value:
            sub: list = []
            _encode_value(item, index, sub)
            member_tokens.append("\x1e".join(sub))
        out.append(f"S{len(value)}:{'|'.join(sorted(member_tokens))}")
    elif callable(value):
        out.append(f"c{getattr(value, '__qualname__', 'callable')}")
    else:
        # strip CPython's "at 0x..." addresses from default reprs so the
        # fallback never varies between processes
        text = _ADDRESS_RE.sub("", f"{value}")
        out.append(f"o{type(value).__name__}:{text}")


def model_fingerprint(root: Element) -> str:
    """Stable content hash of the ownership tree rooted at ``root``.

    The digest covers every element's metaclass and attributes in
    pre-order; in-tree element references hash as walk positions, so
    the result is independent of ``xmi_id`` allocation.  Cached against
    :attr:`Element.generation` — repeat calls on an unchanged tree are
    a dict lookup.
    """
    generation = root.__dict__.get("_generation", 0)
    cached = root.__dict__.get("_fp_cache")
    if cached is not None and cached[0] == generation:
        return cached[1]

    digest = _subtree_digest(root)
    # store via __dict__ so the cache write itself does not bump the
    # generation counter and invalidate what it just computed
    root.__dict__["_fp_cache"] = (generation, digest)
    return digest


def _subtree_digest(top: Element) -> str:
    """Uncached content hash of the ownership subtree under ``top``."""
    elements = [top]
    elements.extend(top.all_owned())
    index = {id(element): position
             for position, element in enumerate(elements)}
    hasher = hashlib.blake2b(digest_size=16)
    tokens: list = []
    for element in elements:
        tokens.append(f"E{type(element).__name__}")
        attributes = element.__dict__
        for name in sorted(attributes):
            if name in _FP_SKIP:
                continue
            tokens.append(f"a{name}")
            _encode_value(attributes[name], index, tokens)
    hasher.update("\x1f".join(tokens).encode("utf-8", "surrogatepass"))
    return hasher.hexdigest()


def element_fingerprint(element: Element) -> str:
    """Stable content hash of the subtree rooted at ``element``.

    Like :func:`model_fingerprint` but usable on any element of a tree:
    the walk covers only ``element`` and its transitively owned children,
    so sibling subtrees of the same model fingerprint independently —
    editing one state machine changes only that machine's subtree digest.
    References *out* of the subtree hash by type and name (the same rule
    whole-model fingerprints apply to cross-tree references).

    Cached against the owning tree root's generation counter, so repeat
    calls on an unchanged tree are a dict lookup.
    """
    generation = element.root().__dict__.get("_generation", 0)
    cached = element.__dict__.get("_subtree_fp_cache")
    if cached is not None and cached[0] == generation:
        return cached[1]
    digest = _subtree_digest(element)
    element.__dict__["_subtree_fp_cache"] = (generation, digest)
    return digest


class Model(Package):
    """Root package of a UML model."""

    _id_tag = "Model"

    def __init__(self, name: str = "model"):
        super().__init__(name)

    # -- lookup -----------------------------------------------------------

    def find_by_id(self, xmi_id: str) -> Optional[Element]:
        """Locate any owned element by its ``xmi_id`` (linear scan)."""
        if self.xmi_id == xmi_id:
            return self
        for element in self.all_owned():
            if element.xmi_id == xmi_id:
                return element
        return None

    def element_by_id(self, xmi_id: str) -> Element:
        """Like :meth:`find_by_id` but raising when absent."""
        found = self.find_by_id(xmi_id)
        if found is None:
            raise LookupFailed(f"model {self.name!r} has no element {xmi_id!r}")
        return found

    def build_id_index(self) -> Dict[str, Element]:
        """A dict from ``xmi_id`` to element, for repeated lookups."""
        index: Dict[str, Element] = {self.xmi_id: self}
        for element in self.all_owned():
            index[element.xmi_id] = element
        return index

    # -- iteration ----------------------------------------------------------

    def elements_of_type(self, kind: Type[E]) -> Iterator[E]:
        """Yield every transitively owned element of the given kind."""
        for element in self.all_owned():
            if isinstance(element, kind):
                yield element

    def element_count(self) -> int:
        """Total number of owned elements (excluding the root itself)."""
        return sum(1 for _ in self.all_owned())

    def fingerprint(self) -> str:
        """Content hash of the whole model (see :func:`model_fingerprint`)."""
        return model_fingerprint(self)

    # -- statistics -----------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Count of owned elements per concrete metaclass name."""
        counts: Dict[str, int] = {}
        for element in self.all_owned():
            key = type(element).__name__
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def __repr__(self) -> str:
        return f"<Model {self.name!r} ({self.element_count()} elements)>"
