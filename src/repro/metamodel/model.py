"""The model root and whole-model queries.

A :class:`Model` is the top-level package of a UML model.  It provides
indexed lookup by ``xmi_id``, typed iteration, and summary statistics
used by the metrics package and the benchmark workload generators.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Type, TypeVar

from ..errors import LookupFailed
from .element import Element
from .namespaces import Package

E = TypeVar("E", bound=Element)


class Model(Package):
    """Root package of a UML model."""

    _id_tag = "Model"

    def __init__(self, name: str = "model"):
        super().__init__(name)

    # -- lookup -----------------------------------------------------------

    def find_by_id(self, xmi_id: str) -> Optional[Element]:
        """Locate any owned element by its ``xmi_id`` (linear scan)."""
        if self.xmi_id == xmi_id:
            return self
        for element in self.all_owned():
            if element.xmi_id == xmi_id:
                return element
        return None

    def element_by_id(self, xmi_id: str) -> Element:
        """Like :meth:`find_by_id` but raising when absent."""
        found = self.find_by_id(xmi_id)
        if found is None:
            raise LookupFailed(f"model {self.name!r} has no element {xmi_id!r}")
        return found

    def build_id_index(self) -> Dict[str, Element]:
        """A dict from ``xmi_id`` to element, for repeated lookups."""
        index: Dict[str, Element] = {self.xmi_id: self}
        for element in self.all_owned():
            index[element.xmi_id] = element
        return index

    # -- iteration ----------------------------------------------------------

    def elements_of_type(self, kind: Type[E]) -> Iterator[E]:
        """Yield every transitively owned element of the given kind."""
        for element in self.all_owned():
            if isinstance(element, kind):
                yield element

    def element_count(self) -> int:
        """Total number of owned elements (excluding the root itself)."""
        return sum(1 for _ in self.all_owned())

    # -- statistics -----------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Count of owned elements per concrete metaclass name."""
        counts: Dict[str, int] = {}
        for element in self.all_owned():
            key = type(element).__name__
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def __repr__(self) -> str:
        return f"<Model {self.name!r} ({self.element_count()} elements)>"
