"""Executable Python code generation from PSM classes.

The fully-behavioural backend: each class/component becomes a plain
Python class whose generated methods replay the model exactly —

* UML operations with ASL bodies become methods;
* the classifier state machine becomes ``dispatch(event, **params)``
  (flat transition chains with translated guards/effects, entry/exit
  actions, internal transitions) and ``advance(cycles)`` for ``after``
  transitions;
* ``send`` statements call ``self._send`` which appends to
  ``self.outbox`` and invokes the optional ``on_send`` callback — the
  hook a generated-code testbench wires to its scheduler.

Because translation is complete (not a synthesizable subset), the
generated code's observable behaviour matches the interpreted model;
the test suite asserts this equivalence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import CodegenError
from ..metamodel.classifiers import UmlClass
from ..metamodel.components import Port
from ..metamodel.element import Element
from ..statemachines.kernel import (
    State,
    StateMachine,
    Transition,
    TransitionKind,
)
from .base import CodeWriter, hardware_components, sanitize
from .transpile import (
    PYTHON_ATTR_HELPER,
    PYTHON_PRELUDE,
    to_python_expression,
    to_python_statements,
)
from .. import asl


def _py_name(name: str) -> str:
    return sanitize(name, "python")


def _flat_machine(machine: StateMachine):
    """(states, initial, transitions) for a flat machine; raises otherwise."""
    machine.validate()
    if any(state.is_composite for state in machine.all_states()):
        raise CodegenError(
            f"python backend requires a flat machine; flatten "
            f"{machine.name!r} first (repro.statemachines.flatten)")
    region = machine.regions[0]
    states = [s for s in region.states]
    initial_pseudo = region.initial
    if initial_pseudo is None:
        raise CodegenError(f"machine {machine.name!r} has no initial")
    initial = initial_pseudo.outgoing[0].target
    if not isinstance(initial, State):
        raise CodegenError(
            f"machine {machine.name!r}: initial must enter a state "
            "directly for code generation")
    transitions = [t for t in region.transitions
                   if isinstance(t.source, State)
                   and isinstance(t.target, State)]
    return states, initial, transitions


def _emit_action(writer: CodeWriter, action, self_names: Set[str],
                 label: str) -> None:
    if action is None:
        return
    if callable(action):
        writer.line(f"# {label}: Python callable in the model; not "
                    "translatable")
        return
    for line in to_python_statements(action, self_names):
        writer.line(line)


def generate_class(classifier: UmlClass) -> str:
    """Generate one Python class (source text) for a UML class."""
    writer = CodeWriter()
    class_name = _py_name(classifier.name or "Generated")

    self_names: Set[str] = set()
    for attribute in classifier.all_attributes():
        if not isinstance(attribute, Port):
            self_names.add(attribute.name)

    machine = classifier.classifier_behavior \
        if isinstance(classifier.classifier_behavior, StateMachine) else None
    flat = None
    if machine is not None:
        flat = _flat_machine(machine)
        for transition in machine.all_transitions():
            if isinstance(transition.effect, str):
                from .base import collect_assigned_names

                self_names |= collect_assigned_names(transition.effect)
        for state in machine.all_states():
            for action in (state.entry, state.exit, state.do_activity):
                if isinstance(action, str):
                    from .base import collect_assigned_names

                    self_names |= collect_assigned_names(action)

    writer.line(f"class {class_name}:")
    writer.indent()
    doc = (classifier.comments[0].body if classifier.comments
           else f"Generated from UML class {classifier.name!r}.")
    writer.line(f'"""{doc}"""')
    writer.line("")
    writer.line("def __init__(self, on_send=None):")
    writer.indent()
    writer.line("self.on_send = on_send")
    writer.line("self.outbox = []")
    for attribute in classifier.all_attributes():
        if isinstance(attribute, Port):
            continue
        default = attribute.default_value
        writer.line(f"self.{_py_name(attribute.name)} = {default!r}")
    if flat is not None:
        states, initial, _transitions = flat
        writer.line(f"self.state = {initial.name!r}")
        writer.line("self._timer = 0")
        writer.line(f"self._enter_{_py_name(initial.name)}()")
    writer.dedent()
    writer.line("")

    writer.line("def _send(self, signal, target=None, **arguments):")
    writer.indent()
    writer.line("self.outbox.append((signal, target, arguments))")
    writer.line("if self.on_send is not None:")
    writer.indent()
    writer.line("self.on_send(signal, target, arguments)")
    writer.dedent()
    writer.dedent()
    writer.line("")

    # operations with ASL bodies
    for operation in classifier.operations:
        if operation.body is None:
            continue
        params = ", ".join(_py_name(p.name)
                           for p in operation.in_parameters)
        signature = f"def {_py_name(operation.name)}(self" \
            + (f", {params}" if params else "") + "):"
        writer.line(signature)
        writer.indent()
        local_names = self_names - {p.name
                                    for p in operation.in_parameters}
        for line in to_python_statements(operation.body, local_names):
            writer.line(line)
        writer.dedent()
        writer.line("")

    if flat is not None:
        states, initial, transitions = flat
        # entry helpers (reset the state timer, run entry actions)
        for state in states:
            writer.line(f"def _enter_{_py_name(state.name)}(self):")
            writer.indent()
            writer.line("self._timer = 0")
            _emit_action(writer, state.entry, self_names, "entry")
            _emit_action(writer, state.do_activity, self_names, "do")
            writer.line("return None")
            writer.dedent()
            writer.line("")

        writer.line("def dispatch(self, event_name, **event):")
        writer.indent()
        writer.line('"""Run-to-completion step for one signal event."""')
        emitted_any = False
        for state in states:
            state_transitions = [
                t for t in transitions
                if t.source is state and t.triggers
                and not any(type(e).__name__ == "TimeEvent"
                            for e in t.triggers)]
            if not state_transitions:
                continue
            keyword = "if" if not emitted_any else "elif"
            emitted_any = True
            writer.line(f"{keyword} self.state == {state.name!r}:")
            writer.indent()
            for transition in state_transitions:
                _emit_dispatch_arm(writer, transition, self_names)
            writer.line("return False")
            writer.dedent()
        writer.line("return False")
        writer.dedent()
        writer.line("")

        writer.line("def advance(self, cycles=1):")
        writer.indent()
        writer.line('"""Advance local time, firing due after() '
                    'transitions."""')
        writer.line("fired = 0")
        writer.line("for _ in range(cycles):")
        writer.indent()
        writer.line("self._timer += 1")
        emitted_any = False
        for state in states:
            timed = [(t, e) for t in transitions if t.source is state
                     for e in t.triggers
                     if type(e).__name__ == "TimeEvent"]
            if not timed:
                continue
            keyword = "if" if not emitted_any else "elif"
            emitted_any = True
            writer.line(f"{keyword} self.state == {state.name!r}:")
            writer.indent()
            for transition, event in timed:
                threshold = max(int(round(event.after)), 1)
                writer.line(f"if self._timer >= {threshold}:")
                writer.indent()
                _emit_fire(writer, transition, self_names, has_event=False)
                writer.line("fired += 1")
                writer.dedent()
            writer.dedent()
        writer.dedent()
        writer.line("return fired")
        writer.dedent()
    writer.dedent()
    return writer.text()


def _emit_dispatch_arm(writer: CodeWriter, transition: Transition,
                       self_names: Set[str]) -> None:
    trigger_names = sorted({e.name for e in transition.triggers})
    trigger_check = " or ".join(f"event_name == {n!r}"
                                for n in trigger_names)
    guard_check = ""
    if isinstance(transition.guard, str):
        guard_py = to_python_expression(
            asl.parse_expression(transition.guard), self_names)
        guard_check = f" and ({guard_py})"
    elif callable(transition.guard):
        writer.line("# callable guard not translatable; treated as False")
        return
    writer.line(f"if ({trigger_check}){guard_check}:")
    writer.indent()
    _emit_fire(writer, transition, self_names, has_event=True)
    writer.line("return True")
    writer.dedent()


def _emit_fire(writer: CodeWriter, transition: Transition,
               self_names: Set[str], has_event: bool) -> None:
    if not has_event:
        writer.line("event = {}")
    source, target = transition.source, transition.target
    internal = transition.kind is TransitionKind.INTERNAL
    if not internal and isinstance(source, State):
        _emit_action(writer, source.exit, self_names, "exit")
    if isinstance(transition.effect, str):
        for line in to_python_statements(transition.effect, self_names):
            writer.line(line)
    elif callable(transition.effect):
        writer.line("# callable effect not translatable")
    if not internal and isinstance(target, State):
        writer.line(f"self.state = {target.name!r}")
        writer.line(f"self._enter_{_py_name(target.name)}()")


def generate_module(scope: Element) -> str:
    """Generate one Python module containing every class under scope."""
    classes = [c for c in hardware_components(scope)] \
        if not isinstance(scope, UmlClass) else [scope]
    if not isinstance(scope, UmlClass):
        # include plain classes too, not only components
        seen = set(map(id, classes))
        for element in scope.descendants_of_type(UmlClass):
            if id(element) not in seen:
                classes.append(element)
                seen.add(id(element))
    if not classes:
        raise CodegenError("no classes found to generate Python for")

    writer = CodeWriter()
    writer.line('"""Generated by repro.codegen.python_gen — executable '
                'model code."""')
    writer.line("")
    writer.block(PYTHON_PRELUDE)
    writer.line("")
    writer.block(PYTHON_ATTR_HELPER)
    writer.line("")
    for classifier in classes:
        machine = classifier.classifier_behavior
        if machine is not None and not isinstance(machine, StateMachine):
            continue
        try:
            writer.block(generate_class(classifier))
        except CodegenError as error:
            writer.line(f"# skipped {classifier.name}: {error}")
        writer.line("")
    return writer.text()


def compile_module(scope: Element) -> Dict[str, type]:
    """Generate, exec and return the classes keyed by class name."""
    source = generate_module(scope)
    namespace: Dict[str, object] = {}
    exec(compile(source, "<repro-generated>", "exec"), namespace)
    return {name: obj for name, obj in namespace.items()
            if isinstance(obj, type)}
