"""Code generation (subsystem S9): the paper's open question, answered.

Four backends share one analysis of the PSM:

* :mod:`repro.codegen.vhdl` — entities + synchronous FSM architectures;
* :mod:`repro.codegen.verilog` — modules + always-block FSMs;
* :mod:`repro.codegen.systemc` — SC_MODULEs with SC_METHOD FSMs;
* :mod:`repro.codegen.python_gen` — complete, executable Python whose
  behaviour matches the interpreted model.

``generate_all`` runs every backend over a scope; ``validators`` checks
structural validity of the results.
"""

from typing import Dict

from ..metamodel.element import Element
from . import python_gen, systemc, testbench, validators, verilog, vhdl
from .pipeline import (
    BACKENDS,
    choose_executor,
    generate_all_parallel,
    generate_units,
)
from .base import (
    CodeWriter,
    MachineView,
    TransitionView,
    analyze_machine,
    collect_assigned_names,
    collect_sends,
    sanitize,
)
from .transpile import (
    PYTHON_PRELUDE,
    Untranslatable,
    to_c_expression,
    to_python_expression,
    to_python_statements,
    to_verilog_expression,
    to_vhdl_expression,
)
from .validators import (
    VALIDATORS,
    check_python,
    check_systemc,
    check_verilog,
    check_vhdl,
)


def generate_all(scope: Element) -> Dict[str, Dict[str, str]]:
    """Run every backend; returns {backend: {filename: text}}."""
    return {
        "vhdl": vhdl.generate(scope),
        "verilog": verilog.generate(scope),
        "systemc": systemc.generate(scope),
        "python": {"generated.py": python_gen.generate_module(scope)},
    }


__all__ = [
    "python_gen", "systemc", "testbench", "validators", "verilog", "vhdl",
    "CodeWriter", "MachineView", "TransitionView", "analyze_machine",
    "collect_assigned_names", "collect_sends", "sanitize",
    "PYTHON_PRELUDE", "Untranslatable", "to_c_expression",
    "to_python_expression", "to_python_statements",
    "to_verilog_expression", "to_vhdl_expression",
    "VALIDATORS", "check_python", "check_systemc", "check_verilog",
    "check_vhdl",
    "generate_all",
    "BACKENDS", "choose_executor", "generate_all_parallel",
    "generate_units",
]
