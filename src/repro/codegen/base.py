"""Shared code-generation infrastructure.

Common pieces used by all four backends (VHDL, Verilog, SystemC,
Python): an indentation-aware :class:`CodeWriter`, identifier
sanitization per target language, and the *machine analysis* that
reduces a UML state machine to the synthesizable view the HDL backends
emit — states, triggers (input strobes), sends (output strobes with
payloads), timed transitions (cycle counters) and integer context
registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .. import asl
from ..errors import CodegenError
from ..metamodel.classifiers import UmlClass
from ..metamodel.components import Component, Port
from ..statemachines.events import ChangeEvent, TimeEvent
from ..statemachines.kernel import (
    FinalState,
    Pseudostate,
    PseudostateKind,
    State,
    StateMachine,
    Transition,
)


class CodeWriter:
    """Emit indented source text."""

    def __init__(self, indent_unit: str = "    "):
        self._lines: List[str] = []
        self._level = 0
        self._unit = indent_unit

    def line(self, text: str = "") -> "CodeWriter":
        """Append one line at the current indent (chainable)."""
        if text:
            self._lines.append(self._unit * self._level + text)
        else:
            self._lines.append("")
        return self

    def lines(self, *texts: str) -> "CodeWriter":
        """Append several lines (chainable)."""
        for text in texts:
            self.line(text)
        return self

    def indent(self) -> "CodeWriter":
        """Increase the indent level (chainable)."""
        self._level += 1
        return self

    def dedent(self) -> "CodeWriter":
        """Decrease the indent level (chainable)."""
        if self._level == 0:
            raise CodegenError("cannot dedent below zero")
        self._level -= 1
        return self

    def block(self, raw: str) -> "CodeWriter":
        """Append a pre-formatted block, re-indented to the current level."""
        for text in raw.splitlines():
            self.line(text)
        return self

    def text(self) -> str:
        """The accumulated source text."""
        return "\n".join(self._lines) + "\n"


_KEYWORD_SUFFIX = "_x"

_VHDL_KEYWORDS = frozenset("""
abs access after alias all and architecture array assert attribute begin
block body buffer bus case component configuration constant disconnect
downto else elsif end entity exit file for function generate generic group
guarded if impure in inertial inout is label library linkage literal loop
map mod nand new next nor not null of on open or others out package port
postponed procedure process pure range record register reject rem report
return rol ror select severity shared signal sla sll sra srl subtype then
to transport type unaffected units until use variable wait when while with
xnor xor
""".split())

_VERILOG_KEYWORDS = frozenset("""
always and assign begin buf case casex casez default define else end
endcase endfunction endmodule endtask for forever function if initial
inout input integer module nand negedge nor not or output parameter
posedge reg repeat task time tri wire while localparam logic
""".split())

_PYTHON_KEYWORDS = frozenset("""
False None True and as assert async await break class continue def del
elif else except finally for from global if import in is lambda nonlocal
not or pass raise return try while with yield
""".split())


def sanitize(name: str, language: str = "python") -> str:
    """Make a model name a legal identifier in the target language."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_"
                      for c in name) or "unnamed"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    keywords = {"vhdl": _VHDL_KEYWORDS, "verilog": _VERILOG_KEYWORDS,
                "systemc": _PYTHON_KEYWORDS, "python": _PYTHON_KEYWORDS}
    if cleaned.lower() in keywords.get(language, frozenset()):
        cleaned += _KEYWORD_SUFFIX
    return cleaned


# ---------------------------------------------------------------------------
# ASL inspection helpers
# ---------------------------------------------------------------------------

def collect_sends(source: Optional[str]) -> List[Tuple[str, Tuple[str, ...], Optional[str]]]:
    """All ``send`` statements in an ASL snippet.

    Returns ``(signal, argument names, target port or None)`` tuples;
    unparseable / callable actions yield nothing.
    """
    if not isinstance(source, str):
        return []
    try:
        program = asl.parse(source)
    except Exception:
        return []
    sends: List[Tuple[str, Tuple[str, ...], Optional[str]]] = []

    def walk(statements) -> None:
        for statement in statements:
            if isinstance(statement, asl.Send):
                target = None
                if isinstance(statement.target, asl.Literal) \
                        and isinstance(statement.target.value, str):
                    target = statement.target.value
                sends.append((statement.signal,
                              tuple(k for k, _ in statement.arguments),
                              target))
            elif isinstance(statement, asl.If):
                walk(statement.then_body)
                walk(statement.else_body)
            elif isinstance(statement, (asl.While, asl.For)):
                walk(statement.body)

    walk(program.body)
    return sends


def collect_assigned_names(source: Optional[str]) -> Set[str]:
    """Plain variable names assigned anywhere in an ASL snippet."""
    if not isinstance(source, str):
        return set()
    try:
        program = asl.parse(source)
    except Exception:
        return set()
    names: Set[str] = set()

    def walk(statements) -> None:
        for statement in statements:
            if isinstance(statement, asl.Assign) \
                    and isinstance(statement.target, asl.Name):
                names.add(statement.target.identifier)
            elif isinstance(statement, asl.If):
                walk(statement.then_body)
                walk(statement.else_body)
            elif isinstance(statement, (asl.While, asl.For)):
                walk(statement.body)

    walk(program.body)
    return names


# ---------------------------------------------------------------------------
# machine analysis (the synthesizable view)
# ---------------------------------------------------------------------------

@dataclass
class TransitionView:
    """One transition as the HDL backends see it."""

    source: str
    target: str
    trigger: Optional[str]        # input event name, None for completion
    after_cycles: Optional[int]   # timed transition, in cycles
    guard: Optional[str]          # ASL guard text (None or untranslated)
    effect: Optional[str]         # ASL effect text
    is_internal: bool = False


@dataclass
class MachineView:
    """A state machine reduced to what RTL needs."""

    name: str
    states: List[str]
    initial: str
    transitions: List[TransitionView]
    triggers: List[str]                         # input event names
    outputs: List[Tuple[str, str]]              # (port, signal) strobes
    registers: List[Tuple[str, int]]            # (context var, reset value)
    has_hierarchy: bool = False
    notes: List[str] = field(default_factory=list)


def analyze_machine(machine: StateMachine,
                    owner: Optional[UmlClass] = None) -> MachineView:
    """Reduce a machine to a :class:`MachineView`.

    Hierarchical machines are handled by listing leaf states and
    treating transitions at composite level as transitions from each of
    the composite's leaves (a standard flattening approximation noted in
    ``notes``).  Pseudostate routing other than initial is recorded as a
    note — RTL for choice trees is emitted by the backends as guard
    chains where possible.
    """
    machine.validate()
    view = MachineView(name=machine.name or "machine", states=[],
                       initial="", transitions=[], triggers=[], outputs=[],
                       registers=[])

    leaf_states = [s for s in machine.all_states()
                   if s.is_simple and not isinstance(s, FinalState)]
    final_states = [s for s in machine.all_states()
                    if isinstance(s, FinalState)]
    view.states = [s.name for s in leaf_states] \
        + [s.name for s in final_states]
    view.has_hierarchy = any(s.is_composite for s in machine.all_states())
    if view.has_hierarchy:
        view.notes.append(
            "hierarchical machine: composite-level transitions apply to "
            "each nested leaf state")

    # initial state: follow the initial pseudostate chain to a state
    region = machine.regions[0]
    entry = region.initial
    if entry is None:
        raise CodegenError(f"machine {machine.name!r} has no initial state")
    target = entry.outgoing[0].target
    seen = 0
    while not isinstance(target, State):
        outgoing = target.outgoing
        if not outgoing or seen > 64:
            raise CodegenError(
                f"machine {machine.name!r}: cannot resolve initial state")
        target = outgoing[0].target
        seen += 1
    while isinstance(target, State) and target.is_composite:
        nested_initial = target.regions[0].initial
        if nested_initial is None:
            break
        target = nested_initial.outgoing[0].target
    view.initial = target.name

    def leaves_of(state: State) -> List[str]:
        if state.is_simple:
            return [state.name]
        collected: List[str] = []
        for nested_region in state.regions:
            for nested in nested_region.states:
                collected.extend(leaves_of(nested))
        return collected

    triggers: Set[str] = set()
    outputs: Set[Tuple[str, str]] = set()
    register_names: Dict[str, int] = {}

    if owner is not None:
        for attribute in owner.all_attributes():
            if isinstance(attribute, Port):
                continue
            default = attribute.default_value
            if isinstance(default, bool):
                default = int(default)
            if isinstance(default, int):
                register_names[attribute.name] = default

    for transition in machine.all_transitions():
        source, target_vertex = transition.source, transition.target
        if isinstance(source, Pseudostate):
            if source.kind is not PseudostateKind.INITIAL:
                view.notes.append(
                    f"pseudostate routing via {source.kind.value} "
                    f"{source.name!r} approximated")
            continue
        if isinstance(target_vertex, Pseudostate):
            view.notes.append(
                f"transition into {target_vertex.kind.value} "
                f"{target_vertex.name!r} approximated")
            continue
        if not isinstance(source, State) or not isinstance(target_vertex,
                                                           State):
            continue
        source_leaves = leaves_of(source)
        target_name = target_vertex.name
        if isinstance(target_vertex, State) and target_vertex.is_composite:
            nested = leaves_of(target_vertex)
            target_name = nested[0] if nested else target_vertex.name

        trigger_name: Optional[str] = None
        after_cycles: Optional[int] = None
        for event in transition.triggers:
            if isinstance(event, TimeEvent):
                after_cycles = max(int(round(event.after)), 1)
            elif isinstance(event, ChangeEvent):
                view.notes.append(
                    f"change trigger {event.name!r} approximated as "
                    "a guard")
            else:
                trigger_name = event.name
                triggers.add(event.name)

        guard = transition.guard if isinstance(transition.guard, str) \
            else None
        effect = transition.effect if isinstance(transition.effect, str) \
            else None
        if callable(transition.guard) or callable(transition.effect):
            view.notes.append(
                f"callable guard/effect on {transition!r} cannot be "
                "translated; emitted as comment")

        for signal, args, port in collect_sends(effect):
            outputs.add((port or "self", signal))
        for name in collect_assigned_names(effect):
            register_names.setdefault(name, 0)
        if guard:
            pass  # guards only read registers; reads need no declaration

        for leaf in source_leaves:
            view.transitions.append(TransitionView(
                source=leaf, target=target_name, trigger=trigger_name,
                after_cycles=after_cycles, guard=guard, effect=effect,
                is_internal=(transition.kind.name == "INTERNAL")))

    for state in machine.all_states():
        for action in (state.entry, state.exit, state.do_activity):
            for signal, args, port in collect_sends(
                    action if isinstance(action, str) else None):
                outputs.add((port or "self", signal))
            for name in collect_assigned_names(
                    action if isinstance(action, str) else None):
                register_names.setdefault(name, 0)

    view.triggers = sorted(triggers)
    view.outputs = sorted(outputs)
    view.registers = sorted(register_names.items())
    return view


def machines_of(classifier: UmlClass) -> List[StateMachine]:
    """The state machines owned by a classifier."""
    return list(classifier.owned_of_type(StateMachine))


def hardware_components(scope) -> List[Component]:
    """All components under a scope, in qualified-name order."""
    components = list(scope.descendants_of_type(Component)) \
        if not isinstance(scope, Component) else [scope]
    return sorted(components, key=lambda c: c.qualified_name)
