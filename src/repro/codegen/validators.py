"""Structural validators for generated code.

Without vendor toolchains in the loop, "the generated HDL is valid" is
checked structurally: construct/keyword balance, declared-before-used
state constants, and (for Python) a real ``compile()``.  Experiment D7
reports the validity rate these checks produce; the unit tests require
100%.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List


def _strip_comments(text: str, line_marker: str) -> str:
    lines = []
    for line in text.splitlines():
        index = line.find(line_marker)
        lines.append(line[:index] if index >= 0 else line)
    return "\n".join(lines)


def check_vhdl(text: str) -> List[str]:
    """Structural issues in generated VHDL (empty list = clean)."""
    issues: List[str] = []
    code = _strip_comments(text, "--").lower()
    pairs = [
        (r"\bentity\s+\w+\s+is\b", r"\bend\s+entity\b", "entity"),
        (r"\barchitecture\s+\w+\s+of\b", r"\bend\s+architecture\b",
         "architecture"),
        (r"(?<!end )\bprocess\b", r"\bend\s+process\b", "process"),
        (r"(?<!end )\bcase\b", r"\bend\s+case\b", "case"),
    ]
    for open_pattern, close_pattern, construct in pairs:
        opened = len(re.findall(open_pattern, code))
        closed = len(re.findall(close_pattern, code))
        if opened != closed:
            issues.append(
                f"{construct}: {opened} opened vs {closed} closed")
    if_count = len(re.findall(r"(?<!end )\bif\b", code))
    end_if = len(re.findall(r"\bend\s+if\b", code))
    if if_count != end_if:
        issues.append(f"if: {if_count} opened vs {end_if} closed")
    if "library ieee;" not in code:
        issues.append("missing ieee library clause")
    return issues


def check_verilog(text: str) -> List[str]:
    """Structural issues in generated Verilog (empty list = clean)."""
    issues: List[str] = []
    code = _strip_comments(text, "//")
    modules = len(re.findall(r"\bmodule\b", code))
    endmodules = len(re.findall(r"\bendmodule\b", code))
    if modules != endmodules:
        issues.append(f"module: {modules} opened vs {endmodules} closed")
    begins = len(re.findall(r"\bbegin\b", code))
    ends = len(re.findall(r"\bend\b(?!case|module|function|task)", code))
    if begins != ends:
        issues.append(f"begin/end: {begins} vs {ends}")
    cases = len(re.findall(r"\bcase\b", code))
    endcases = len(re.findall(r"\bendcase\b", code))
    if cases != endcases:
        issues.append(f"case: {cases} vs {endcases}")
    if modules and not re.search(r"\bmodule\s+\w+\s*\(", code):
        issues.append("module has no port list")
    return issues


def check_systemc(text: str) -> List[str]:
    """Structural issues in generated SystemC (empty list = clean)."""
    issues: List[str] = []
    code = _strip_comments(text, "//")
    if code.count("{") != code.count("}"):
        issues.append(
            f"braces: {code.count('{')} open vs {code.count('}')} close")
    if code.count("(") != code.count(")"):
        issues.append("unbalanced parentheses")
    if "SC_MODULE" not in text:
        issues.append("no SC_MODULE declaration")
    if "#include <systemc.h>" not in text:
        issues.append("missing systemc include")
    return issues


def check_python(text: str) -> List[str]:
    """Generated Python must actually compile."""
    try:
        compile(text, "<generated>", "exec")
        return []
    except SyntaxError as error:
        return [f"syntax error: {error}"]


#: Backend name -> validator, used by the D7 harness.
VALIDATORS: Dict[str, Callable[[str], List[str]]] = {
    "vhdl": check_vhdl,
    "verilog": check_verilog,
    "systemc": check_systemc,
    "python": check_python,
}
