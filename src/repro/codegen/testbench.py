"""HDL testbench generation.

A generated module is only useful with a way to drive it: this module
emits self-contained VHDL and Verilog testbench skeletons for any
component the HDL backends handle — clock/reset generation, one strobe
pulse per declared trigger, and a bounded simulation window.  The
stimulus order replays the component state machine's trigger alphabet,
so the generated bench exercises every input at least once.
"""

from __future__ import annotations

from typing import List, Optional

from ..metamodel.classifiers import UmlClass
from ..statemachines.kernel import StateMachine
from .base import CodeWriter, MachineView, analyze_machine, sanitize
from .vhdl import _collect_event_fields


def _view_of(component: UmlClass) -> Optional[MachineView]:
    machines = component.owned_of_type(StateMachine)
    machine = component.classifier_behavior \
        if isinstance(component.classifier_behavior, StateMachine) \
        else (machines[0] if machines else None)
    return analyze_machine(machine, component) if machine else None


def generate_vhdl_testbench(component: UmlClass,
                            cycles_per_event: int = 4,
                            clock_period_ns: int = 10) -> str:
    """A VHDL testbench instantiating the generated entity."""
    entity = sanitize(component.name or "top", "vhdl")
    view = _view_of(component)
    triggers = view.triggers if view else []
    fields = sorted(_collect_event_fields(view)) if view else []
    outputs = view.outputs if view else []

    writer = CodeWriter(indent_unit="  ")
    writer.lines(
        f"-- generated testbench for {entity}",
        "library ieee;",
        "use ieee.std_logic_1164.all;",
        "",
        f"entity {entity}_tb is",
        f"end entity {entity}_tb;",
        "",
        f"architecture sim of {entity}_tb is",
    )
    writer.indent()
    writer.line("signal clk : std_logic := '0';")
    writer.line("signal rst_n : std_logic := '0';")
    for trigger in triggers:
        writer.line(f"signal ev_{sanitize(trigger, 'vhdl').lower()} : "
                    "std_logic := '0';")
    for field in fields:
        writer.line(f"signal ev_{sanitize(field, 'vhdl')} : integer := 0;")
    for port_name, signal in outputs:
        strobe = f"{sanitize(port_name, 'vhdl')}_" \
                 f"{sanitize(signal, 'vhdl')}".lower()
        writer.line(f"signal {strobe} : std_logic;")
    writer.line("signal done : boolean := false;")
    writer.dedent()
    writer.line("begin")
    writer.indent()
    writer.line(f"clk <= not clk after {clock_period_ns / 2:.0f} ns "
                "when not done else '0';")
    writer.line("")
    writer.line(f"dut : entity work.{entity}")
    writer.indent()
    writer.line("port map (")
    writer.indent()
    port_maps: List[str] = ["clk => clk", "rst_n => rst_n"]
    for trigger in triggers:
        name = f"ev_{sanitize(trigger, 'vhdl').lower()}"
        port_maps.append(f"{name} => {name}")
    for field in fields:
        name = f"ev_{sanitize(field, 'vhdl')}"
        port_maps.append(f"{name} => {name}")
    for port_name, signal in outputs:
        strobe = f"{sanitize(port_name, 'vhdl')}_" \
                 f"{sanitize(signal, 'vhdl')}".lower()
        port_maps.append(f"{strobe} => {strobe}")
    for index, mapping in enumerate(port_maps):
        separator = "," if index < len(port_maps) - 1 else ""
        writer.line(mapping + separator)
    writer.dedent()
    writer.line(");")
    writer.dedent()
    writer.line("")
    writer.line("stimulus : process")
    writer.line("begin")
    writer.indent()
    writer.line(f"wait for {2 * clock_period_ns} ns;")
    writer.line("rst_n <= '1';")
    for trigger in triggers:
        name = f"ev_{sanitize(trigger, 'vhdl').lower()}"
        writer.line(f"wait for {cycles_per_event * clock_period_ns} ns;")
        writer.line(f"{name} <= '1';")
        writer.line(f"wait for {clock_period_ns} ns;")
        writer.line(f"{name} <= '0';")
    writer.line(f"wait for {4 * cycles_per_event * clock_period_ns} ns;")
    writer.line("done <= true;")
    writer.line("wait;")
    writer.dedent()
    writer.line("end process stimulus;")
    writer.dedent()
    writer.line("end architecture sim;")
    return writer.text()


def generate_verilog_testbench(component: UmlClass,
                               cycles_per_event: int = 4,
                               clock_period: int = 10) -> str:
    """A Verilog testbench instantiating the generated module."""
    module = sanitize(component.name or "top", "verilog").lower()
    view = _view_of(component)
    triggers = view.triggers if view else []
    fields = sorted(_collect_event_fields(view)) if view else []
    outputs = view.outputs if view else []

    writer = CodeWriter()
    writer.lines(
        f"// generated testbench for {module}",
        "`timescale 1ns/1ps",
        f"module {module}_tb ();",
    )
    writer.indent()
    writer.line("reg clk = 1'b0;")
    writer.line("reg rst_n = 1'b0;")
    for trigger in triggers:
        writer.line(f"reg ev_{sanitize(trigger, 'verilog').lower()} "
                    "= 1'b0;")
    for field in fields:
        writer.line(f"reg signed [31:0] ev_{sanitize(field, 'verilog')} "
                    "= 32'd0;")
    for port_name, signal in outputs:
        strobe = f"{sanitize(port_name, 'verilog')}_" \
                 f"{sanitize(signal, 'verilog')}".lower()
        writer.line(f"wire {strobe};")
    writer.line("")
    writer.line(f"always #{clock_period // 2} clk = ~clk;")
    writer.line("")
    connections = [".clk(clk)", ".rst_n(rst_n)"]
    for trigger in triggers:
        name = f"ev_{sanitize(trigger, 'verilog').lower()}"
        connections.append(f".{name}({name})")
    for field in fields:
        name = f"ev_{sanitize(field, 'verilog')}"
        connections.append(f".{name}({name})")
    for port_name, signal in outputs:
        strobe = f"{sanitize(port_name, 'verilog')}_" \
                 f"{sanitize(signal, 'verilog')}".lower()
        connections.append(f".{strobe}({strobe})")
    writer.line(f"{module} dut ({', '.join(connections)});")
    writer.line("")
    writer.line("initial begin")
    writer.indent()
    writer.line(f"#{2 * clock_period} rst_n = 1'b1;")
    for trigger in triggers:
        name = f"ev_{sanitize(trigger, 'verilog').lower()}"
        writer.line(f"#{cycles_per_event * clock_period} {name} = 1'b1;")
        writer.line(f"#{clock_period} {name} = 1'b0;")
    writer.line(f"#{4 * cycles_per_event * clock_period} $finish;")
    writer.dedent()
    writer.line("end")
    writer.dedent()
    writer.line("endmodule")
    return writer.text()
