"""Parallel multi-backend code generation.

The four backends (VHDL, Verilog, SystemC, Python) are independent —
each reads the model scope and writes its own file set — so they fan
out over a :mod:`concurrent.futures` pool.  A size heuristic picks the
executor: big models go to a process pool (real CPU parallelism, worth
the fork+pickle cost), small models to threads (near-zero startup; the
backends release little of the GIL, but the pool also costs almost
nothing).  Scopes that cannot pickle (callable guards/effects close
over Python objects) transparently drop from processes to threads.

Determinism is a hard guarantee: whatever the executor, completion
order, or scheduling jitter, the returned mapping lists backends in the
fixed :data:`BACKENDS` order with byte-identical content to the
sequential :func:`repro.codegen.generate_all` — the determinism test
asserts exactly that.
"""

from __future__ import annotations

import concurrent.futures
import pickle
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..errors import CodegenError
from ..metamodel.element import Element
from ..perf import PERF
from . import python_gen, systemc, verilog, vhdl

#: Fixed backend order — output dicts always iterate in this order.
BACKENDS: Tuple[str, ...] = ("vhdl", "verilog", "systemc", "python")

#: Models with at least this many owned elements use a process pool.
PROCESS_POOL_THRESHOLD = 400

_GENERATORS: Dict[str, Callable[[Element], Dict[str, str]]] = {
    "vhdl": vhdl.generate,
    "verilog": verilog.generate,
    "systemc": systemc.generate,
    "python": lambda scope: {
        "generated.py": python_gen.generate_module(scope)},
}


def _run_backend(backend: str,
                 scope: Element) -> Tuple[str, Dict[str, str], float]:
    """Worker: one backend over the scope (top-level for process pools)."""
    start = time.perf_counter()
    files = _GENERATORS[backend](scope)
    return backend, files, time.perf_counter() - start


def _scope_size(scope: Element) -> int:
    return sum(1 for _ in scope.all_owned())


def choose_executor(scope: Element,
                    size_threshold: int = PROCESS_POOL_THRESHOLD) -> str:
    """The size heuristic: "process" for big picklable scopes, else
    "thread"."""
    if _scope_size(scope) < size_threshold:
        return "thread"
    try:
        pickle.dumps(scope)
    except Exception:
        # callable guards/effects etc. cannot cross a process boundary
        return "thread"
    return "process"


def generate_all_parallel(scope: Element,
                          backends: Sequence[str] = BACKENDS,
                          executor: str = "auto",
                          size_threshold: int = PROCESS_POOL_THRESHOLD,
                          max_workers: Optional[int] = None
                          ) -> Dict[str, Dict[str, str]]:
    """Run the requested backends concurrently.

    ``executor`` is ``"auto"`` (size heuristic), ``"thread"``,
    ``"process"`` or ``"sequential"``.  Returns ``{backend: {filename:
    text}}`` in fixed :data:`BACKENDS` order regardless of completion
    order; content is byte-identical to running the backends one by
    one.  Per-backend wall time lands in ``PERF`` under
    ``codegen.<backend>.wall_s``.
    """
    unknown = [name for name in backends if name not in _GENERATORS]
    if unknown:
        raise CodegenError(f"unknown codegen backends: {unknown!r} "
                           f"(available: {sorted(_GENERATORS)})")
    ordered = [name for name in BACKENDS if name in backends]
    if executor == "auto":
        executor = choose_executor(scope, size_threshold)
    if executor not in ("thread", "process", "sequential"):
        raise CodegenError(
            f"unknown executor {executor!r} "
            "(use 'auto', 'thread', 'process' or 'sequential')")

    results: Dict[str, Dict[str, str]] = {}
    with PERF.timed("codegen.pipeline_s"):
        if executor == "sequential" or len(ordered) <= 1:
            for backend in ordered:
                _, files, elapsed = _run_backend(backend, scope)
                results[backend] = files
                PERF.observe(f"codegen.{backend}.wall_s", elapsed)
        else:
            results.update(_fan_out(scope, ordered, executor, max_workers))
    PERF.incr(f"codegen.runs.{executor}")
    # re-key into the canonical order so iteration is deterministic
    return {backend: results[backend] for backend in ordered}


def generate_units(scope: Element,
                   backends: Sequence[str] = BACKENDS
                   ) -> Dict[str, Dict[str, Dict[str, str]]]:
    """Per-unit, store-backed code generation.

    The build-graph view of codegen: one artifact per (backend,
    hardware component), keyed by the component's subtree fingerprint
    (:func:`repro.metamodel.model.element_fingerprint`).  With an
    active :mod:`repro.store`, unchanged components are served warm and
    only edited components regenerate — editing one part of a SoC
    regenerates exactly that part's units.  Returns ``{backend:
    {component qualified name: {filename: text}}}`` in fixed
    :data:`BACKENDS` order; unit content is byte-identical to running
    the backend over that component alone.
    """
    from ..metamodel.model import element_fingerprint
    from ..store import get_active_store
    from .base import hardware_components

    unknown = [name for name in backends if name not in _GENERATORS]
    if unknown:
        raise CodegenError(f"unknown codegen backends: {unknown!r} "
                           f"(available: {sorted(_GENERATORS)})")
    ordered = [name for name in BACKENDS if name in backends]
    components = hardware_components(scope)
    if not components:
        raise CodegenError("no components found to generate units for")
    store = get_active_store()

    results: Dict[str, Dict[str, Dict[str, str]]] = {}
    with PERF.timed("codegen.units_s"):
        for backend in ordered:
            units: Dict[str, Dict[str, str]] = {}
            for component in components:
                unit_name = component.qualified_name or component.name
                label = f"{backend}:{unit_name}"
                fingerprint = element_fingerprint(component)
                store_key = None
                if store is not None:
                    store_key = store.make_key("codegen", backend,
                                               fingerprint)
                    payload = store.load("codegen", store_key,
                                         inputs=(fingerprint,),
                                         label=label)
                    if isinstance(payload, dict) and payload and all(
                            isinstance(name, str)
                            and isinstance(text, str)
                            for name, text in payload.items()):
                        units[unit_name] = dict(payload)
                        continue
                files = _GENERATORS[backend](component)
                if store is not None:
                    store.save("codegen", store_key, files,
                               inputs=(fingerprint,),
                               meta={"backend": backend,
                                     "component": unit_name},
                               label=label)
                units[unit_name] = files
            results[backend] = units
    return results


def _fan_out(scope: Element, ordered: Sequence[str], executor: str,
             max_workers: Optional[int]) -> Dict[str, Dict[str, str]]:
    workers = max_workers or len(ordered)
    if executor == "process":
        pool_cls = concurrent.futures.ProcessPoolExecutor
    else:
        pool_cls = concurrent.futures.ThreadPoolExecutor
    try:
        with pool_cls(max_workers=workers) as pool:
            futures = {backend: pool.submit(_run_backend, backend, scope)
                       for backend in ordered}
            results: Dict[str, Dict[str, str]] = {}
            for backend in ordered:
                _, files, elapsed = futures[backend].result()
                results[backend] = files
                PERF.observe(f"codegen.{backend}.wall_s", elapsed)
            return results
    except (pickle.PicklingError, TypeError, AttributeError,
            concurrent.futures.process.BrokenProcessPool):
        if executor != "process":
            raise
        # scope or results failed to cross the process boundary; the
        # thread pool shares the address space and always works
        PERF.incr("codegen.process_fallbacks")
        return _fan_out(scope, ordered, "thread", max_workers)
