"""ASL-to-target-language transpilers.

The Python transpiler is complete (every ASL construct has a Python
equivalent — generated code behaves exactly like the interpreter,
including integer division and ``send`` routing through a callback).

The expression transpilers for C-family targets (SystemC) and the HDLs
translate the integer/boolean expression subset RTL can synthesize and
raise :class:`Untranslatable` for the rest; backends catch that and
emit an explanatory comment instead of broken code.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .. import asl
from ..errors import CodegenError


class Untranslatable(CodegenError):
    """The construct has no equivalent in the target language subset."""


# ---------------------------------------------------------------------------
# Python (complete)
# ---------------------------------------------------------------------------

_PY_BINARY = {
    "and": "and", "or": "or", "==": "==", "!=": "!=", "<": "<", "<=": "<=",
    ">": ">", ">=": ">=", "+": "+", "-": "-", "*": "*", "%": "%",
    "in": "in",
}

#: Runtime helpers prepended to every generated Python module so the
#: generated code matches interpreter semantics exactly.
PYTHON_PRELUDE = '''\
def _asl_div(a, b):
    """ASL '/' floors on integer operands, divides otherwise."""
    if isinstance(a, int) and isinstance(b, int):
        return a // b
    return a / b


def _asl_pop(seq):
    return seq.pop(0)


def _asl_append(seq, item):
    seq.append(item)
    return seq


def _asl_contains(seq, item):
    return item in seq
'''

_PY_BUILTIN_MAP = {
    "append": "_asl_append", "pop": "_asl_pop", "contains": "_asl_contains",
    "range": "list(range", "abs": "abs", "min": "min", "max": "max",
    "len": "len", "int": "int", "float": "float", "str": "str",
    "bool": "bool", "sum": "sum", "sorted": "sorted",
}


def to_python_expression(expr: asl.Expr, self_names: Optional[set] = None
                         ) -> str:
    """Translate an ASL expression to Python source.

    ``self_names`` maps bare variable reads onto ``self.<name>`` —
    used when generating methods whose context variables are instance
    attributes.
    """
    return _py_expr(expr, self_names or set())


def _py_expr(expr: asl.Expr, self_names: set) -> str:
    if isinstance(expr, asl.Literal):
        return repr(expr.value)
    if isinstance(expr, asl.Name):
        name = expr.identifier
        if name in self_names:
            return f"self.{name}"
        return name
    if isinstance(expr, asl.Attribute):
        target = _py_expr(expr.target, self_names)
        # dict-style objects dominate ASL usage; getattr-with-dict-fallback
        return f"_asl_attr({target}, {expr.name!r})"
    if isinstance(expr, asl.Index):
        return (f"{_py_expr(expr.target, self_names)}"
                f"[{_py_expr(expr.key, self_names)}]")
    if isinstance(expr, asl.ListLiteral):
        return "[" + ", ".join(_py_expr(i, self_names)
                               for i in expr.items) + "]"
    if isinstance(expr, asl.DictLiteral):
        pairs = ", ".join(f"{_py_expr(k, self_names)}: "
                          f"{_py_expr(v, self_names)}"
                          for k, v in expr.items)
        return "{" + pairs + "}"
    if isinstance(expr, asl.Unary):
        operand = _py_expr(expr.operand, self_names)
        return f"(not {operand})" if expr.op == "not" else f"(-{operand})"
    if isinstance(expr, asl.Binary):
        left = _py_expr(expr.left, self_names)
        right = _py_expr(expr.right, self_names)
        if expr.op == "/":
            return f"_asl_div({left}, {right})"
        return f"({left} {_PY_BINARY[expr.op]} {right})"
    if isinstance(expr, asl.Call):
        args = ", ".join(_py_expr(a, self_names) for a in expr.arguments)
        callee = expr.callee
        if isinstance(callee, asl.Name):
            mapped = _PY_BUILTIN_MAP.get(callee.identifier)
            if mapped == "list(range":
                return f"list(range({args}))"
            if mapped is not None:
                return f"{mapped}({args})"
            if callee.identifier in self_names:
                return f"self.{callee.identifier}({args})"
            return f"self.{callee.identifier}({args})"  # operation call
        return f"{_py_expr(callee, self_names)}({args})"
    raise CodegenError(f"cannot translate {type(expr).__name__} to Python")


#: Attribute-access helper injected alongside the prelude.
PYTHON_ATTR_HELPER = '''\
def _asl_attr(obj, name):
    if isinstance(obj, dict):
        return obj[name]
    return getattr(obj, name)
'''


def to_python_statements(source: str, self_names: set,
                         send_call: str = "self._send") -> List[str]:
    """Translate an ASL statement block to Python source lines."""
    program = asl.parse(source)
    lines: List[str] = []
    _py_block(program.body, lines, 0, self_names, send_call)
    return lines or ["pass"]


def _py_block(statements, lines: List[str], level: int, self_names: set,
              send_call: str) -> None:
    pad = "    " * level
    if not statements:
        lines.append(pad + "pass")
        return
    for statement in statements:
        if isinstance(statement, asl.Assign):
            target = _py_assign_target(statement.target, self_names)
            lines.append(f"{pad}{target} = "
                         f"{_py_expr(statement.value, self_names)}")
        elif isinstance(statement, asl.ExprStmt):
            lines.append(pad + _py_expr(statement.expression, self_names))
        elif isinstance(statement, asl.If):
            lines.append(f"{pad}if "
                         f"{_py_expr(statement.condition, self_names)}:")
            _py_block(statement.then_body, lines, level + 1, self_names,
                      send_call)
            if statement.else_body:
                lines.append(f"{pad}else:")
                _py_block(statement.else_body, lines, level + 1,
                          self_names, send_call)
        elif isinstance(statement, asl.While):
            lines.append(f"{pad}while "
                         f"{_py_expr(statement.condition, self_names)}:")
            _py_block(statement.body, lines, level + 1, self_names,
                      send_call)
        elif isinstance(statement, asl.For):
            variable = statement.variable
            lines.append(f"{pad}for {variable} in "
                         f"{_py_expr(statement.iterable, self_names)}:")
            inner_names = self_names - {variable}
            _py_block(statement.body, lines, level + 1, inner_names,
                      send_call)
        elif isinstance(statement, asl.Return):
            if statement.value is None:
                lines.append(pad + "return None")
            else:
                lines.append(f"{pad}return "
                             f"{_py_expr(statement.value, self_names)}")
        elif isinstance(statement, asl.Break):
            lines.append(pad + "break")
        elif isinstance(statement, asl.Continue):
            lines.append(pad + "continue")
        elif isinstance(statement, asl.Send):
            arguments = ", ".join(
                f"{key}={_py_expr(value, self_names)}"
                for key, value in statement.arguments)
            target = "None" if statement.target is None \
                else _py_expr(statement.target, self_names)
            call_args = f"{statement.signal!r}, {target}"
            if arguments:
                call_args += f", {arguments}"
            lines.append(f"{pad}{send_call}({call_args})")
        else:
            raise CodegenError(
                f"cannot translate {type(statement).__name__} to Python")


def _py_assign_target(target: asl.Expr, self_names: set) -> str:
    if isinstance(target, asl.Name):
        if target.identifier in self_names:
            return f"self.{target.identifier}"
        return target.identifier
    if isinstance(target, asl.Attribute):
        base = _py_expr(target.target, self_names)
        return f"{base}[{target.name!r}]"  # ASL attr-assign targets dicts
    if isinstance(target, asl.Index):
        return (f"{_py_expr(target.target, self_names)}"
                f"[{_py_expr(target.key, self_names)}]")
    raise CodegenError("invalid assignment target")


# ---------------------------------------------------------------------------
# C-family / HDL expressions (synthesizable subset)
# ---------------------------------------------------------------------------

_C_BINARY = {
    "and": "&&", "or": "||", "==": "==", "!=": "!=", "<": "<", "<=": "<=",
    ">": ">", ">=": ">=", "+": "+", "-": "-", "*": "*", "/": "/",
    "%": "%",
}

_VHDL_BINARY = {
    "and": "and", "or": "or", "==": "=", "!=": "/=", "<": "<", "<=": "<=",
    ">": ">", ">=": ">=", "+": "+", "-": "-", "*": "*", "/": "/",
    "%": "mod",
}


def _subset_expr(expr: asl.Expr, binary: Dict[str, str],
                 rename: Callable[[str], str],
                 not_op: str, event_prefix: str) -> str:
    if isinstance(expr, asl.Literal):
        value = expr.value
        if value is True:
            return "true" if not_op == "not" else "true"
        if value is False:
            return "false"
        if isinstance(value, (int, float)):
            return str(value)
        raise Untranslatable(f"literal {value!r} is not synthesizable")
    if isinstance(expr, asl.Name):
        return rename(expr.identifier)
    if isinstance(expr, asl.Attribute):
        if isinstance(expr.target, asl.Name) \
                and expr.target.identifier == "event":
            return rename(f"{event_prefix}{expr.name}")
        raise Untranslatable("attribute access is not synthesizable")
    if isinstance(expr, asl.Unary):
        operand = _subset_expr(expr.operand, binary, rename, not_op,
                               event_prefix)
        if expr.op == "not":
            return f"({not_op} {operand})"
        return f"(-{operand})"
    if isinstance(expr, asl.Binary):
        if expr.op == "in":
            raise Untranslatable("'in' is not synthesizable")
        left = _subset_expr(expr.left, binary, rename, not_op, event_prefix)
        right = _subset_expr(expr.right, binary, rename, not_op,
                             event_prefix)
        return f"({left} {binary[expr.op]} {right})"
    raise Untranslatable(
        f"{type(expr).__name__} is outside the synthesizable subset")


def to_c_expression(source: str,
                    rename: Callable[[str], str] = lambda n: n) -> str:
    """Translate an ASL expression to C/SystemC (synthesizable subset)."""
    expr = asl.parse_expression(source)
    return _subset_expr(expr, _C_BINARY, rename, "!", "ev_")


def to_vhdl_expression(source: str,
                       rename: Callable[[str], str] = lambda n: n) -> str:
    """Translate an ASL expression to VHDL (synthesizable subset)."""
    expr = asl.parse_expression(source)
    return _subset_expr(expr, _VHDL_BINARY, rename, "not", "ev_")


def to_verilog_expression(source: str,
                          rename: Callable[[str], str] = lambda n: n) -> str:
    """Translate an ASL expression to Verilog (synthesizable subset)."""
    expr = asl.parse_expression(source)
    return _subset_expr(expr, _C_BINARY, rename, "!", "ev_")


def simple_int_assignments(source: str) -> Optional[List[tuple]]:
    """Extract ``name = <int expr>`` assignments from an effect.

    Returns ``[(name, asl expr)]`` when the whole effect consists only
    of plain-name integer-expression assignments and ``send``
    statements (sends are returned separately by ``collect_sends``);
    None when anything else appears — the HDL backends then emit the
    effect as a comment.
    """
    try:
        program = asl.parse(source)
    except Exception:
        return None
    out: List[tuple] = []
    for statement in program.body:
        if isinstance(statement, asl.Send):
            continue
        if isinstance(statement, asl.Assign) \
                and isinstance(statement.target, asl.Name):
            out.append((statement.target.identifier, statement.value))
            continue
        return None
    return out
