"""Exception hierarchy for the repro (uml2soc) library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base type.  Subsystems raise the most specific
subclass that applies; messages always name the offending element where
one exists.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """A structural operation on the metamodel is invalid.

    Examples: adding an element to two owners, removing a member that is
    not present, or creating an association with fewer than two ends.
    """


class LookupFailed(ModelError, KeyError):
    """A named member was not found in a namespace.

    Inherits from :class:`KeyError` so ``namespace.member(...)`` failures
    behave like mapping lookups for callers that expect that.
    """

    def __str__(self) -> str:  # KeyError quotes its message; undo that.
        return Exception.__str__(self)


class ValidationError(ReproError):
    """A well-formedness rule was violated (raised by strict checks)."""


class ProfileError(ReproError):
    """A stereotype application or profile definition is invalid."""


class StateMachineError(ReproError):
    """A state machine is structurally invalid or cannot be executed."""


class ActivityError(ReproError):
    """An activity graph is structurally invalid or cannot be executed."""


class InteractionError(ReproError):
    """An interaction (sequence diagram) is invalid."""


class AslSyntaxError(ReproError):
    """The ASL source text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column

    def __str__(self) -> str:
        base = super().__str__()
        if self.line:
            return f"{base} (line {self.line}, column {self.column})"
        return base


class AslRuntimeError(ReproError):
    """An ASL program failed during interpretation."""


class XmiError(ReproError):
    """XMI serialization or deserialization failed."""


class TransformError(ReproError):
    """An MDA transformation rule or engine failure."""


class CodegenError(ReproError):
    """A code generator received a model it cannot translate."""


class StoreError(ReproError):
    """The artifact store is misconfigured or an operation is invalid."""


class ServiceError(ReproError):
    """The simulation service refused a request or hit an invalid state.

    Covers admission rejections (full queue, draining daemon), unknown
    job ids, illegal job-lifecycle events and protocol violations on
    the JSONL socket API.
    """


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an invalid state."""


class WatchdogTimeout(SimulationError):
    """The wall-clock watchdog expired before the simulation finished.

    Raised by ``Simulator.run(timeout=...)`` when real elapsed time
    exceeds the budget — the defense against hung IP cores and runaway
    models that make progress in simulated time but never terminate.
    """


class LivelockError(SimulationError):
    """Too many events were processed without simulated time advancing.

    The no-progress heuristic of ``Simulator.run``: an unbounded chain
    of zero-delay events (an event storm or a self-rescheduling loop)
    keeps the kernel busy at one instant forever.
    """


class DeadlockError(SimulationError):
    """The event queue drained while live processes were still blocked.

    With ``detect_deadlock=True``, quiescence while generator processes
    wait on events that can no longer fire is reported instead of being
    silently returned as a finished run.
    """


class QueueOverflowError(SimulationError):
    """The bounded event queue overflowed under the ``raise`` policy."""


class BusError(SimulationError):
    """A bus transaction could not be decoded or completed.

    Carries the offending ``address`` and the requesting ``master``
    (when known) so fault reports can name the exact transaction.
    """

    def __init__(self, message: str, address=None, master=None):
        super().__init__(message)
        self.address = address
        self.master = master


class FaultError(SimulationError):
    """A fault-campaign specification is invalid or cannot be applied."""


class PropertyError(ReproError):
    """A temporal-property specification is invalid.

    Raised when a :mod:`repro.properties` spec cannot be constructed or
    parsed — an unknown kind, a non-positive deadline, an interaction
    whose trace set cannot be enumerated, malformed JSON fields.
    """


class PropertyViolationError(SimulationError):
    """A monitored temporal property was violated.

    Used by the ``on_violation="supervise"`` escalation path: the
    checker hands the failing part to the supervisor with this error,
    so a violation can trigger restore/restart/quarantine exactly like
    a part crash.  Carries ``property_name`` and the violation detail.
    """

    def __init__(self, message: str, property_name: str = "",
                 detail=None):
        super().__init__(message)
        self.property_name = property_name
        self.detail = detail
