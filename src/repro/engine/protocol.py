"""The :class:`ExecutionEngine` protocol: one behavioral substrate.

The paper's Section 4 claim — that UML's behavioral notations share
enough semantic common ground to execute as *one* system — is only
operational if every behavior formalism answers the same small calling
convention.  This protocol is that convention.  Three engines implement
it today:

* :class:`~repro.statemachines.runtime.StateMachineRuntime` — the
  run-to-completion statechart interpreter;
* :class:`~repro.statemachines.flatten.CompiledRuntime` — the
  dispatch-table compiled form of the flat subset;
* :class:`~repro.activities.runtime.ActivityRuntime` — the token-game
  engine for UML 2.0 activities.

The cosimulation harness (:mod:`repro.simulation.cosim`) talks *only*
this protocol: scheduling, fault injection, degradation policies and
checkpoint/restore are engine-agnostic, so a part whose classifier
behavior is an Activity runs under exactly the machinery of a
state-machine part.

The surface:

``start()``
    Enter the initial configuration (initial state entry cascade /
    initial token marking).  Called once; chainable.
``send(name, **parameters)``
    Deliver one named signal occurrence and run to completion (the
    engine's own notion of a step: an RTC step for statecharts, token
    firings to quiescence for activities).
``step(until)``
    Advance the engine-local clock to the *absolute* time ``until``,
    firing any due time triggers on the way.  Idempotent when the
    clock is already at or past ``until``; local clocks never run
    ahead of the caller's.
``active_configuration()``
    A canonical, deterministic tuple of strings naming the current
    configuration (active leaf states / current token marking).
``checkpoint()`` / ``restore(snap)``
    Capture / reinstate the complete execution state — configuration,
    context, timers, queues — such that a checkpoint → perturb →
    restore cycle replays byte-identically.

Required attributes: ``time`` (the engine-local clock, assignable),
``context`` (the variable environment, a mapping) and ``signal_sink``
(callable receiving :class:`~repro.asl.SentSignal`, or None).  Engines
may also carry ``trace_bus``/``trace_part`` (set by the harness) and
emit engine-level :class:`~repro.engine.trace.TraceEvent` records.
"""

from __future__ import annotations

from typing import Any, Dict, Protocol, Tuple, runtime_checkable

#: Methods every execution engine must provide (the checkable surface).
PROTOCOL_METHODS = ("start", "send", "step", "active_configuration",
                    "checkpoint", "restore")

#: Attributes every execution engine must carry.
PROTOCOL_ATTRIBUTES = ("time", "context", "signal_sink")


@runtime_checkable
class ExecutionEngine(Protocol):
    """Structural protocol for a part's behavior engine (see module doc)."""

    time: float

    def start(self) -> "ExecutionEngine":
        """Enter the initial configuration (chainable)."""
        ...

    def send(self, name: str, **parameters: Any) -> "ExecutionEngine":
        """Deliver a named signal occurrence and run to completion."""
        ...

    def step(self, until: float) -> "ExecutionEngine":
        """Advance the local clock to absolute time ``until``."""
        ...

    def active_configuration(self) -> Tuple[str, ...]:
        """Canonical names of the current configuration."""
        ...

    def checkpoint(self) -> Dict[str, Any]:
        """Capture the complete execution state."""
        ...

    def restore(self, snap: Dict[str, Any]) -> None:
        """Reinstate a state captured by :meth:`checkpoint`."""
        ...


def conforms(engine: Any) -> bool:
    """True when ``engine`` structurally satisfies the protocol.

    Checks the callable surface *and* the required data attributes
    (``isinstance`` against a runtime-checkable Protocol only verifies
    methods).
    """
    if not isinstance(engine, ExecutionEngine):
        return False
    return all(hasattr(engine, attribute)
               for attribute in PROTOCOL_ATTRIBUTES)
