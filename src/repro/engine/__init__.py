"""`repro.engine` — the unified execution core (PR 3).

One :class:`ExecutionEngine` protocol spoken by every behavior engine,
one :class:`TraceBus` carrying every observation, one registry binding
behavior types to engines.  See :mod:`repro.engine.protocol` for the
calling convention and :mod:`repro.engine.trace` for the event
vocabulary.
"""

from .batched import BatchedRuntime, BatchGroup
from .protocol import (
    PROTOCOL_ATTRIBUTES,
    PROTOCOL_METHODS,
    ExecutionEngine,
    conforms,
)
from .registry import (
    EngineBinding,
    EngineBuilder,
    EngineFactory,
    build_batched_binding,
    build_engine_factory,
    plan_batch_groups,
    register_engine,
    registered_behavior_types,
    supports,
)
from .trace import (
    CHECKPOINT,
    ENGINE_DEGRADED,
    ENGINE_KINDS,
    EVENT,
    FAULT,
    KINDS,
    MESSAGE_DELIVERED,
    MESSAGE_DROPPED,
    MESSAGE_ROUTED,
    PART_QUARANTINED,
    PART_RESTARTED,
    PART_RESTORED,
    STATE_ENTER,
    STATE_EXIT,
    SUPERVISOR_DECISION,
    TOKEN,
    TRANSITION,
    JsonlTraceWriter,
    Subscription,
    TraceBus,
    TraceEvent,
    TraceRecorder,
    attach_perf_counters,
)

__all__ = [
    "ExecutionEngine",
    "conforms",
    "PROTOCOL_METHODS",
    "PROTOCOL_ATTRIBUTES",
    "BatchGroup",
    "BatchedRuntime",
    "EngineBinding",
    "EngineBuilder",
    "EngineFactory",
    "build_batched_binding",
    "build_engine_factory",
    "plan_batch_groups",
    "register_engine",
    "registered_behavior_types",
    "supports",
    "TraceBus",
    "TraceEvent",
    "Subscription",
    "TraceRecorder",
    "JsonlTraceWriter",
    "attach_perf_counters",
    "EVENT",
    "TRANSITION",
    "STATE_ENTER",
    "STATE_EXIT",
    "TOKEN",
    "MESSAGE_ROUTED",
    "MESSAGE_DELIVERED",
    "MESSAGE_DROPPED",
    "FAULT",
    "PART_QUARANTINED",
    "PART_RESTARTED",
    "PART_RESTORED",
    "SUPERVISOR_DECISION",
    "CHECKPOINT",
    "ENGINE_DEGRADED",
    "ENGINE_KINDS",
    "KINDS",
]
