"""Behavior → engine binding: which engine executes a classifier behavior.

The cosimulation harness used to hard-code ``isinstance(behavior,
StateMachine)`` and pick between the interpreter and the compiled
runtime inline; activities were not executable as part behaviors at
all.  This registry centralizes the binding: each behavior *type* maps
to a builder that inspects the concrete behavior and answers with an
engine label (for the harness's ``compile_report``) plus a zero-arg
factory producing fresh, unstarted engines — the factory is what makes
restart-on-failure and checkpoint campaigns engine-agnostic.

Built-in bindings:

* :class:`~repro.statemachines.kernel.StateMachine` — the
  run-to-completion interpreter, or (with ``prefer_compiled`` and the
  machine inside the compilable subset) the dispatch-table
  :class:`~repro.statemachines.flatten.CompiledRuntime`;
* :class:`~repro.activities.graph.Activity` — the token-game
  :class:`~repro.activities.runtime.ActivityRuntime`.

Additional engines register via :func:`register_engine`; resolution is
most-recently-registered-first, so a custom binding can shadow a
built-in one.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..activities.graph import Activity
from ..activities.runtime import ActivityRuntime
from ..perf import PERF
from ..statemachines.flatten import (
    CompiledRuntime,
    compile_fallback_reason,
    compile_machine_cached,
)
from ..statemachines.kernel import StateMachine
from ..statemachines.runtime import StateMachineRuntime

#: A zero-arg factory producing a fresh, unstarted engine.
EngineFactory = Callable[[], Any]

#: (label for the harness's engine report, factory) — or None when the
#: builder declines the concrete behavior.
EngineBinding = Tuple[str, EngineFactory]

#: builder(behavior, context, signal_sink, prefer_compiled) -> binding.
EngineBuilder = Callable[[Any, Dict[str, Any], Any, bool],
                         Optional[EngineBinding]]


def _build_state_machine(behavior: StateMachine, context: Dict[str, Any],
                         signal_sink: Any,
                         prefer_compiled: bool) -> EngineBinding:
    if prefer_compiled:
        reason = compile_fallback_reason(behavior)
        if reason is None:
            PERF.incr("cosim.compiled_parts")
            compiled = compile_machine_cached(behavior)

            def compiled_factory(_compiled=compiled, _context=context,
                                 _sink=signal_sink) -> CompiledRuntime:
                return CompiledRuntime(_compiled, context=dict(_context),
                                       signal_sink=_sink)
            return "compiled", compiled_factory
        PERF.incr("cosim.interpreted_parts")
        label = f"interpreter: {reason}"
    else:
        label = "interpreter"

    def interpreter_factory(_behavior=behavior, _context=context,
                            _sink=signal_sink) -> StateMachineRuntime:
        return StateMachineRuntime(_behavior, context=dict(_context),
                                   signal_sink=_sink)
    return label, interpreter_factory


def _build_activity(behavior: Activity, context: Dict[str, Any],
                    signal_sink: Any,
                    prefer_compiled: bool) -> EngineBinding:
    PERF.incr("cosim.activity_parts")

    def activity_factory(_behavior=behavior, _context=context,
                         _sink=signal_sink) -> ActivityRuntime:
        return ActivityRuntime(_behavior, context=dict(_context),
                               signal_sink=_sink)
    return "token-engine", activity_factory


def plan_batch_groups(behaviors: Dict[str, Any], batch_min: int = 2,
                      trace_bus: Any = None,
                      ) -> Tuple[Dict[str, Any], Dict[str, str], List[Any]]:
    """Group identical compilable state machines for batched execution.

    ``behaviors`` maps part name → classifier behavior (None allowed),
    in part-declaration order.  Parts sharing one compilable
    :class:`~repro.statemachines.kernel.StateMachine` object — the
    normal shape of a SoC model instantiating an IP block N times —
    are grouped; each group of at least ``batch_min`` members gets one
    :class:`~repro.engine.batched.BatchGroup` over one shared compiled
    dispatch table.

    Returns ``(plan, degraded, groups)``: ``plan`` maps batchable part
    name → its group; ``degraded`` maps every *other* part to a
    human-readable reason it cannot batch (no behavior, not a state
    machine, outside the compilable subset, or population below
    ``batch_min``); ``groups`` lists the created groups in first-member
    order.
    """
    from .batched import BatchGroup
    from ..statemachines.flatten import compile_machine_cached

    populations: Dict[int, List[str]] = {}
    keyed: Dict[int, Any] = {}
    degraded: Dict[str, str] = {}
    for name, behavior in behaviors.items():
        if behavior is None:
            degraded[name] = "no behavior"
            continue
        if not isinstance(behavior, StateMachine):
            degraded[name] = (f"{type(behavior).__name__} behaviors "
                              "run on their own engine")
            continue
        reason = compile_fallback_reason(behavior)
        if reason is not None:
            degraded[name] = reason
            continue
        populations.setdefault(id(behavior), []).append(name)
        keyed[id(behavior)] = behavior
    plan: Dict[str, Any] = {}
    groups: List[Any] = []
    for key, names in populations.items():
        behavior = keyed[key]
        if len(names) < batch_min:
            for name in names:
                degraded[name] = (
                    f"only {len(names)} instance(s) of behavior "
                    f"{behavior.name!r} (batch_min={batch_min})")
            continue
        group = BatchGroup(behavior.name or "batch",
                           compile_machine_cached(behavior),
                           trace_bus=trace_bus)
        groups.append(group)
        for name in names:
            plan[name] = group
    return plan, degraded, groups


def build_batched_binding(group: Any, part_name: str,
                          context: Dict[str, Any],
                          signal_sink: Any) -> EngineBinding:
    """Bind one part to a lane of a :class:`~repro.engine.batched.BatchGroup`.

    The fourth engine label, ``"batched"``.  Unlike the other builders
    this one is not type-dispatched through :data:`_BUILDERS` — batching
    is a *population* decision (the harness groups identical compilable
    state machines and asks for a lane per member), not a property of a
    single behavior.  The returned factory implements the restart
    policy: it resets the member's lane to a pristine unstarted state
    and hands back the same protocol view, so the harness's
    engine-agnostic restart path works unchanged.
    """
    PERF.incr("cosim.batched_parts")
    view = group.add_member(part_name, context, signal_sink)

    def batched_factory(_view=view):
        return _view.reset()
    return "batched", batched_factory


#: (behavior type, builder), most-recently-registered first.
_BUILDERS: List[Tuple[type, EngineBuilder]] = [
    (Activity, _build_activity),
    (StateMachine, _build_state_machine),
]


def register_engine(behavior_type: type, builder: EngineBuilder) -> None:
    """Bind ``behavior_type`` to ``builder`` (shadows earlier bindings)."""
    _BUILDERS.insert(0, (behavior_type, builder))


def registered_behavior_types() -> Tuple[type, ...]:
    """The behavior types with a registered engine, resolution order."""
    return tuple(behavior_type for behavior_type, _builder in _BUILDERS)


def supports(behavior: Any) -> bool:
    """True when some registered builder covers this behavior's type."""
    return any(isinstance(behavior, behavior_type)
               for behavior_type, _builder in _BUILDERS)


def build_engine_factory(behavior: Any, *,
                         context: Optional[Dict[str, Any]] = None,
                         signal_sink: Any = None,
                         prefer_compiled: bool = False,
                         ) -> Optional[EngineBinding]:
    """Resolve ``behavior`` to ``(label, factory)``, or None.

    ``context`` seeds each fresh engine's variable environment (copied
    per factory call), ``signal_sink`` receives outbound signals, and
    ``prefer_compiled`` asks for the fast path where one exists (the
    label records the decision: ``"compiled"``, ``"interpreter"``,
    ``"interpreter: <reason>"``, ``"token-engine"``).
    """
    for behavior_type, builder in _BUILDERS:
        if isinstance(behavior, behavior_type):
            binding = builder(behavior, dict(context or {}), signal_sink,
                              prefer_compiled)
            if binding is not None:
                return binding
    return None
