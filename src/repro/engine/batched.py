"""Batched execution: N identical parts behind one dispatch table.

The compiled engine (PR 1) removed interpretation overhead from a
single state machine; this module removes *per-instance* overhead from
a population of identical ones.  A :class:`BatchGroup` owns one
:class:`~repro.statemachines.soa.SoaLanes` — structure-of-arrays state
for N lanes sharing one compiled machine — and hands out
:class:`BatchedRuntime` views, one per part.  Each view satisfies the
:class:`~repro.engine.protocol.ExecutionEngine` protocol (``start`` /
``send`` / ``step`` / ``active_configuration`` / ``checkpoint`` /
``restore`` plus the ``time``/``context``/``signal_sink`` attributes),
so the cosimulation harness drives a batched part exactly as it drives
an interpreted or compiled one — fault injection, quarantine, restart
and restore policies included.

What makes the batch faster than N independent runtimes is not the
view (a view op costs about the same as a ``CompiledRuntime`` op) but
the *batch-level* entry points the harness can use when it knows all
members are healthy:

* ``min_due()`` — one C-level ``min`` over the next-timer-deadline
  array answers "does any lane have work before t?" for the whole
  population, letting the per-quantum sync loop skip N no-op
  ``step()`` calls;
* fused delivery — the harness coalesces same-timestamp deliveries to
  group members into one run (see ``SystemSimulation._drain_run``) and
  sweeps them in a single loop with the lookup chain hoisted, instead
  of one scheduler callback + closure per message.

Lockstep guarantee: a batched run produces byte-identical trace
streams, reports and checkpoints to a serial compiled (and therefore
interpreted) run of the same model — the lane operations execute the
same closures in the same order.  ``tests/test_batched_lockstep.py``
pins this.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..statemachines.events import EventOccurrence
from ..statemachines.flatten import CompiledMachine
from ..statemachines.soa import SoaLanes

_INF = float("inf")


class BatchGroup:
    """All lanes of one compiled machine, plus fused-delivery bookkeeping.

    The ``_runs``/``_open_*`` fields implement order-preserving
    coalescing for the harness's fused delivery path: an *open run* is
    the most recently scheduled delivery bucket for this group; a new
    message may join it only while (a) it is scheduled for the same
    timestamp and (b) no other scheduler event has been interleaved
    since the bucket's last append (tracked by the kernel's sequence
    counter).  Under those two conditions a serial run would process
    the bucket's messages back-to-back anyway, so coalescing cannot
    reorder anything observable.
    """

    __slots__ = ("name", "lanes", "members", "_runs", "_next_rid",
                 "_open_t", "_open_rid", "_open_seq")

    def __init__(self, name: str, compiled: CompiledMachine,
                 trace_bus: Any = None):
        #: group label (the shared behavior's name), for diagnostics
        self.name = name
        self.lanes = SoaLanes(compiled, trace_bus=trace_bus)
        self.members: List["BatchedRuntime"] = []
        #: open delivery runs: rid -> list of pending message tuples
        self._runs: Dict[int, List[Any]] = {}
        self._next_rid = 0
        self._open_t = -1.0
        self._open_rid = -1
        self._open_seq = -1

    def add_member(self, part_name: str,
                   context: Optional[Dict[str, Any]],
                   sink: Optional[Callable]) -> "BatchedRuntime":
        """Claim a fresh lane for ``part_name`` and return its view."""
        lane = self.lanes.add_lane(context, sink, part_name)
        view = BatchedRuntime(self, lane)
        self.members.append(view)
        return view

    @property
    def width(self) -> int:
        return self.lanes.width

    # -- batch-level fast paths (quantum sync) ----------------------------

    def min_due(self) -> float:
        return self.lanes.min_due()

    def bulk_clock(self, now: float) -> None:
        self.lanes.bulk_clock(now)

    # -- fused-delivery run registry --------------------------------------

    def open_run(self, t: float, seq: int) -> int:
        """Start a new delivery run at timestamp ``t``; returns its id."""
        rid = self._next_rid
        self._next_rid = rid + 1
        self._runs[rid] = []
        self._open_t = t
        self._open_rid = rid
        self._open_seq = seq
        return rid

    def close_run(self, rid: int) -> None:
        """Drop a drained run and invalidate the open pointer if it
        still references it."""
        self._runs.pop(rid, None)
        if self._open_rid == rid:
            self._open_rid = -1
            self._open_seq = -1

    def checkpoint_runs(self) -> Dict[str, Any]:
        """Pending fused-delivery buckets (part of a full checkpoint)."""
        return {
            "runs": {rid: list(run) for rid, run in self._runs.items()},
            "next_rid": self._next_rid,
            "open_t": self._open_t,
            "open_rid": self._open_rid,
            "open_seq": self._open_seq,
        }

    def restore_runs(self, snap: Dict[str, Any]) -> None:
        self._runs = {rid: list(run)
                      for rid, run in snap["runs"].items()}
        self._next_rid = snap["next_rid"]
        self._open_t = snap["open_t"]
        self._open_rid = snap["open_rid"]
        self._open_seq = snap["open_seq"]

    def __repr__(self) -> str:
        return f"<BatchGroup {self.name!r} lanes={self.lanes.width}>"


class BatchedRuntime:
    """One part's protocol view onto a :class:`BatchGroup` lane.

    Mirrors the :class:`~repro.statemachines.flatten.CompiledRuntime`
    surface (including the convenience aliases the test suites use)
    but stores nothing itself: every attribute resolves into the
    group's parallel arrays, so the view stays valid across
    checkpoint/restore and restart cycles.
    """

    __slots__ = ("group", "lane", "_lanes")

    def __init__(self, group: BatchGroup, lane: int):
        self.group = group
        self.lane = lane
        self._lanes = group.lanes

    # -- protocol attributes (lane-slot accessors) ------------------------

    @property
    def time(self) -> float:
        return self._lanes.clock[self.lane]

    @time.setter
    def time(self, value: float) -> None:
        self._lanes.clock[self.lane] = value

    @property
    def context(self) -> Dict[str, Any]:
        return self._lanes.contexts[self.lane]

    @context.setter
    def context(self, value: Dict[str, Any]) -> None:
        self._lanes.contexts[self.lane] = value

    @property
    def signal_sink(self) -> Optional[Callable]:
        return self._lanes.sinks[self.lane]

    @signal_sink.setter
    def signal_sink(self, value: Optional[Callable]) -> None:
        self._lanes.sinks[self.lane] = value

    @property
    def is_terminated(self) -> bool:
        return self._lanes.terminated[self.lane]

    @is_terminated.setter
    def is_terminated(self, value: bool) -> None:
        self._lanes.terminated[self.lane] = value

    @property
    def trace_bus(self) -> Any:
        return self._lanes.trace_bus

    @trace_bus.setter
    def trace_bus(self, bus: Any) -> None:
        # group-wide: every lane of a batch traces to the same bus
        self._lanes.trace_bus = bus

    @property
    def trace_part(self) -> str:
        return self._lanes.parts[self.lane]

    @trace_part.setter
    def trace_part(self, name: str) -> None:
        self._lanes.parts[self.lane] = name

    # -- protocol methods --------------------------------------------------

    def start(self) -> "BatchedRuntime":
        """Enter the initial configuration (chainable)."""
        self._lanes.start_lane(self.lane)
        return self

    def send(self, name: str, **parameters: Any) -> "BatchedRuntime":
        """Deliver a signal occurrence and run to completion."""
        self._lanes.send_lane(self.lane, name, parameters)
        return self

    def call(self, name: str, **parameters: Any) -> "BatchedRuntime":
        """Deliver a call occurrence and run to completion."""
        self._lanes.dispatch_lane(
            self.lane, EventOccurrence.call(name, **parameters))
        return self

    def dispatch(self, occurrence: EventOccurrence) -> "BatchedRuntime":
        self._lanes.dispatch_lane(self.lane, occurrence)
        return self

    def step(self, until: float) -> "BatchedRuntime":
        """Advance to *absolute* time ``until`` (idempotent past it)."""
        self._lanes.advance_lane(self.lane, until)
        return self

    def advance_time(self, delta: float) -> "BatchedRuntime":
        """Relative-clock alias of :meth:`step`."""
        self._lanes.advance_lane(self.lane,
                                 self._lanes.clock[self.lane] + delta)
        return self

    def active_configuration(self) -> Tuple[str, ...]:
        return self._lanes.active_lane_names(self.lane)

    def active_leaf_names(self) -> Tuple[str, ...]:
        return self._lanes.active_lane_names(self.lane)

    def active_state_names(self) -> Tuple[str, ...]:
        return self._lanes.active_lane_names(self.lane)

    def in_state(self, name: str) -> bool:
        names = self._lanes.active_lane_names(self.lane)
        return bool(names) and names[0] == name

    def checkpoint(self) -> Dict[str, Any]:
        return self._lanes.checkpoint_lane(self.lane)

    def snapshot(self) -> Dict[str, Any]:
        return self._lanes.checkpoint_lane(self.lane)

    def restore(self, snap: Dict[str, Any]) -> None:
        self._lanes.restore_lane(self.lane, snap)

    def reset(self) -> "BatchedRuntime":
        """Back to a pristine unstarted lane (the restart path)."""
        self._lanes.reset_lane(self.lane)
        return self

    def __repr__(self) -> str:
        names = self._lanes.active_lane_names(self.lane)
        state = names[0] if names else "(unstarted)"
        return (f"<BatchedRuntime {self._lanes.parts[self.lane]!r} "
                f"lane={self.lane} state={state} t={self.time}>")
