"""Typed execution tracing: :class:`TraceEvent` records on a :class:`TraceBus`.

The unified execution core (PR 3) replaces the per-channel observation
hooks that had accreted around the three engines — cosimulation message
logs, the interactions observer, ``repro.perf`` cosim counters and the
fault/resilience accounting — with **one** publish/subscribe stream of
typed records.  Every engine (interpreted state machines, compiled
dispatch tables, the activities token game) and the cosimulation
harness emit the same vocabulary of events, stamped with *simulated*
time and a stable per-bus ordinal, so

* sequence-diagram extraction, fault accounting and perf counting are
  plain subscribers that work identically for every engine, and
* determinism is checkable byte-for-byte: two runs (or the interpreted
  and compiled engine over the same model and seed) must produce
  identical serialized streams.

Performance contract: an emit with no subscriber for its kind is one
dict lookup and a return.  The high-frequency *engine-level* kinds
(event dispatched, transition fired, state entered/exited, token moved)
are additionally gated at the call site by :attr:`TraceBus.engine_active`,
a plain attribute maintained on (un)subscribe — so a bus that only
carries message/fault subscribers (the cosimulation default) costs the
engines a single attribute check per run-to-completion step.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import SimulationError

# ---------------------------------------------------------------------------
# The event vocabulary.
#
# NOTE: the engine modules (statemachines.runtime, statemachines.flatten,
# activities.engine) emit these kinds as literal strings to stay free of
# any import on this package; test_trace_bus pins the literals to these
# constants so they cannot drift apart.
# ---------------------------------------------------------------------------

#: An engine dequeued one event occurrence for a run-to-completion step.
EVENT = "event"
#: A transition fired (source, target, triggering event).
TRANSITION = "transition"
#: A state became active (before its entry action runs).
STATE_ENTER = "state_enter"
#: A state was exited (after its exit action ran).
STATE_EXIT = "state_exit"
#: An activity node fired, moving tokens (node, variant).
TOKEN = "token"
#: The harness routed a signal out of a part's port.
MESSAGE_ROUTED = "message_routed"
#: The harness delivered a signal into a part.
MESSAGE_DELIVERED = "message_delivered"
#: The harness dropped a signal (unrouted port, quarantined part, ...).
MESSAGE_DROPPED = "message_dropped"
#: The fault injector fired a campaign spec on a routed signal.
FAULT = "fault"
#: The degradation policy quarantined a part.
PART_QUARANTINED = "part_quarantined"
#: The degradation policy restarted a part.
PART_RESTARTED = "part_restarted"
#: The recovery machinery rolled a part back to its last snapshot.
PART_RESTORED = "part_restored"
#: The supervisor chose a recovery action for a failing part.
SUPERVISOR_DECISION = "supervisor_decision"
#: The harness took a periodic per-part recovery checkpoint.
CHECKPOINT = "checkpoint"
#: A part requested one engine tier but fell back to another (e.g. the
#: batched SoA engine degrading to compiled/interpreted for a part with
#: no identical peers) — degradation is observable, never silent.
ENGINE_DEGRADED = "engine_degraded"
#: The online property checker detected a temporal-assertion violation.
#: Emitted by :class:`repro.properties.PropertyChecker` as a nested
#: event immediately after the witnessing record (or at finalization
#: for deadline/liveness expiries), so post-mortems carry the violation
#: in stream position.
PROPERTY_VIOLATION = "property_violation"

#: High-frequency kinds emitted from inside the engines; call sites gate
#: these on :attr:`TraceBus.engine_active`.
ENGINE_KINDS = (EVENT, TRANSITION, STATE_ENTER, STATE_EXIT, TOKEN)

#: Every kind the bus knows, in a stable order (wildcard subscriptions
#: expand to exactly this tuple).
KINDS = ENGINE_KINDS + (MESSAGE_ROUTED, MESSAGE_DELIVERED, MESSAGE_DROPPED,
                        FAULT, PART_QUARANTINED, PART_RESTARTED,
                        PART_RESTORED, SUPERVISOR_DECISION, CHECKPOINT,
                        ENGINE_DEGRADED, PROPERTY_VIOLATION)

_ENGINE_KIND_SET = frozenset(ENGINE_KINDS)
_KIND_SET = frozenset(KINDS)


class TraceEvent:
    """One typed observation: what happened, where, and when.

    ``ordinal`` is the bus-assigned sequence number (1-based, gapless
    over the emitted stream), ``t`` the *simulated* time stamp, ``part``
    the part name (or ``""`` for harness-level events without one) and
    ``data`` the kind-specific payload.  Events are value objects:
    equality and hashing follow :meth:`to_dict`.
    """

    __slots__ = ("ordinal", "t", "kind", "part", "data")

    def __init__(self, ordinal: int, t: float, kind: str, part: str,
                 data: Dict[str, Any]):
        self.ordinal = ordinal
        self.t = t
        self.kind = kind
        self.part = part
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (stable key order: identity, then payload)."""
        record: Dict[str, Any] = {
            "ordinal": self.ordinal, "t": self.t, "kind": self.kind,
            "part": self.part,
        }
        for key in sorted(self.data):
            record[key] = self.data[key]
        return record

    def to_json(self) -> str:
        """One compact JSON line (the ``--trace`` stream format)."""
        return json.dumps(self.to_dict(), separators=(",", ":"),
                          default=str)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (self.ordinal == other.ordinal and self.t == other.t
                and self.kind == other.kind and self.part == other.part
                and self.data == other.data)

    def __hash__(self) -> int:
        return hash((self.ordinal, self.t, self.kind, self.part))

    def __repr__(self) -> str:
        return (f"<TraceEvent #{self.ordinal} t={self.t} {self.kind} "
                f"{self.part!r} {self.data!r}>")


class Subscription:
    """Handle returned by :meth:`TraceBus.subscribe`; call :meth:`cancel`
    (or use it as a context manager) to detach."""

    __slots__ = ("bus", "callback", "kinds", "active")

    def __init__(self, bus: "TraceBus", callback: Callable[[TraceEvent], None],
                 kinds: Tuple[str, ...]):
        self.bus = bus
        self.callback = callback
        self.kinds = kinds
        self.active = True

    def cancel(self) -> None:
        """Detach the subscriber (idempotent)."""
        if self.active:
            self.active = False
            self.bus._detach(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        self.cancel()
        return False


class TraceBus:
    """Publish/subscribe hub for :class:`TraceEvent` records.

    Subscribers declare the kinds they want; ``emit`` resolves the
    kind's subscriber tuple with one dict lookup and returns immediately
    when it is empty.  Ordinals are assigned only to *emitted* events
    (those with at least one subscriber), monotonically from 1, and are
    checkpointable so a checkpoint → run → restore → replay cycle
    reproduces the identical stream.
    """

    def __init__(self) -> None:
        self._by_kind: Dict[str, Tuple[Callable[[TraceEvent], None], ...]] = {}
        self._subscriptions: List[Subscription] = []
        self._ordinal = 0
        #: True when any subscriber wants an engine-level kind; engines
        #: check this attribute before building their event payloads.
        self.engine_active = False
        #: The kinds with at least one subscriber; hot emit sites test
        #: ``kind in bus.active_kinds`` before building a payload dict,
        #: so an unobserved kind costs one set-membership check.
        self.active_kinds: frozenset = frozenset()
        #: Causal provenance (PR 9).  ``cause`` is a register the
        #: engines and the harness point at the ordinal of the record
        #: that *caused* whatever is emitted next (delivery -> event,
        #: event -> transition, transition -> exit/effect/enter, ...);
        #: while ``causal`` is on, :meth:`emit` stamps the register into
        #: each payload as an optional ``cause`` field.  Off by default
        #: so the unobserved hot path pays nothing.
        self.causal = False
        self.cause: Optional[int] = None

    # -- subscription ------------------------------------------------------

    def subscribe(self, callback: Callable[[TraceEvent], None],
                  kinds: Optional[Iterable[str]] = None) -> Subscription:
        """Attach ``callback`` for ``kinds`` (default: every kind).

        Returns a :class:`Subscription`; callbacks fire synchronously,
        in subscription order, at the emit site.
        """
        wanted = KINDS if kinds is None else tuple(kinds)
        for kind in wanted:
            if kind not in _KIND_SET:
                raise SimulationError(
                    f"unknown trace kind {kind!r}; choose from {KINDS}")
        subscription = Subscription(self, callback, wanted)
        self._subscriptions.append(subscription)
        self._rebuild()
        return subscription

    def _detach(self, subscription: Subscription) -> None:
        self._subscriptions = [s for s in self._subscriptions
                               if s is not subscription]
        self._rebuild()

    def _rebuild(self) -> None:
        by_kind: Dict[str, List[Callable[[TraceEvent], None]]] = {}
        for subscription in self._subscriptions:
            for kind in subscription.kinds:
                by_kind.setdefault(kind, []).append(subscription.callback)
        self._by_kind = {kind: tuple(callbacks)
                         for kind, callbacks in by_kind.items()}
        self.engine_active = any(kind in _ENGINE_KIND_SET
                                 for kind in self._by_kind)
        self.active_kinds = frozenset(self._by_kind)

    @property
    def subscriber_count(self) -> int:
        """Number of attached subscriptions."""
        return len(self._subscriptions)

    # -- emission ----------------------------------------------------------

    def emit(self, kind: str, t: float, part: str,
             data: Dict[str, Any]) -> Optional[TraceEvent]:
        """Publish one event; returns it, or None when nobody listens.

        A subscriber that raises is *detached* (with a warning and a
        ``trace.subscriber_errors`` perf count) rather than allowed to
        kill the simulation: observation must never change the outcome
        of the thing being observed.  The remaining subscribers still
        receive the event.
        """
        callbacks = self._by_kind.get(kind)
        if not callbacks:
            return None
        self._ordinal += 1
        if self.causal and self.cause is not None and "cause" not in data:
            data["cause"] = self.cause
        event = TraceEvent(self._ordinal, t, kind, part, data)
        for callback in callbacks:
            try:
                callback(event)
            except Exception as error:  # noqa: BLE001 - observer fault
                self._subscriber_failed(callback, event, error)
        return event

    def _subscriber_failed(self, callback: Callable[[TraceEvent], None],
                           event: TraceEvent, error: BaseException) -> None:
        """Detach a raising subscriber; the simulation keeps running."""
        import warnings

        from ..perf import PERF

        for subscription in [s for s in self._subscriptions
                             if s.callback is callback]:
            subscription.cancel()
        PERF.incr("trace.subscriber_errors")
        warnings.warn(
            f"trace subscriber {callback!r} raised "
            f"{type(error).__name__}: {error} on {event.kind!r} event "
            f"#{event.ordinal}; subscriber detached",
            RuntimeWarning, stacklevel=3)

    @property
    def events_emitted(self) -> int:
        """Ordinal of the last emitted event (0 when none)."""
        return self._ordinal

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Capture the ordinal counter and the causal register
        (subscribers are not state)."""
        return {"ordinal": self._ordinal, "cause": self.cause}

    def restore(self, snap: Dict[str, Any]) -> None:
        """Rewind the ordinal counter (and causal register) to a
        checkpointed value."""
        self._ordinal = snap["ordinal"]
        self.cause = snap.get("cause")

    def __repr__(self) -> str:
        return (f"<TraceBus subscribers={len(self._subscriptions)} "
                f"emitted={self._ordinal}>")


# ---------------------------------------------------------------------------
# Stock subscribers
# ---------------------------------------------------------------------------


class TraceRecorder:
    """Collects every received event in :attr:`events` (test/analysis aid)."""

    def __init__(self, bus: Optional[TraceBus] = None,
                 kinds: Optional[Iterable[str]] = None):
        self.events: List[TraceEvent] = []
        self.subscription: Optional[Subscription] = None
        if bus is not None:
            self.subscription = bus.subscribe(self, kinds=kinds)

    def __call__(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """The recorded events of one kind, in emission order."""
        return [event for event in self.events if event.kind == kind]

    def to_jsonl(self) -> str:
        """The whole recording as JSON Lines (byte-comparable)."""
        return "\n".join(event.to_json() for event in self.events)

    def clear(self) -> None:
        self.events.clear()


class JsonlTraceWriter:
    """Streams each event as one JSON line into a writable text stream."""

    def __init__(self, stream, bus: Optional[TraceBus] = None,
                 kinds: Optional[Iterable[str]] = None):
        self.stream = stream
        self.lines_written = 0
        self.subscription: Optional[Subscription] = None
        if bus is not None:
            self.subscription = bus.subscribe(self, kinds=kinds)

    def __call__(self, event: TraceEvent) -> None:
        self.stream.write(event.to_json())
        self.stream.write("\n")
        self.lines_written += 1


def attach_perf_counters(bus: TraceBus, prefix: str = "trace",
                         kinds: Optional[Iterable[str]] = None) -> Subscription:
    """Count emitted events into :data:`repro.perf.PERF` per kind.

    Each event bumps ``<prefix>.<kind>`` — the cosim counters that used
    to be hand-maintained inside the harness, now just one subscriber.
    """
    from ..perf import PERF

    def count(event: TraceEvent) -> None:
        PERF.incr(f"{prefix}.{event.kind}")

    return bus.subscribe(count, kinds=kinds)
