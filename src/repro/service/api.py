"""The service's wire surface: JSONL over a local Unix socket.

One request is one JSON object on one line; one response is one JSON
object on one line.  Every response carries ``"ok"``: ``true`` with the
operation's payload, or ``false`` with an ``"error"`` string — client
errors (unknown job, full queue, draining) never kill the daemon, they
travel back as refusals.

Operations::

    {"op": "ping"}                        -> {"ok": true, "pong": true}
    {"op": "submit", "spec": {...}}       -> {"ok": true, "job": {...}}
    {"op": "status"}                      -> {"ok": true, "status": {...}}
    {"op": "status", "job_id": "..."}     -> {"ok": true, "job": {...}}
    {"op": "result", "job_id": "..."}     -> {"ok": true, "payload": {...}}
    {"op": "cancel", "job_id": "..."}     -> {"ok": true, "job": {...}}
    {"op": "stats"}                       -> {"ok": true, "stats": {...}}
    {"op": "metrics"}                     -> {"ok": true, "text": "..."}
    {"op": "drain"}                       -> {"ok": true, "draining": true}

The server is a single-threaded :mod:`selectors` loop that multiplexes
client sockets *and* the daemon's scheduler: every pass through the
loop also runs :meth:`~repro.service.daemon.SimulationService.tick`,
so the queue makes progress whether or not anyone is connected.  A
Unix socket (filesystem permissions as access control, no TCP port to
squat) matches the ``repro`` CLI's local-first posture.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import time
from typing import Any, Callable, Dict, Optional

from ..errors import ReproError, ServiceError
from ..observability.metrics import to_prometheus
from ..perf import PERF
from .daemon import SimulationService
from .jobstore import canonical_json

#: Largest accepted request line (a spec is small; a megabyte is ample).
MAX_REQUEST_BYTES = 1 << 20


class _Connection:
    __slots__ = ("sock", "buffer", "outbox")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.buffer = b""
        self.outbox = b""


class ServiceServer:
    """Bind the daemon to a Unix socket and pump both until drained."""

    def __init__(self, service: SimulationService, socket_path: str):
        self.service = service
        self.socket_path = socket_path
        self._selector = selectors.DefaultSelector()
        self._listener: Optional[socket.socket] = None
        self._stop = False

    # -- lifecycle -------------------------------------------------------

    def bind(self) -> None:
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.setblocking(False)
        listener.bind(self.socket_path)
        listener.listen(16)
        self._listener = listener
        self._selector.register(listener, selectors.EVENT_READ, None)

    def close(self) -> None:
        for key in list(self._selector.get_map().values()):
            try:
                self._selector.unregister(key.fileobj)
                key.fileobj.close()
            except (OSError, KeyError, ValueError):
                pass
        self._listener = None
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    def request_stop(self) -> None:
        """Begin a graceful drain (idempotent; signal-handler-safe)."""
        self._stop = True
        self.service.drain()

    def serve_forever(self, poll: float = 0.05,
                      on_tick: Optional[Callable[[], None]] = None) -> None:
        """Run until told to stop *and* every leased job settled.

        On SIGTERM/SIGINT the CLI calls :meth:`request_stop`: admission
        closes immediately, leased work runs to completion, queued work
        stays journaled for the next boot, and the final snapshot makes
        the next recovery a single file read.
        """
        if self._listener is None:
            self.bind()
        try:
            while True:
                self._pump(poll)
                self.service.tick()
                if on_tick is not None:
                    on_tick()
                if self._stop and not self.service.leases:
                    break
        finally:
            self.service.shutdown()
            self.close()

    # -- socket plumbing -------------------------------------------------

    def _pump(self, poll: float) -> None:
        for key, mask in self._selector.select(timeout=poll):
            if key.data is None:
                self._accept()
            else:
                connection = key.data
                if mask & selectors.EVENT_READ:
                    self._read(connection)
                if mask & selectors.EVENT_WRITE:
                    self._write(connection)

    def _accept(self) -> None:
        if self._listener is None:
            return
        try:
            sock, _ = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        connection = _Connection(sock)
        self._selector.register(
            sock, selectors.EVENT_READ | selectors.EVENT_WRITE, connection)

    def _drop(self, connection: _Connection) -> None:
        try:
            self._selector.unregister(connection.sock)
        except (KeyError, ValueError):
            pass
        try:
            connection.sock.close()
        except OSError:
            pass

    def _read(self, connection: _Connection) -> None:
        try:
            chunk = connection.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._drop(connection)
            return
        if not chunk:
            if not connection.outbox:
                self._drop(connection)
            return
        connection.buffer += chunk
        if len(connection.buffer) > MAX_REQUEST_BYTES:
            connection.outbox += self._encode(
                {"ok": False, "error": "request too large"})
            connection.buffer = b""
            self._write(connection)
            self._drop(connection)
            return
        while b"\n" in connection.buffer:
            line, connection.buffer = connection.buffer.split(b"\n", 1)
            if line.strip():
                response = self.handle_line(line)
                connection.outbox += self._encode(response)
        self._write(connection)

    def _write(self, connection: _Connection) -> None:
        if not connection.outbox:
            return
        try:
            sent = connection.sock.send(connection.outbox)
            connection.outbox = connection.outbox[sent:]
        except BlockingIOError:
            pass
        except OSError:
            self._drop(connection)

    @staticmethod
    def _encode(response: Dict[str, Any]) -> bytes:
        return (canonical_json(response) + "\n").encode("utf-8")

    # -- request dispatch -------------------------------------------------

    def handle_line(self, line: bytes) -> Dict[str, Any]:
        """Decode, dispatch, and package one request (never raises)."""
        try:
            request = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            PERF.incr("service.bad_requests")
            return {"ok": False, "error": f"request is not JSON: {error}"}
        if not isinstance(request, dict):
            PERF.incr("service.bad_requests")
            return {"ok": False, "error": "request must be a JSON object"}
        try:
            return self.handle(request)
        except ServiceError as error:
            return {"ok": False, "error": str(error)}
        except ReproError as error:
            return {"ok": False,
                    "error": f"{type(error).__name__}: {error}"}
        except Exception as error:  # noqa: BLE001 - daemon must survive
            PERF.incr("service.internal_errors")
            return {"ok": False,
                    "error": f"internal error: "
                             f"{type(error).__name__}: {error}"}

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        service = self.service
        if op == "ping":
            return {"ok": True, "pong": True,
                    "draining": service.draining}
        if op == "submit":
            spec = request.get("spec")
            if not isinstance(spec, dict):
                raise ServiceError("submit needs a 'spec' object")
            return {"ok": True, "job": service.submit(spec)}
        if op == "status":
            job_id = request.get("job_id")
            if job_id is None:
                return {"ok": True, "status": service.status()}
            return {"ok": True, "job": service.status(str(job_id))}
        if op == "result":
            job_id = request.get("job_id")
            if not job_id:
                raise ServiceError("result needs a 'job_id'")
            return {"ok": True,
                    "payload": service.result(str(job_id))}
        if op == "cancel":
            job_id = request.get("job_id")
            if not job_id:
                raise ServiceError("cancel needs a 'job_id'")
            return {"ok": True, "job": service.cancel(str(job_id))}
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        if op == "metrics":
            return {"ok": True, "text": to_prometheus(PERF.snapshot())}
        if op == "drain":
            self.request_stop()
            return {"ok": True, "draining": True}
        raise ServiceError(f"unknown operation {op!r}")


class ServiceClient:
    """Blocking JSONL client: one connection per request.

    Per-request connections keep the client stateless and immune to the
    daemon restarting between calls — exactly the property a
    crash-recoverable service should hand its callers.
    """

    def __init__(self, socket_path: str, timeout: float = 30.0):
        self.socket_path = socket_path
        self.timeout = timeout

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One round-trip; raises :class:`ServiceError` on refusal."""
        body = dict(fields, op=op)
        try:
            with socket.socket(socket.AF_UNIX,
                               socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
                sock.sendall(
                    (canonical_json(body) + "\n").encode("utf-8"))
                chunks = b""
                while not chunks.endswith(b"\n"):
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks += chunk
        except OSError as error:
            raise ServiceError(
                f"cannot reach service at {self.socket_path}: {error}")
        if not chunks.strip():
            raise ServiceError(
                f"service at {self.socket_path} closed the connection "
                f"without answering")
        try:
            response = json.loads(chunks.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ServiceError(f"malformed service response: {error}")
        if not response.get("ok"):
            raise ServiceError(response.get("error", "request refused"))
        return response

    # -- convenience verbs ----------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("submit", spec=spec)["job"]

    def status(self, job_id: Optional[str] = None) -> Dict[str, Any]:
        if job_id is None:
            return self.request("status")["status"]
        return self.request("status", job_id=job_id)["job"]

    def result(self, job_id: str) -> Dict[str, Any]:
        return self.request("result", job_id=job_id)["payload"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("cancel", job_id=job_id)["job"]

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def metrics(self) -> str:
        return self.request("metrics")["text"]

    def drain(self) -> None:
        self.request("drain")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Block until the job is terminal; return its final status."""
        deadline = time.monotonic() + timeout
        while True:
            row = self.status(job_id)
            if row["state"] in ("done", "failed", "cancelled",
                                "quarantined"):
                return row
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout}s waiting for "
                    f"{job_id} (state {row['state']!r})")
            time.sleep(poll)
