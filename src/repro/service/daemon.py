"""The fault-tolerant simulation service daemon.

``SimulationService`` wraps :func:`~repro.faults.run_campaign` behind a
durable, crash-recoverable job queue:

* every accepted job's state changes are journaled *before* the daemon
  acts on them (:mod:`~repro.service.jobstore`), so a SIGKILL of the
  daemon at any instant is recoverable by replay;
* each job's lifecycle is an instance of our own
  :class:`~repro.service.lifecycle.JobLifecycle` state machine —
  illegal transitions are structurally impossible;
* jobs execute in forked worker processes holding **time-bounded
  leases**: heartbeats over the PR 9 pipe protocol renew the lease, a
  silent or dead worker expires it, and an expired lease requeues the
  job with deterministic seeded backoff
  (:func:`~repro.faults.runner.backoff_delay`) until its budget runs
  out — then the job is quarantined as poison instead of wedging the
  pool forever;
* a per-job wall-clock watchdog bounds even a worker that heartbeats
  while making no progress;
* admission control keeps the queue bounded: beyond ``max_depth`` the
  daemon rejects (or, with ``admission="shed"``, cancels the oldest
  queued job to admit the new one);
* results dedupe by the content-addressed ``(model, campaign, seeds)``
  fingerprint: a published payload is stored in the PR 8
  :class:`~repro.store.ArtifactStore` (kind ``result``), and an
  identical later submission is served from it byte-identically
  (``hit`` transition) instead of re-simulated;
* SIGTERM drains gracefully: stop admitting, finish leased work,
  snapshot, exit 0.  Queued-but-unleased jobs persist and resume on
  the next boot.

Everything observable flows through :data:`~repro.perf.PERF`
(``service.*`` counters, the ``service.queue_depth`` gauge series and
the ``service.submit_to_result_s`` latency histogram), so the existing
``stats``/Prometheus surface covers the service for free.
"""

from __future__ import annotations

import json
import os
import signal
import time
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ServiceError
from ..faults.runner import CampaignSpec, _make_context, backoff_delay
from ..observability.campaign import WorkerHeartbeat
from ..perf import PERF
from .jobstore import Job, JobStore, canonical_json, job_fingerprint
from .lifecycle import DEFAULT_LEASE_BUDGET, RECOVERABLE_STATES

#: Environment hook (tests/CI): ``"<campaign name>:<max attempt>"``
#: makes the job worker SIGKILL itself through the given attempt —
#: proving the lease-expiry → backoff → retry → success path on demand.
TEST_KILL_ENV = "REPRO_SERVICE_TEST_KILL"

#: Default seconds a lease lives without a heartbeat renewal.
DEFAULT_LEASE_DURATION = 10.0

#: Default bound on queued + leased (non-terminal) jobs.
DEFAULT_MAX_DEPTH = 64

#: Default base of the expired-lease retry backoff (seconds).
DEFAULT_RETRY_BACKOFF = 0.25


def _maybe_test_kill(name: str, attempt: int) -> None:
    directive = os.environ.get(TEST_KILL_ENV, "")
    if not directive:
        return
    target, _, through = directive.partition(":")
    try:
        max_attempt = int(through) if through else 1
    except ValueError:
        return
    if target == name and attempt <= max_attempt:
        os.kill(os.getpid(), signal.SIGKILL)


def _job_worker_main(spec_data: Dict[str, Any], scratch_path: str,
                     beat_fd: Optional[int], token: int,
                     attempt: int) -> None:
    """Worker process entry: run the job's campaign, one result file.

    The result crosses back via the rename-into-place protocol (a
    present file is a complete file; a missing one means this worker
    died) — never a pipe or queue a SIGKILL could tear mid-message.
    A heartbeat thread proves liveness on the daemon's beat pipe; the
    wall-clock watchdog in the daemon covers the case of a live thread
    over a wedged simulation.
    """
    _maybe_test_kill(spec_data.get("name", ""), attempt)
    heartbeat = WorkerHeartbeat(beat_fd, token, lambda: 0) \
        if beat_fd is not None else None
    ok = False
    try:
        from ..faults.runner import run_campaign

        spec = CampaignSpec.from_dict(spec_data)
        result = run_campaign(spec, workers=0)
        payload: Dict[str, Any] = {"ok": True, "result": result.to_dict()}
        if not result.ok:
            # per-seed infrastructure failures inside the campaign are
            # already retried there; surviving ones are the job's result
            payload["failures"] = result.to_dict()["failures"]
        ok = True
    except BaseException as error:  # noqa: BLE001 - must report, not die
        payload = {"ok": False,
                   "error": f"{type(error).__name__}: {error}"}
    finally:
        if heartbeat is not None:
            heartbeat.close(ok=ok)
    tmp = f"{scratch_path}.wip"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(payload) + "\n")
    os.replace(tmp, scratch_path)
    if not ok:
        raise SystemExit(1)


class _Lease:
    """Daemon-side record of one live lease (never persisted)."""

    __slots__ = ("job_id", "process", "attempt", "scratch",
                 "deadline", "watchdog", "token")

    def __init__(self, job_id: str, process: Any, attempt: int,
                 scratch: str, deadline: Optional[float],
                 watchdog: Optional[float], token: int):
        self.job_id = job_id
        self.process = process
        self.attempt = attempt
        self.scratch = scratch
        self.deadline = deadline      # heartbeat-renewed lease expiry
        self.watchdog = watchdog      # absolute wall-clock kill time
        self.token = token            # beat-pipe correlation id


class SimulationService:
    """The orchestration daemon (also usable in-process, tick by tick).

    Tests and benchmarks drive :meth:`tick` directly for determinism;
    ``repro serve`` wraps it in :meth:`run_forever` plus the socket
    API and signal handlers.
    """

    def __init__(self, state_dir: os.PathLike,
                 workers: int = 2,
                 lease_duration: float = DEFAULT_LEASE_DURATION,
                 job_timeout: Optional[float] = None,
                 max_depth: int = DEFAULT_MAX_DEPTH,
                 admission: str = "reject",
                 budget: int = DEFAULT_LEASE_BUDGET,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 store: Any = None,
                 heartbeats: bool = True):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if lease_duration <= 0:
            raise ServiceError(
                f"lease_duration must be positive, got {lease_duration}")
        if admission not in ("reject", "shed"):
            raise ServiceError(
                f"admission must be 'reject' or 'shed', got {admission!r}")
        if max_depth < 1:
            raise ServiceError(f"max_depth must be >= 1, got {max_depth}")
        self.jobstore = JobStore(state_dir)
        self.workers = int(workers)
        self.lease_duration = float(lease_duration)
        self.job_timeout = job_timeout
        self.max_depth = int(max_depth)
        self.admission = admission
        self.budget = int(budget)
        self.retry_backoff = float(retry_backoff)
        self.store = store
        self.jobs: Dict[str, Job] = {}
        #: fingerprint -> job_id of the live (non-terminal) owner
        self.active_fp: Dict[str, str] = {}
        #: job_id -> monotonic instant a queued job becomes leasable
        self.ready_at: Dict[str, float] = {}
        self.leases: Dict[str, _Lease] = {}
        self.draining = False
        self._context = _make_context()
        self._beat_read: Optional[int] = None
        self._beat_write: Optional[int] = None
        self._beat_buffer = b""
        self._token_to_job: Dict[int, str] = {}
        self._next_token = 1
        self._submitted_at: Dict[str, float] = {}
        if heartbeats:
            read_fd, write_fd = os.pipe()
            os.set_blocking(read_fd, False)
            self._beat_read, self._beat_write = read_fd, write_fd
        #: what the boot-time :meth:`recover` pass found and repaired
        self.last_recovery = self.recover()

    # -- recovery --------------------------------------------------------

    def recover(self) -> Dict[str, int]:
        """Replay the journal and repair every crash-orphaned job.

        Invariants restored here (the ISSUE 10 crash matrix):

        * a job journaled ``leased``/``running`` lost its worker with
          the old daemon — ``expire`` it (requeue or quarantine, by
          budget), exactly as a live lease expiry would;
        * a job in ``merging`` whose result file survived is published
          idempotently (same canonical bytes — republish cannot create
          a second distinct result); without the file it expires like
          a lost lease and is re-earned;
        * ``done`` jobs keep their published results untouched.
        """
        self.jobs = self.jobstore.replay()
        counts = {"requeued": 0, "republished": 0, "quarantined": 0}
        for job_id in sorted(self.jobs, key=lambda j: self.jobs[j].seq):
            job = self.jobs[job_id]
            state = job.state
            if state == "merging":
                payload = self.jobstore.read_result(job_id)
                if payload is not None:
                    self._publish(job, payload, cached=job.cached)
                    counts["republished"] += 1
                    continue
                # no result file: the unpublished result died with the
                # old daemon; fall through to expire and re-earn it
            if state in RECOVERABLE_STATES:
                PERF.incr("service.recovered_leases")
                after = self._journal_event(job, "expire")
                if after == "queued":
                    counts["requeued"] += 1
                    self.ready_at[job_id] = time.monotonic() \
                        + backoff_delay(self.retry_backoff,
                                        max(1, job.attempts),
                                        token=job_id)
                else:
                    counts["quarantined"] += 1
                    PERF.incr("service.quarantined")
            elif state == "queued":
                self.ready_at[job_id] = 0.0
            if not job.lifecycle.terminal:
                self.active_fp.setdefault(job.fingerprint, job_id)
        self._observe_depth()
        return counts

    # -- admission -------------------------------------------------------

    def submit(self, spec_data: Dict[str, Any]) -> Dict[str, Any]:
        """Accept (or refuse) one job; returns its status row.

        Refusals raise :class:`~repro.errors.ServiceError` — nothing is
        journaled for a refused job, so "accepted" and "journaled" are
        the same event, which is what makes "never lose an accepted
        job" checkable.
        """
        if self.draining:
            PERF.incr("service.rejected")
            raise ServiceError("service is draining; not admitting jobs")
        CampaignSpec.from_dict(spec_data)  # validate before accepting
        fingerprint = job_fingerprint(spec_data)
        live = self.active_fp.get(fingerprint)
        if live is not None and live in self.jobs \
                and not self.jobs[live].lifecycle.terminal:
            PERF.incr("service.coalesced")
            status = self.jobs[live].status()
            status["coalesced"] = True
            return status
        depth = self.queue_depth()
        if depth >= self.max_depth:
            if self.admission == "shed" and self._shed_one():
                PERF.incr("service.shed")
            else:
                PERF.incr("service.rejected")
                raise ServiceError(
                    f"queue full ({depth}/{self.max_depth} jobs); "
                    f"admission policy is {self.admission!r}")
        seq = self.jobstore.next_seq()
        job_id = f"job-{seq:06d}"
        self.jobstore.append({"kind": "submit", "job_id": job_id,
                              "fingerprint": fingerprint,
                              "spec": spec_data, "budget": self.budget})
        job = Job(job_id, fingerprint, spec_data, seq, budget=self.budget)
        self.jobs[job_id] = job
        self.active_fp[fingerprint] = job_id
        self.ready_at[job_id] = 0.0
        self._submitted_at[job_id] = time.monotonic()
        PERF.incr("service.submitted")
        self._try_cache_hit(job)
        self._observe_depth()
        status = job.status()
        status["coalesced"] = False
        return status

    def _shed_one(self) -> bool:
        """Cancel the oldest queued job to admit a newer one."""
        queued = [job for job in self.jobs.values()
                  if job.state == "queued"]
        if not queued:
            return False
        victim = min(queued, key=lambda job: job.seq)
        self._cancel_job(victim, reason="shed by admission control")
        return True

    # -- the scheduler tick ----------------------------------------------

    def tick(self) -> None:
        """One scheduling round: drain beats, reap, expire, lease."""
        self._drain_beats()
        self._reap()
        if not self.draining:
            self._grant_leases()

    def idle(self) -> bool:
        """No live leases and nothing leasable right now?"""
        if self.leases:
            return False
        if self.draining:
            return True
        return not any(job.state == "queued"
                       for job in self.jobs.values())

    def queue_depth(self) -> int:
        """Jobs the daemon is still responsible for (non-terminal)."""
        return sum(1 for job in self.jobs.values()
                   if not job.lifecycle.terminal)

    def _observe_depth(self) -> None:
        PERF.observe("service.queue_depth", float(self.queue_depth()))

    # -- leases ----------------------------------------------------------

    def _grant_leases(self) -> None:
        free = self.workers - len(self.leases)
        if free <= 0:
            return
        now = time.monotonic()
        leasable: List[Tuple[int, Job]] = sorted(
            ((job.seq, job) for job in self.jobs.values()
             if job.state == "queued"
             and self.ready_at.get(job.job_id, 0.0) <= now),
            key=lambda pair: pair[0])
        for _seq, job in leasable[:free]:
            if self._try_cache_hit(job):
                continue
            self._launch(job)

    def _try_cache_hit(self, job: Job) -> bool:
        """Serve a queued job from the store when its result exists."""
        if job.state != "queued" or self.store is None:
            return False
        payload = self.store.load("result", job.fingerprint,
                                  label=f"result {job.job_id}")
        if payload is None:
            return False
        # same ordering as a cold publish: result bytes land before the
        # journal says the job is done, so a journaled `hit` always has
        # its (byte-identical) payload on disk
        self._deliver(job, payload, cached=True)
        self._journal_event(job, "hit")
        job.cached = True
        PERF.incr("service.cache_hits")
        self._record_latency(job)
        self._finish(job)
        return True

    def _launch(self, job: Job) -> None:
        attempt = job.attempts + 1
        token = self._next_token
        self._next_token += 1
        scratch = str(self.jobstore.result_scratch(job.job_id, attempt))
        process = self._context.Process(
            target=_job_worker_main,
            args=(job.spec, scratch, self._beat_write, token, attempt),
            daemon=True)
        self._journal_event(job, "lease")
        job.attempts = attempt
        process.start()
        now = time.monotonic()
        self.leases[job.job_id] = _Lease(
            job.job_id, process, attempt, scratch,
            deadline=now + self.lease_duration,
            watchdog=(now + self.job_timeout
                      if self.job_timeout is not None else None),
            token=token)
        self._token_to_job[token] = job.job_id
        self.ready_at.pop(job.job_id, None)

    def _drain_beats(self) -> None:
        """Consume the heartbeat pipe: renew leases, observe starts."""
        if self._beat_read is None:
            return
        while True:
            try:
                chunk = os.read(self._beat_read, 65536)
            except BlockingIOError:
                break
            except OSError:
                return
            if not chunk:
                break
            self._beat_buffer += chunk
        while b"\n" in self._beat_buffer:
            line, self._beat_buffer = self._beat_buffer.split(b"\n", 1)
            parts = line.decode("utf-8", "replace").split()
            if len(parts) < 2:
                continue
            verb, raw_token = parts[0], parts[1]
            try:
                token = int(raw_token)
            except ValueError:
                continue
            job_id = self._token_to_job.get(token)
            lease = self.leases.get(job_id or "")
            if lease is None or lease.token != token:
                continue
            lease.deadline = time.monotonic() + self.lease_duration
            if verb == "start":
                job = self.jobs[lease.job_id]
                if job.lifecycle.can("start"):
                    self._journal_event(job, "start")

    def _reap(self) -> None:
        now = time.monotonic()
        for job_id in list(self.leases):
            lease = self.leases[job_id]
            job = self.jobs[job_id]
            if lease.process.is_alive():
                if lease.watchdog is not None and now > lease.watchdog:
                    self._kill_lease(lease)
                    PERF.incr("service.watchdog_kills")
                    self._lease_failed(job, lease, "wall-clock watchdog")
                elif now > lease.deadline:
                    self._kill_lease(lease)
                    PERF.incr("service.lease_expiries")
                    self._lease_failed(job, lease, "lease expired "
                                       "(no heartbeat)")
                continue
            lease.process.join()
            payload = self._read_scratch(lease.scratch)
            self._forget_lease(lease)
            if payload is None:
                PERF.incr("service.lease_expiries")
                self._lease_failed(
                    job, lease,
                    f"worker died (exit code {lease.process.exitcode}) "
                    f"before writing a result")
            elif payload.get("ok"):
                if job.lifecycle.can("start"):
                    # worker finished between beats; catch the start up
                    self._journal_event(job, "start")
                self._journal_event(job, "complete")
                self._publish(job, payload, cached=False)
            else:
                error = payload.get("error", "job failed")
                self._journal_event(job, "fail", error=error)
                job.error = error
                PERF.incr("service.failed")
                self._finish(job)

    def _read_scratch(self, scratch: str) -> Optional[Dict[str, Any]]:
        try:
            with open(scratch, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def _kill_lease(self, lease: _Lease) -> None:
        try:
            lease.process.kill()
            lease.process.join()
        except Exception:  # noqa: BLE001 - dying processes race freely
            pass
        self._forget_lease(lease)

    def _forget_lease(self, lease: _Lease) -> None:
        self.leases.pop(lease.job_id, None)
        self._token_to_job.pop(lease.token, None)
        try:
            os.unlink(lease.scratch)
        except OSError:
            pass

    def _lease_failed(self, job: Job, lease: _Lease, reason: str) -> None:
        after = self._journal_event(job, "expire")
        if after == "queued":
            PERF.incr("service.retries")
            self.ready_at[job.job_id] = time.monotonic() \
                + backoff_delay(self.retry_backoff, lease.attempt,
                                token=job.job_id)
        else:  # quarantined: poison job, budget exhausted
            job.error = f"quarantined after {job.attempts} failed " \
                        f"lease(s); last: {reason}"
            PERF.incr("service.quarantined")
            self._finish(job)

    # -- publishing ------------------------------------------------------

    def _publish(self, job: Job, payload: Dict[str, Any],
                 cached: bool) -> None:
        """Make a merging job's result durable, visible, and deduped.

        Order matters for the crash matrix: store first (idempotent,
        content-addressed), result file second (atomic rename), journal
        records last — every prefix of that sequence is re-runnable on
        recovery without a second visible result.
        """
        if self.store is not None and not cached:
            self.store.save("result", job.fingerprint, payload,
                            meta={"job": job.job_id,
                                  "campaign": job.spec.get("name", "")},
                            label=f"result {job.job_id}")
        self._deliver(job, payload, cached=cached)
        self._journal_event(job, "publish")
        job.cached = cached
        self._record_latency(job)
        self._finish(job)

    def _deliver(self, job: Job, payload: Dict[str, Any],
                 cached: bool) -> None:
        """Result file (atomic rename) then its journal record."""
        self.jobstore.write_result(job.job_id, payload)
        self.jobstore.append({"kind": "result", "job_id": job.job_id,
                              "fingerprint": job.fingerprint,
                              "cached": cached})
        PERF.incr("service.published")

    def _record_latency(self, job: Job) -> None:
        submitted = self._submitted_at.pop(job.job_id, None)
        if submitted is not None:
            PERF.hist("service.submit_to_result_s",
                      time.monotonic() - submitted)

    def _finish(self, job: Job) -> None:
        """Terminal-state bookkeeping shared by every outcome."""
        self.ready_at.pop(job.job_id, None)
        if self.active_fp.get(job.fingerprint) == job.job_id \
                and job.lifecycle.terminal and job.state != "done":
            # a failed/cancelled/quarantined owner frees the
            # fingerprint for a future submission to retry fresh
            self.active_fp.pop(job.fingerprint, None)
        self._observe_depth()

    def _journal_event(self, job: Job, event: str, **extra: Any) -> str:
        """Journal a lifecycle event, then apply it. Returns new state.

        Journal-first means a crash immediately after the append
        replays into exactly the state the daemon was about to be in.
        ``merging``/``publish`` special case: the publish record lands
        only after the result file rename (see :meth:`_publish`), so a
        journaled publish always has its bytes on disk.
        """
        record = {"kind": "event", "job_id": job.job_id, "event": event}
        record.update(extra)
        self.jobstore.append(record)
        return job.lifecycle.signal(event)

    # -- client operations ----------------------------------------------

    def status(self, job_id: Optional[str] = None) -> Dict[str, Any]:
        if job_id is not None:
            job = self._job(job_id)
            return job.status()
        return {
            "jobs": [self.jobs[job_id].status()
                     for job_id in sorted(self.jobs)],
            "queue_depth": self.queue_depth(),
            "leases": len(self.leases),
            "draining": self.draining,
        }

    def result(self, job_id: str) -> Dict[str, Any]:
        job = self._job(job_id)
        if job.state != "done":
            raise ServiceError(
                f"job {job_id} has no result yet (state {job.state!r}"
                + (f": {job.error}" if job.error else "") + ")")
        payload = self.jobstore.read_result(job_id)
        if payload is None and self.store is not None:
            payload = self.store.load("result", job.fingerprint,
                                      label=f"result {job_id}")
        if payload is None:
            raise ServiceError(
                f"job {job_id} is done but its result payload is "
                f"missing from disk")
        return payload

    def cancel(self, job_id: str) -> Dict[str, Any]:
        job = self._job(job_id)
        if job.lifecycle.terminal:
            raise ServiceError(
                f"job {job_id} is already {job.state}; cannot cancel")
        self._cancel_job(job, reason="client cancel")
        return job.status()

    def _cancel_job(self, job: Job, reason: str) -> None:
        lease = self.leases.get(job.job_id)
        if lease is not None:
            self._kill_lease(lease)
        self._journal_event(job, "cancel")
        job.error = reason
        PERF.incr("service.cancelled")
        self._finish(job)

    def _job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def stats(self) -> Dict[str, Any]:
        """Service gauges + the process-wide PERF snapshot."""
        return {
            "service": {
                "queue_depth": self.queue_depth(),
                "leases": len(self.leases),
                "jobs": len(self.jobs),
                "draining": self.draining,
                "workers": self.workers,
            },
            "perf": PERF.snapshot(),
        }

    # -- drain / shutdown ------------------------------------------------

    def drain(self) -> None:
        """Stop admitting; leased work finishes, queued work persists."""
        self.draining = True

    def shutdown(self) -> None:
        """Finish leased work, snapshot, release file handles."""
        self.drain()
        while self.leases:
            self.tick()
            time.sleep(0.02)
        self.jobstore.snapshot(self.jobs)
        self.jobstore.close()
        if self._beat_read is not None:
            for fd in (self._beat_read, self._beat_write):
                try:
                    os.close(fd)
                except OSError:
                    pass
            self._beat_read = self._beat_write = None

    # -- convenience (in-process use: tests, benchmarks) ----------------

    def run_until_idle(self, timeout: float = 60.0,
                       poll: float = 0.01) -> None:
        deadline = time.monotonic() + timeout
        while not self.idle():
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"service did not go idle within {timeout}s "
                    f"({len(self.leases)} lease(s) outstanding)")
            self.tick()
            time.sleep(poll)

    def __repr__(self) -> str:
        return (f"<SimulationService jobs={len(self.jobs)} "
                f"leases={len(self.leases)} "
                f"draining={self.draining}>")
