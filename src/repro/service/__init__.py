"""Simulation-as-a-service (subsystem S17, PR 10).

The campaign runner made one sweep crash-tolerant; this package makes
the *queue of sweeps* crash-tolerant.  ``repro serve`` runs a
long-lived orchestration daemon whose accepted jobs survive SIGKILL of
any worker — or of the daemon itself — without losing work or
publishing a result twice:

* :mod:`~repro.service.jobstore` — durable queue state: append-only
  JSONL journal, checksummed atomic snapshots, torn-tail-tolerant
  idempotent replay, rename-into-place result files;
* :mod:`~repro.service.lifecycle` — the job lifecycle as one of our own
  executable state machines (queued → leased → running → merging →
  done, with guarded retry-or-quarantine on lease expiry);
* :mod:`~repro.service.daemon` — lease-based worker pools with
  heartbeat renewal, deterministic-jitter retry backoff, poison-job
  quarantine, wall-clock watchdogs, bounded admission (reject/shed),
  graceful SIGTERM drain, and fingerprint-deduped results served
  byte-identically from the PR 8 artifact store;
* :mod:`~repro.service.api` — the JSONL-over-Unix-socket wire surface
  (``ServiceServer``) and its blocking client (``ServiceClient``),
  driven by ``repro submit | status | result | cancel``.
"""

from .api import ServiceClient, ServiceServer
from .daemon import SimulationService
from .jobstore import Job, JobStore, canonical_json, job_fingerprint
from .lifecycle import (
    DEFAULT_LEASE_BUDGET,
    JOB_EVENTS,
    JOB_STATES,
    TERMINAL_STATES,
    JobLifecycle,
    build_job_lifecycle,
)

__all__ = [
    "ServiceClient",
    "ServiceServer",
    "SimulationService",
    "Job",
    "JobStore",
    "canonical_json",
    "job_fingerprint",
    "DEFAULT_LEASE_BUDGET",
    "JOB_EVENTS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobLifecycle",
    "build_job_lifecycle",
]
