"""The job lifecycle, modeled as one of our own state machines.

The paper's thesis is that executable UML models are *the* artifact —
so the simulation service eats its own dogfood: the lifecycle of a
submitted job is not an ad-hoc ``status`` string mutated from a dozen
call sites, it is a :class:`~repro.statemachines.StateMachine` executed
by the same RTC runtime the service simulates for its users.  Illegal
transitions are structurally impossible (there is no edge to fire), the
retry budget is a guarded choice between two transitions on the same
trigger, and the whole protocol can be validated, flattened, diagrammed
and simulated with the library's existing tooling.

::

                      lease           start          complete
         [queued] ----------> [leased] -----> [running] ------> [merging]
            |                                                      |
            |  hit (cached fingerprint)                    publish |
            +--------------------------------> [done] <------------+

         expire (lease lost / watchdog / daemon crash), from
         leased|running|merging:   --[budget > 0]-->  back to [queued]
                                   --[budget <= 0]--> [quarantined]
         fail   (deterministic job error), from leased|running|merging:
                                   --> [failed]
         cancel (client request), from any non-terminal state:
                                   --> [cancelled]

Events (all signal-triggered, dispatched by the daemon):

* ``lease``    — a worker slot took a time-bounded lease on the job;
* ``start``    — the worker's first heartbeat arrived;
* ``complete`` — the worker's result file landed (rename-into-place);
* ``publish``  — the result was published to the store / result dir;
* ``expire``   — the lease expired (no heartbeat in time), the worker
  died, the per-job wall-clock watchdog fired, or the daemon itself
  crashed while the job was leased/running/merging; guards on the
  retry budget route the job back to ``queued`` or into
  ``quarantined``;
* ``fail``     — the worker reported a deterministic job error (not
  infrastructure: such errors are results, and are not retried);
* ``hit``      — an identical (model, campaign, seed) fingerprint
  already has a published result in the artifact store; the job goes
  straight to ``done`` serving the cached payload;
* ``cancel``   — a client cancelled the job.

Guards and effects are ASL source strings over a context holding
``budget`` (remaining lease failures before quarantine), so the machine
is plain model data — it round-trips through XMI like any user model.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..errors import ServiceError
from ..statemachines import StateMachine
from ..statemachines.runtime import StateMachineRuntime

#: Every lifecycle state, in protocol order.
JOB_STATES: Tuple[str, ...] = (
    "queued", "leased", "running", "merging",
    "done", "failed", "cancelled", "quarantined",
)

#: States a job can never leave.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled", "quarantined"})

#: States holding a live lease (a worker process may be attached).
LEASED_STATES = frozenset({"leased", "running"})

#: States a daemon crash orphans: a lease (or an unpublished result)
#: died with the old process, so recovery must route through ``expire``.
RECOVERABLE_STATES = frozenset({"leased", "running", "merging"})

#: The signal events the daemon may dispatch.
JOB_EVENTS: Tuple[str, ...] = (
    "lease", "start", "complete", "publish", "expire", "fail", "hit",
    "cancel",
)

#: Default number of failed leases before a job is quarantined as poison.
DEFAULT_LEASE_BUDGET = 3


def build_job_lifecycle() -> StateMachine:
    """Construct the job-lifecycle state machine (a fresh model tree).

    The machine validates cleanly, flattens, and compiles — the service
    test-suite pins all three, which is exactly the point of modeling
    the protocol instead of hand-coding it.
    """
    machine = StateMachine("JobLifecycle")
    region = machine.region
    states = {name: region.add_state(name) for name in JOB_STATES}
    region.add_transition(region.add_initial(), states["queued"])

    add = region.add_transition
    add(states["queued"], states["leased"], trigger="lease")
    add(states["queued"], states["done"], trigger="hit")
    add(states["leased"], states["running"], trigger="start")
    add(states["running"], states["merging"], trigger="complete")
    add(states["merging"], states["done"], trigger="publish")
    # lease expiry / worker death / daemon crash: guarded
    # retry-or-quarantine choice (merging counts — an unpublished
    # result must be republished or re-earned after a daemon crash)
    for origin in ("leased", "running", "merging"):
        add(states[origin], states["queued"], trigger="expire",
            guard="budget > 0", effect="budget = budget - 1;")
        add(states[origin], states["quarantined"], trigger="expire",
            guard="budget <= 0")
    # deterministic job errors are results, never retried
    for origin in ("leased", "running", "merging"):
        add(states[origin], states["failed"], trigger="fail")
    for origin in ("queued", "leased", "running", "merging"):
        add(states[origin], states["cancelled"], trigger="cancel")
    machine.validate()
    return machine


#: One shared (immutable) machine; each job gets its own runtime.
_MACHINE: Optional[StateMachine] = None


def _shared_machine() -> StateMachine:
    global _MACHINE
    if _MACHINE is None:
        _MACHINE = build_job_lifecycle()
    return _MACHINE


class JobLifecycle:
    """One job's lifecycle: a thin, checked facade over the runtime.

    :meth:`signal` dispatches a lifecycle event and *verifies it fired*:
    an event that is not enabled in the current state (``publish`` while
    ``queued``, ``lease`` on a terminal job, …) leaves the RTC runtime's
    configuration unchanged, which this facade turns into a
    :class:`~repro.errors.ServiceError` — so the daemon cannot corrupt a
    job by calling the wrong method at the wrong time.  During journal
    *replay* the same check runs in tolerant mode (:meth:`replay`):
    records made stale by a torn tail are counted and skipped, never
    applied, keeping replay idempotent.
    """

    __slots__ = ("runtime",)

    def __init__(self, budget: int = DEFAULT_LEASE_BUDGET,
                 machine: Optional[StateMachine] = None):
        if budget < 0:
            raise ServiceError(f"lease budget cannot be negative: {budget}")
        self.runtime = StateMachineRuntime(
            machine or _shared_machine(),
            context={"budget": int(budget)})
        self.runtime.start()

    @property
    def state(self) -> str:
        """The single active leaf state name."""
        leaves = self.runtime.active_leaf_names()
        return leaves[0] if leaves else "queued"

    @property
    def budget(self) -> int:
        """Remaining lease failures before quarantine."""
        return int(self.runtime.context["budget"])

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def can(self, event: str) -> bool:
        """Would ``event`` fire a transition right now?"""
        if event not in JOB_EVENTS:
            return False
        state = self.state
        if event == "lease":
            return state == "queued"
        if event == "start":
            return state == "leased"
        if event == "complete":
            return state == "running"
        if event == "publish":
            return state == "merging"
        if event == "expire":
            return state in RECOVERABLE_STATES
        if event == "fail":
            return state in ("leased", "running", "merging")
        if event == "hit":
            return state == "queued"
        return state not in TERMINAL_STATES  # cancel

    def signal(self, event: str) -> str:
        """Dispatch a lifecycle event; returns the new state.

        Raises :class:`~repro.errors.ServiceError` when the event is
        unknown or not enabled in the current state — the machine, not
        the caller, is the authority on legality.
        """
        if event not in JOB_EVENTS:
            raise ServiceError(f"unknown job lifecycle event {event!r}")
        before = self.state
        self.runtime.send(event)
        after = self.state
        if after == before:
            raise ServiceError(
                f"illegal job transition: event {event!r} is not "
                f"enabled in state {before!r}")
        return after

    def replay(self, event: str) -> bool:
        """Tolerant dispatch for journal replay: apply if enabled.

        Returns whether the event fired.  A journal whose tail was torn
        off can legitimately contain events the reconstructed state no
        longer enables; replay skips them instead of raising, which is
        what makes re-replaying the same journal idempotent.
        """
        if event not in JOB_EVENTS or not self.can(event):
            return False
        self.runtime.send(event)
        return True

    # -- persistence -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data state for the job-store snapshot file."""
        return {"state": self.state, "budget": self.budget}

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "JobLifecycle":
        """Rebuild a lifecycle at a snapshotted state.

        Reconstruction *drives the machine* to the target state through
        real events rather than poking the runtime's internals — so a
        snapshot naming an unreachable state fails loudly here instead
        of producing a job the protocol can never have created.
        """
        state = data.get("state", "queued")
        if state not in JOB_STATES:
            raise ServiceError(f"snapshot names unknown job state {state!r}")
        budget = int(data.get("budget", DEFAULT_LEASE_BUDGET))
        if state == "quarantined":
            # quarantine only ever fires on an exhausted budget; pinning
            # it keeps the expire step below routing there
            budget = 0
        lifecycle = cls(budget=budget)
        for event in _PATH_TO_STATE[state]:
            lifecycle.signal(event)
        return lifecycle

    def __repr__(self) -> str:
        return f"<JobLifecycle {self.state} budget={self.budget}>"


#: Shortest event path from ``queued`` to each state (for snapshot
#: reconstruction).  ``quarantined`` needs the budget already at 0; the
#: snapshot carries the budget, so a quarantined snapshot always stores
#: budget 0 and the expire path below routes correctly.
_PATH_TO_STATE: Dict[str, Tuple[str, ...]] = {
    "queued": (),
    "leased": ("lease",),
    "running": ("lease", "start"),
    "merging": ("lease", "start", "complete"),
    "done": ("lease", "start", "complete", "publish"),
    "failed": ("lease", "fail"),
    "cancelled": ("cancel",),
    "quarantined": ("lease", "expire"),
}
