"""Durable job state: append-only journal + atomic snapshots.

The daemon's queue must survive the daemon.  Every state change of
every job is appended to a JSONL journal *before* the daemon acts on
it, and replaying the journal reconstructs the exact queue — after a
SIGKILL of the daemon itself, after a torn tail, after any interleaving
of crashes.  The layout under the service state directory::

    state/
      journal.jsonl        append-only, one JSON record per line
      snapshot.json        atomic-rename full-state snapshot
      results/<job>.json   published result payloads (rename-into-place)
      results/tmp/         scratch for the rename protocol

Journal records (``seq`` is a monotone sequence number)::

    {"seq": 1, "kind": "submit", "job_id": ..., "fingerprint": ...,
     "spec": {...}, "budget": 3}
    {"seq": 2, "kind": "event",  "job_id": ..., "event": "lease"}
    {"seq": 3, "kind": "result", "job_id": ..., "fingerprint": ...,
     "cached": false}

Recovery invariants (pinned by ``tests/test_service_recovery.py``):

* **replay-idempotent** — replaying a journal any number of times
  yields the same state: ``submit`` for a known job is a no-op, and
  lifecycle events are applied through the state machine's tolerant
  :meth:`~repro.service.lifecycle.JobLifecycle.replay`, which skips
  records the reconstructed state no longer enables (the shadow a torn
  tail can cast) instead of corrupting it;
* **torn-tail tolerant** — a half-written final line is dropped and
  counted (``journal.torn_records`` in :data:`~repro.perf.PERF`), like
  the PR 5 campaign journal;
* **results are exactly-once visible** — a result lands as an atomic
  rename into ``results/`` before its ``result`` record is journaled,
  so a present file is complete and a journaled result always exists;
  the daemon's recovery sweep re-publishes any file that made it to
  disk before the record did, and dedupes by fingerprint rather than
  re-running.

Snapshots bound replay cost: :meth:`JobStore.snapshot` atomically
writes the whole reconstructed state plus the journal position it
covers; replay then starts from the snapshot and applies only newer
records.  :meth:`compact` (clean drain only) additionally resets the
journal, since the snapshot now carries everything.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ServiceError
from ..perf import PERF
from .lifecycle import DEFAULT_LEASE_BUDGET, JobLifecycle

#: Snapshot format version; mismatches fall back to full journal replay.
SNAPSHOT_VERSION = 1


def canonical_json(value: Any) -> str:
    """Deterministic JSON text (sorted keys, compact separators)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, default=str)


def job_fingerprint(spec_data: Dict[str, Any]) -> str:
    """Content-addressed identity of one job's work.

    Two submissions that would simulate the same thing must collide —
    that is what lets the daemon serve the second from the store.  The
    spec's file-path fields (``model``, ``campaign``, ``properties``)
    are replaced by digests of the file *contents*, so renaming or
    copying a model does not defeat the cache, while editing one
    invalidates it.  The ``name`` field is presentation, not work, and
    is excluded.
    """
    identity = dict(spec_data)
    identity.pop("name", None)
    for field in ("model", "campaign", "properties"):
        value = identity.get(field)
        if isinstance(value, str) and os.path.exists(value):
            digest = hashlib.blake2b(digest_size=16)
            with open(value, "rb") as handle:
                for chunk in iter(lambda: handle.read(65536), b""):
                    digest.update(chunk)
            identity[field] = f"content:{digest.hexdigest()}"
    digest = hashlib.blake2b(canonical_json(identity).encode("utf-8"),
                             digest_size=16)
    return digest.hexdigest()


class Job:
    """One submitted job: persistent identity + lifecycle + bookkeeping.

    Lease plumbing that only means something while one daemon process
    is alive (deadlines, worker handles, backoff timers) deliberately
    lives in the daemon, not here — a journal must never have to
    explain a monotonic-clock value from a previous boot.
    """

    __slots__ = ("job_id", "fingerprint", "spec", "lifecycle", "attempts",
                 "error", "cached", "seq")

    def __init__(self, job_id: str, fingerprint: str,
                 spec: Dict[str, Any], seq: int,
                 budget: int = DEFAULT_LEASE_BUDGET):
        self.job_id = job_id
        self.fingerprint = fingerprint
        self.spec = dict(spec)
        self.lifecycle = JobLifecycle(budget=budget)
        self.attempts = 0          # leases taken so far
        self.error = ""            # terminal error text (failed jobs)
        self.cached = False        # result served from the store
        self.seq = seq             # journal seq of the submit record

    @property
    def state(self) -> str:
        return self.lifecycle.state

    def status(self) -> Dict[str, Any]:
        """Plain-data status row (the ``status`` API response body)."""
        return {
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "attempts": self.attempts,
            "budget": self.lifecycle.budget,
            "cached": self.cached,
            "error": self.error,
            "name": self.spec.get("name", "campaign"),
            "seeds": len(self.spec.get("seeds") or ()),
        }

    def to_snapshot(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "spec": self.spec,
            "lifecycle": self.lifecycle.snapshot(),
            "attempts": self.attempts,
            "error": self.error,
            "cached": self.cached,
            "seq": self.seq,
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "Job":
        job = cls(data["job_id"], data["fingerprint"], data["spec"],
                  int(data.get("seq", 0)))
        job.lifecycle = JobLifecycle.from_snapshot(
            data.get("lifecycle", {}))
        job.attempts = int(data.get("attempts", 0))
        job.error = data.get("error", "")
        job.cached = bool(data.get("cached", False))
        return job

    def __repr__(self) -> str:
        return f"<Job {self.job_id} {self.state} fp={self.fingerprint[:8]}>"


class JobStore:
    """The disk half of the daemon: journal, snapshot, result files."""

    def __init__(self, root: os.PathLike):
        self.root = Path(root).expanduser()
        self.results_dir = self.root / "results"
        self._results_tmp = self.results_dir / "tmp"
        try:
            self._results_tmp.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ServiceError(
                f"cannot create service state dir {self.root}: {exc}")
        self.journal_path = self.root / "journal.jsonl"
        self.snapshot_path = self.root / "snapshot.json"
        self._journal_handle = None
        self._seq = 0  # highest seq written or replayed

    # -- journal ---------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> int:
        """Append one record (assigning its ``seq``); returns the seq.

        The line is flushed so a SIGKILL of the daemon immediately
        after cannot lose it (only the line *being* written can tear,
        which replay tolerates).
        """
        self._seq += 1
        record = dict(record, seq=self._seq)
        if self._journal_handle is None:
            self._journal_handle = open(self.journal_path, "a",
                                        encoding="utf-8")
        self._journal_handle.write(canonical_json(record) + "\n")
        self._journal_handle.flush()
        return self._seq

    def next_seq(self) -> int:
        """The seq the next :meth:`append` will assign.

        Job ids derive from their submit record's seq, which must be
        known *before* the record is written (the record carries the
        id).
        """
        return self._seq + 1

    def close(self) -> None:
        if self._journal_handle is not None:
            self._journal_handle.close()
            self._journal_handle = None

    # -- replay ----------------------------------------------------------

    def replay(self) -> Dict[str, Job]:
        """Reconstruct all jobs from snapshot + journal suffix.

        Also advances the internal sequence counter past everything
        seen, so new appends never reuse a seq.  Safe to call on an
        empty or absent state directory (returns no jobs).
        """
        jobs: Dict[str, Job] = {}
        snapshot_seq = 0
        snapshot = self._load_snapshot()
        if snapshot is not None:
            snapshot_seq = int(snapshot.get("seq", 0))
            for data in snapshot.get("jobs", []):
                job = Job.from_snapshot(data)
                jobs[job.job_id] = job
        self._seq = snapshot_seq
        if not self.journal_path.exists():
            return jobs
        with open(self.journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    PERF.incr("journal.torn_records")
                    break  # torn tail; everything before it is good
                seq = int(record.get("seq", 0))
                if seq > self._seq:
                    self._seq = seq
                if seq <= snapshot_seq:
                    continue  # the snapshot already covers this record
                self._apply(jobs, record)
        return jobs

    def _apply(self, jobs: Dict[str, Job], record: Dict[str, Any]) -> None:
        kind = record.get("kind")
        job_id = record.get("job_id", "")
        if kind == "submit":
            if job_id in jobs:
                return  # replay idempotence
            jobs[job_id] = Job(
                job_id, record.get("fingerprint", ""),
                record.get("spec", {}), int(record.get("seq", 0)),
                budget=int(record.get("budget", DEFAULT_LEASE_BUDGET)))
            return
        job = jobs.get(job_id)
        if job is None:
            PERF.incr("service.replay_orphans")
            return
        if kind == "event":
            event = record.get("event", "")
            if job.lifecycle.replay(event):
                if event == "lease":
                    job.attempts += 1
                if event == "fail":
                    job.error = record.get("error", "job failed")
            else:
                PERF.incr("service.replay_skipped")
        elif kind == "result":
            job.cached = bool(record.get("cached", False))

    # -- snapshots -------------------------------------------------------

    def snapshot(self, jobs: Dict[str, Job]) -> Path:
        """Atomically persist the full state (covering seq so far)."""
        payload = {
            "version": SNAPSHOT_VERSION,
            "seq": self._seq,
            "jobs": [jobs[job_id].to_snapshot()
                     for job_id in sorted(jobs)],
        }
        payload["checksum"] = hashlib.blake2b(
            canonical_json({k: payload[k] for k in ("version", "seq",
                                                    "jobs")})
            .encode("utf-8"), digest_size=16).hexdigest()
        descriptor, tmp_name = tempfile.mkstemp(
            prefix="snapshot.", suffix=".tmp", dir=self.root)
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(payload))
        os.replace(tmp_name, self.snapshot_path)
        return self.snapshot_path

    def _load_snapshot(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) \
                or payload.get("version") != SNAPSHOT_VERSION:
            PERF.incr("service.snapshot_rejected")
            return None
        expected = payload.get("checksum")
        actual = hashlib.blake2b(
            canonical_json({k: payload.get(k) for k in ("version", "seq",
                                                        "jobs")})
            .encode("utf-8"), digest_size=16).hexdigest()
        if expected != actual:
            PERF.incr("service.snapshot_rejected")
            return None
        return payload

    def compact(self, jobs: Dict[str, Job]) -> None:
        """Snapshot, then reset the journal (clean-drain housekeeping).

        Only sound *after* the snapshot rename landed — which is why the
        truncation happens second: a crash between the two steps leaves
        a journal whose every record the snapshot already covers, and
        replay skips them by seq.
        """
        self.snapshot(jobs)
        self.close()
        with open(self.journal_path, "w", encoding="utf-8"):
            pass

    # -- results ---------------------------------------------------------

    def result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    def result_scratch(self, job_id: str, attempt: int) -> Path:
        """Scratch path a worker writes before the publishing rename."""
        return self._results_tmp / f"{job_id}.try{attempt}.tmp"

    def write_result(self, job_id: str, payload: Dict[str, Any]) -> Path:
        """Write a result payload via the atomic-rename protocol.

        Canonical JSON, so a cache-served copy of the same payload is
        byte-identical to the cold-run original (`cmp`-clean).
        """
        target = self.result_path(job_id)
        descriptor, tmp_name = tempfile.mkstemp(
            prefix=f"{job_id}.", suffix=".tmp", dir=self._results_tmp)
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(payload) + "\n")
        os.replace(tmp_name, target)
        return target

    def read_result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The published payload for a job, or None (absent/torn)."""
        try:
            with open(self.result_path(job_id), "r",
                      encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def __repr__(self) -> str:
        return f"<JobStore {self.root} seq={self._seq}>"
