"""UML 2.0 activities with token semantics (subsystem S3).

Activity graphs, the token-game execution engine, and the Petri net
mapping that substantiates the paper's "semantically close to
high-level Petri Nets" claim.
"""

from .nodes import (
    AcceptEventAction,
    Action,
    ActivityFinalNode,
    ActivityNode,
    ActivityParameterNode,
    CentralBufferNode,
    ControlNode,
    DecisionNode,
    ExecutableNode,
    FlowFinalNode,
    ForkNode,
    InitialNode,
    InputPin,
    JoinNode,
    MergeNode,
    ObjectNode,
    OutputPin,
    Pin,
    SendSignalAction,
)
from .graph import Activity, ActivityEdge, ControlFlow, ObjectFlow
from .engine import CONTROL, Firing, TokenEngine, explore
from .runtime import ActivityRuntime
from .petri import (
    DONE_PLACE,
    PetriNet,
    PetriTransition,
    activity_to_petri,
    engine_marking_to_net,
)

__all__ = [
    "AcceptEventAction", "Action", "ActivityFinalNode", "ActivityNode",
    "ActivityParameterNode", "CentralBufferNode", "ControlNode",
    "DecisionNode", "ExecutableNode", "FlowFinalNode", "ForkNode",
    "InitialNode", "InputPin", "JoinNode", "MergeNode", "ObjectNode",
    "OutputPin", "Pin", "SendSignalAction",
    "Activity", "ActivityEdge", "ControlFlow", "ObjectFlow",
    "CONTROL", "Firing", "TokenEngine", "explore", "ActivityRuntime",
    "DONE_PLACE", "PetriNet", "PetriTransition", "activity_to_petri",
    "engine_marking_to_net",
]
