"""ActivityRuntime: an activity as a part behavior (ExecutionEngine face).

Wraps the :class:`~repro.activities.engine.TokenEngine` in the calling
convention the cosimulation harness speaks (see
:mod:`repro.engine.protocol` — this module deliberately does *not*
import it): ``start`` plays the token game to quiescence, ``send``
delivers a signal occurrence to the activity's accept-event actions and
again runs to quiescence (the activity's run-to-completion step),
``step`` advances the local clock (the token game has no time triggers
yet, so no firings are due), and ``active_configuration`` names the
current marking canonically — by node/flow *names*, not XMI ids, so two
separately-built copies of the same model report identical
configurations (the lockstep fingerprint relies on this).

The idiomatic shape for a reactive part is a server loop::

    initial -> merge -> accept(ev) -> work -> send(sig) -> merge

which quiesces at the accept-event action between deliveries, exactly
like a state machine waiting in a state.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .engine import TokenEngine
from .graph import Activity


class ActivityRuntime:
    """Executes an :class:`Activity` under the ExecutionEngine convention."""

    def __init__(self, activity: Activity,
                 context: Optional[Dict[str, Any]] = None,
                 signal_sink=None,
                 inputs: Optional[Dict[str, Any]] = None,
                 seed: Optional[int] = None,
                 max_steps: int = 100_000):
        self.activity = activity
        self.max_steps = max_steps
        self.is_terminated = False
        self._started = False
        self._engine = TokenEngine(activity, env=context,
                                   signal_sink=signal_sink,
                                   inputs=inputs, seed=seed)
        # Canonical labels for marking locations: flows are named by
        # endpoint names (disambiguated by declaration order), pools by
        # node name — stable across separately-built model copies.
        self._labels: Dict[str, str] = {}
        seen: Dict[str, int] = {}
        for edge in activity.edges:
            label = f"{edge.name or ''}" or (
                f"{edge.source.name}->{edge.target.name}")
            count = seen.get(label, 0)
            seen[label] = count + 1
            if count:
                label = f"{label}#{count}"
            self._labels[edge.xmi_id] = label
        for node in activity.all_nodes:
            self._labels[node.xmi_id] = node.name

    # -- attributes shared with the inner engine ---------------------------

    @property
    def time(self) -> float:
        """Engine-local simulated clock (shared with the token engine)."""
        return self._engine.time

    @time.setter
    def time(self, value: float) -> None:
        self._engine.time = value

    @property
    def context(self) -> Dict[str, Any]:
        """The activity's variable environment (the token engine's env)."""
        return self._engine.env

    @property
    def signal_sink(self):
        """Outbound signal receiver (forwarded to the token engine)."""
        return self._engine.signal_sink

    @signal_sink.setter
    def signal_sink(self, sink) -> None:
        self._engine.signal_sink = sink

    @property
    def trace_bus(self):
        """Trace bus (forwarded so TOKEN firings are stamped correctly)."""
        return self._engine.trace_bus

    @trace_bus.setter
    def trace_bus(self, bus) -> None:
        self._engine.trace_bus = bus

    @property
    def trace_part(self) -> str:
        """Part name used in emitted trace events."""
        return self._engine.trace_part

    @trace_part.setter
    def trace_part(self, part: str) -> None:
        self._engine.trace_part = part

    @property
    def engine(self) -> TokenEngine:
        """The wrapped token engine (marking inspection, outputs, ...)."""
        return self._engine

    # -- ExecutionEngine surface -------------------------------------------

    def start(self) -> "ActivityRuntime":
        """Play the token game to quiescence from the initial marking."""
        if self._started:
            return self
        self._started = True
        self._engine.run(self.max_steps)
        self.is_terminated = self._engine.finished
        return self

    def send(self, name: str, **parameters: Any) -> "ActivityRuntime":
        """Deliver one signal occurrence and run to quiescence."""
        if self.is_terminated:
            return self
        bus = self._engine.trace_bus
        if bus is not None and bus.engine_active:
            bus.emit("event", self._engine.time, self._engine.trace_part,
                     {"event": name})
        self._engine.deliver(name, **parameters)
        self._engine.run(self.max_steps)
        self.is_terminated = self._engine.finished
        return self

    def step(self, until: float) -> "ActivityRuntime":
        """Advance the local clock (token games have no time triggers)."""
        if until > self._engine.time:
            self._engine.time = until
        return self

    def active_configuration(self) -> Tuple[str, ...]:
        """The current marking as sorted ``label:count`` strings."""
        if self.is_terminated:
            return ("<final>",)
        return tuple(sorted(
            f"{self._labels[location]}:{count}"
            for location, count in self._engine.marking_counts()))

    def checkpoint(self) -> Dict[str, Any]:
        """Capture the complete execution state (exact replay)."""
        return {
            "engine": "token-engine",
            "started": self._started,
            "terminated": self.is_terminated,
            "tokens": self._engine.snapshot(),
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        """Reinstate a state captured by :meth:`checkpoint`."""
        self._started = snap["started"]
        self.is_terminated = snap["terminated"]
        self._engine.restore(snap["tokens"])

    # Interop aliases: the state-machine runtimes historically expose
    # snapshot()/restore(); keep the same spelling working here.
    snapshot = checkpoint

    # -- introspection ------------------------------------------------------

    def active_leaf_names(self) -> Tuple[str, ...]:
        """Alias for :meth:`active_configuration` (SM-runtime spelling)."""
        return self.active_configuration()

    def __repr__(self) -> str:
        return (f"<ActivityRuntime {self.activity.name!r} "
                f"marking={self.active_configuration()!r}>")
