"""Petri nets and the activity-to-Petri-net mapping.

The paper's claim: UML 2.0 token semantics "move [activities]
semantically close to high-level Petri Nets".  This module makes the
claim checkable.  :class:`PetriNet` is a standard place/transition net
with weighted arcs; :func:`activity_to_petri` maps an activity onto a
net such that, for control-only activities, the reachable markings of
the token engine (:func:`repro.activities.engine.explore`) and of the
net coincide location-for-location — the property experiment D3
verifies over randomly generated activities.

Mapping (place ids reuse the activity element ids, so markings compare
directly):

=====================  =====================================================
activity element       Petri structure
=====================  =====================================================
edge                   place (same id)
initial node           place (same id) marked with 1 + one transition per
                       outgoing edge (conflict = UML's offer-to-one)
action / join / fork   one transition consuming every in-edge place,
                       producing every out-edge place
decision               one transition per outgoing edge (guards abstracted)
merge                  one transition per incoming edge
flow final             one transition per incoming edge, no output
activity final         one transition per incoming edge, producing a
                       `<done>` place that disables nothing — global
                       termination is approximated (see note)
object/buffer node     place (same id); in-edges feed it, out-edges drain
=====================  =====================================================

Note on activity final: a Petri net transition cannot atomically clear
arbitrary other places, so exact equivalence is stated for activities
where the final node fires last (single-terminus activities, which the
D3 generator produces).  For such activities the engine's post-final
marking (empty) corresponds to the net's ``<done>``-marked state.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import ActivityError
from .graph import Activity
from .nodes import (
    AcceptEventAction,
    Action,
    ActivityFinalNode,
    ActivityParameterNode,
    DecisionNode,
    FlowFinalNode,
    ForkNode,
    InitialNode,
    JoinNode,
    MergeNode,
    ObjectNode,
)

#: A marking: sorted tuple of (place id, token count), zero counts omitted.
Marking = Tuple[Tuple[str, int], ...]

#: The synthetic place marked when an activity-final transition fires.
DONE_PLACE = "<done>"


class PetriTransition:
    """A transition with weighted input and output arcs."""

    __slots__ = ("name", "inputs", "outputs")

    def __init__(self, name: str,
                 inputs: Dict[str, int], outputs: Dict[str, int]):
        self.name = name
        self.inputs = dict(inputs)
        self.outputs = dict(outputs)

    def __repr__(self) -> str:
        return f"<PetriTransition {self.name}>"


class PetriNet:
    """A place/transition net with natural-number markings."""

    def __init__(self) -> None:
        self.places: Set[str] = set()
        self.transitions: List[PetriTransition] = []
        self.initial: Dict[str, int] = {}

    # -- construction ------------------------------------------------------

    def add_place(self, place: str, tokens: int = 0) -> str:
        """Declare a place, optionally with initial tokens."""
        self.places.add(place)
        if tokens:
            self.initial[place] = self.initial.get(place, 0) + tokens
        return place

    def add_transition(self, name: str, inputs: Dict[str, int],
                       outputs: Dict[str, int]) -> PetriTransition:
        """Declare a transition; all referenced places are auto-added."""
        for place in list(inputs) + list(outputs):
            self.places.add(place)
        transition = PetriTransition(name, inputs, outputs)
        self.transitions.append(transition)
        return transition

    # -- semantics ------------------------------------------------------------

    def initial_marking(self) -> Marking:
        """The canonical initial marking."""
        return tuple(sorted((p, c) for p, c in self.initial.items() if c))

    @staticmethod
    def _as_dict(marking: Marking) -> Dict[str, int]:
        return dict(marking)

    def enabled(self, marking: Marking) -> List[PetriTransition]:
        """Transitions enabled under ``marking``."""
        held = self._as_dict(marking)
        return [t for t in self.transitions
                if all(held.get(place, 0) >= need
                       for place, need in t.inputs.items())]

    def fire(self, marking: Marking, transition: PetriTransition) -> Marking:
        """The successor marking after firing ``transition``."""
        held = self._as_dict(marking)
        for place, need in transition.inputs.items():
            if held.get(place, 0) < need:
                raise ActivityError(
                    f"transition {transition.name!r} not enabled")
            held[place] -= need
        for place, produced in transition.outputs.items():
            held[place] = held.get(place, 0) + produced
        return tuple(sorted((p, c) for p, c in held.items() if c))

    def reachable_markings(self, max_markings: int = 50_000) -> Set[Marking]:
        """BFS over the reachability graph (bounded)."""
        initial = self.initial_marking()
        seen: Set[Marking] = {initial}
        frontier = [initial]
        while frontier:
            marking = frontier.pop()
            for transition in self.enabled(marking):
                successor = self.fire(marking, transition)
                if successor not in seen:
                    if len(seen) >= max_markings:
                        raise ActivityError(
                            f"reachability exceeded {max_markings} markings")
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    def is_bounded(self, bound: int, max_markings: int = 50_000) -> bool:
        """True when no reachable place ever exceeds ``bound`` tokens."""
        for marking in self.reachable_markings(max_markings):
            if any(count > bound for _, count in marking):
                return False
        return True

    def deadlock_markings(self, max_markings: int = 50_000) -> Set[Marking]:
        """Reachable markings with no enabled transition."""
        return {m for m in self.reachable_markings(max_markings)
                if not self.enabled(m)}

    def __repr__(self) -> str:
        return (f"<PetriNet {len(self.places)} places, "
                f"{len(self.transitions)} transitions>")


def activity_to_petri(activity: Activity) -> PetriNet:
    """Translate an activity into a Petri net (see module docstring).

    Raises :class:`~repro.errors.ActivityError` for activities using
    accept-event actions (external events have no net counterpart here)
    or guarded edges (guards are data-dependent; the structural net
    over-approximates them, so we refuse rather than silently diverge).
    """
    activity.validate()
    net = PetriNet()

    for edge in activity.edges:
        if edge.guard is not None and not (
                isinstance(edge.guard, str) and edge.guard.strip() == "else"):
            raise ActivityError(
                "guarded activities cannot be mapped exactly; "
                "strip guards for the structural mapping")
        net.add_place(edge.xmi_id)

    for node in activity.nodes:
        in_edges = [e for e in activity.edges if e.target is node]
        out_edges = [e for e in activity.edges if e.source is node]
        identifier = node.name or node.xmi_id

        if isinstance(node, AcceptEventAction):
            raise ActivityError(
                "accept-event actions have no Petri counterpart (external "
                "event pool); remove them before mapping")

        if isinstance(node, InitialNode):
            net.add_place(node.xmi_id, tokens=1)
            for index, edge in enumerate(out_edges):
                net.add_transition(f"{identifier}/out{index}",
                                   {node.xmi_id: 1}, {edge.xmi_id: 1})
        elif isinstance(node, ActivityFinalNode):
            net.add_place(DONE_PLACE)
            for index, edge in enumerate(in_edges):
                net.add_transition(f"{identifier}/in{index}",
                                   {edge.xmi_id: edge.weight},
                                   {DONE_PLACE: 1})
        elif isinstance(node, FlowFinalNode):
            for index, edge in enumerate(in_edges):
                net.add_transition(f"{identifier}/in{index}",
                                   {edge.xmi_id: edge.weight}, {})
        elif isinstance(node, DecisionNode):
            source = in_edges[0]
            for index, edge in enumerate(out_edges):
                net.add_transition(f"{identifier}/branch{index}",
                                   {source.xmi_id: source.weight},
                                   {edge.xmi_id: 1})
        elif isinstance(node, MergeNode):
            sink = out_edges[0]
            for index, edge in enumerate(in_edges):
                net.add_transition(f"{identifier}/in{index}",
                                   {edge.xmi_id: edge.weight},
                                   {sink.xmi_id: 1})
        elif isinstance(node, (Action, ForkNode, JoinNode)):
            # implicit join of all inputs, implicit fork of all outputs
            pin_in = []
            pin_out = []
            if isinstance(node, Action):
                for pin in node.input_pins:
                    pin_in.extend(e for e in activity.edges if e.target is pin)
                for pin in node.output_pins:
                    pin_out.extend(e for e in activity.edges if e.source is pin)
            inputs = {e.xmi_id: e.weight for e in in_edges + pin_in}
            outputs = {e.xmi_id: 1 for e in out_edges + pin_out}
            net.add_transition(identifier, inputs, outputs)
        elif isinstance(node, ObjectNode):
            net.add_place(node.xmi_id)
            if isinstance(node, ActivityParameterNode) and node.is_input:
                pass  # inputs are seeded externally; place starts empty here
            for index, edge in enumerate(in_edges):
                net.add_transition(f"{identifier}/absorb{index}",
                                   {edge.xmi_id: edge.weight},
                                   {node.xmi_id: 1})
            for index, edge in enumerate(out_edges):
                net.add_transition(f"{identifier}/emit{index}",
                                   {node.xmi_id: 1}, {edge.xmi_id: 1})
        else:
            raise ActivityError(f"unmapped node kind {type(node).__name__}")

    return net


def engine_marking_to_net(marking: Marking) -> Marking:
    """Project an engine marking for comparison with net markings.

    The engine's post-final marking is empty; the net's is ``<done>``.
    Both are mapped to the empty tuple so the comparison in D3 treats
    termination uniformly.
    """
    return tuple((place, count) for place, count in marking
                 if place != DONE_PLACE)
