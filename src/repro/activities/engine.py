"""The token-game execution engine for UML 2.0 activities.

UML 2.0 "introduces token semantics for these Activity Diagrams that
move them semantically close to high-level Petri Nets" (the paper).
This engine implements that semantics operationally:

* tokens (control or object-valued) live on edges and in object-node
  pools;
* each node kind has a firing rule (actions implicitly join their
  inputs and fork their outputs; decision routes one token; join
  synchronizes; fork duplicates; final nodes sink);
* a *firing* is (node, variant): nodes with a genuine nondeterministic
  choice (decision branch, merge input, buffer routing) expose one
  variant per alternative, which both the deterministic scheduler and
  the exhaustive :func:`explore` build on — the same rules drive
  execution and state-space enumeration, so the Petri-net equivalence
  benchmark (D3) compares real semantics, not a re-implementation.

Action behaviors are ASL source or callables; input pin values are
bound to ASL variables named after the pins, and output pin variables
are collected after the behavior runs.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ActivityError
from .graph import Activity, ActivityEdge
from .nodes import (
    AcceptEventAction,
    Action,
    ActivityFinalNode,
    ActivityNode,
    ActivityParameterNode,
    DecisionNode,
    FlowFinalNode,
    ForkNode,
    InitialNode,
    JoinNode,
    MergeNode,
    ObjectNode,
    SendSignalAction,
)

#: Marker value for a control token.
CONTROL = object()


class Firing:
    """One enabled (node, variant) choice."""

    __slots__ = ("node", "variant", "order")

    def __init__(self, node: ActivityNode, variant: int, order: int):
        self.node = node
        self.variant = variant
        self.order = order

    def __repr__(self) -> str:
        return f"<Firing {self.node.name!r}#{self.variant}>"


class TokenEngine:
    """Executes one activity instance by playing the token game."""

    def __init__(self, activity: Activity,
                 env: Optional[Dict[str, Any]] = None,
                 signal_sink=None,
                 inputs: Optional[Dict[str, List[Any]]] = None,
                 seed: Optional[int] = None):
        activity.validate()
        self.activity = activity
        self.env: Dict[str, Any] = dict(env or {})
        self.signal_sink = signal_sink
        self.finished = False
        self.steps = 0
        self.fired_nodes: List[str] = []
        self.outputs: Dict[str, List[Any]] = {}
        # Trace plumbing (set by the cosim harness / ActivityRuntime).
        # Kinds are literal strings so this module never imports
        # repro.engine; test_trace_bus pins them to the constants.
        self.trace_bus = None
        self.trace_part = ""
        self.time = 0.0
        self._rng = random.Random(seed) if seed is not None else None
        self._edge_tokens: Dict[str, deque] = {
            edge.xmi_id: deque() for edge in activity.edges}
        self._pool: Dict[str, deque] = {}
        self._events: List[Tuple[str, Dict[str, Any]]] = []
        self._node_order: Dict[str, int] = {
            node.xmi_id: index for index, node in enumerate(activity.nodes)}
        self._in: Dict[str, Tuple[ActivityEdge, ...]] = {}
        self._out: Dict[str, Tuple[ActivityEdge, ...]] = {}
        for a_node in activity.all_nodes:
            self._in[a_node.xmi_id] = ()
            self._out[a_node.xmi_id] = ()
        for edge in activity.edges:
            self._in[edge.target.xmi_id] += (edge,)
            self._out[edge.source.xmi_id] += (edge,)
        # initial marking
        for node in activity.nodes:
            if isinstance(node, InitialNode):
                self._pool[node.xmi_id] = deque([CONTROL])
            elif isinstance(node, ObjectNode):
                self._pool[node.xmi_id] = deque()
                if isinstance(node, ActivityParameterNode) and node.is_input:
                    for value in (inputs or {}).get(node.name, ()):
                        self._pool[node.xmi_id].append(value)
                if isinstance(node, ActivityParameterNode) and not node.is_input:
                    self.outputs[node.name] = []

    def _incoming(self, node: ActivityNode) -> Tuple[ActivityEdge, ...]:
        return self._in[node.xmi_id]

    def _outgoing(self, node: ActivityNode) -> Tuple[ActivityEdge, ...]:
        return self._out[node.xmi_id]

    # ------------------------------------------------------------------
    # marking access
    # ------------------------------------------------------------------

    def tokens_on(self, edge: ActivityEdge) -> int:
        """Number of tokens currently on an edge."""
        return len(self._edge_tokens[edge.xmi_id])

    def tokens_in(self, node: ActivityNode) -> int:
        """Number of tokens pooled in an object/initial node."""
        return len(self._pool.get(node.xmi_id, ()))

    def marking_counts(self) -> Tuple[Tuple[str, int], ...]:
        """Canonical marking: sorted (location id, token count), nonzero only."""
        counts = [(edge_id, len(tokens))
                  for edge_id, tokens in self._edge_tokens.items() if tokens]
        counts += [(node_id, len(tokens))
                   for node_id, tokens in self._pool.items() if tokens]
        return tuple(sorted(counts))

    def set_marking(self, counts: Tuple[Tuple[str, int], ...]) -> None:
        """Overwrite the marking with control tokens (exploration use)."""
        for tokens in self._edge_tokens.values():
            tokens.clear()
        for tokens in self._pool.values():
            tokens.clear()
        for location, count in counts:
            store = self._edge_tokens.get(location)
            if store is None:
                store = self._pool.setdefault(location, deque())
            store.extend([CONTROL] * count)

    # ------------------------------------------------------------------
    # events (accept-event actions)
    # ------------------------------------------------------------------

    def deliver(self, event_name: str, **payload: Any) -> None:
        """Deliver an external event to waiting accept-event actions."""
        self._events.append((event_name, payload))

    # ------------------------------------------------------------------
    # enabling
    # ------------------------------------------------------------------

    def enabled_firings(self) -> List[Firing]:
        """All enabled (node, variant) firings, in deterministic order."""
        firings: List[Firing] = []
        if self.finished:
            return firings
        for node in self.activity.nodes:
            firings.extend(self._variants(node))
        firings.sort(key=lambda f: (f.order, f.variant))
        return firings

    def _variants(self, node: ActivityNode) -> List[Firing]:
        order = self._node_order[node.xmi_id]
        make = lambda variant: Firing(node, variant, order)

        if isinstance(node, InitialNode):
            if self.tokens_in(node):
                return [make(0)]
            return []

        if isinstance(node, (ActivityFinalNode, FlowFinalNode)):
            return [make(index)
                    for index, edge in enumerate(self._incoming(node))
                    if self.tokens_on(edge) >= edge.weight]

        if isinstance(node, ForkNode):
            edge = self._incoming(node)[0]
            return [make(0)] if self.tokens_on(edge) >= edge.weight else []

        if isinstance(node, JoinNode):
            if all(self.tokens_on(e) >= e.weight for e in self._incoming(node)):
                return [make(0)]
            return []

        if isinstance(node, DecisionNode):
            edge = self._incoming(node)[0]
            if self.tokens_on(edge) < edge.weight:
                return []
            token = self._edge_tokens[edge.xmi_id][0]
            branches = self._decision_branches(node, token)
            return [make(index) for index in branches]

        if isinstance(node, MergeNode):
            return [make(index)
                    for index, edge in enumerate(self._incoming(node))
                    if self.tokens_on(edge) >= edge.weight]

        if isinstance(node, ObjectNode) and not isinstance(node, Action):
            firings = []
            # variant encoding: 0..k-1 absorb from incoming edge i;
            # k..k+m-1 emit pooled token to outgoing edge j
            incoming = self._incoming(node)
            outgoing = self._outgoing(node)
            for index, edge in enumerate(incoming):
                if self.tokens_on(edge) >= edge.weight and self._has_capacity(node):
                    firings.append(make(index))
            if self.tokens_in(node):
                for index, _edge in enumerate(outgoing):
                    firings.append(make(len(incoming) + index))
            return firings

        if isinstance(node, Action):
            for edge in self._action_input_edges(node):
                if self.tokens_on(edge) < edge.weight:
                    return []
            if isinstance(node, AcceptEventAction):
                if not any(name == node.event for name, _ in self._events):
                    return []
            return [make(0)]

        return []

    def _decision_branches(self, node: DecisionNode, token: Any) -> List[int]:
        """Indices of outgoing edges whose guard accepts ``token``."""
        accepted: List[int] = []
        else_index: Optional[int] = None
        unguarded: List[int] = []
        for index, edge in enumerate(self._outgoing(node)):
            guard = edge.guard
            if guard is None:
                unguarded.append(index)
                continue
            if isinstance(guard, str) and guard.strip() == "else":
                else_index = index
                continue
            if self._guard_passes(guard, token):
                accepted.append(index)
        if accepted:
            return accepted
        if unguarded:
            return unguarded
        if else_index is not None:
            return [else_index]
        return []

    def _guard_passes(self, guard, token: Any) -> bool:
        if callable(guard):
            return bool(guard(self.env, token))
        from .. import asl

        scope = dict(self.env)
        scope["token"] = None if token is CONTROL else token
        return bool(asl.evaluate(guard, scope))

    def _has_capacity(self, node: ObjectNode) -> bool:
        if node.upper_bound is None:
            return True
        return self.tokens_in(node) < node.upper_bound

    def _action_input_edges(self, action: Action) -> List[ActivityEdge]:
        edges = list(self._incoming(action))
        for pin in action.input_pins:
            edges.extend(self._incoming(pin))
        return edges

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------

    def fire(self, firing: Firing) -> None:
        """Execute one firing (must come from :meth:`enabled_firings`)."""
        node, variant = firing.node, firing.variant
        self.steps += 1
        self.fired_nodes.append(node.name)
        bus = self.trace_bus
        if bus is not None and bus.engine_active:
            bus.emit("token", self.time, self.trace_part,
                     {"node": node.name, "variant": variant})

        if isinstance(node, InitialNode):
            self._pool[node.xmi_id].popleft()
            self._emit(self._outgoing(node)[0], CONTROL)
        elif isinstance(node, ActivityFinalNode):
            edge = self._incoming(node)[variant]
            self._consume(edge)
            self._terminate()
        elif isinstance(node, FlowFinalNode):
            self._consume(self._incoming(node)[variant])
        elif isinstance(node, ForkNode):
            token = self._consume(self._incoming(node)[0])
            for edge in self._outgoing(node):
                self._emit(edge, token)
        elif isinstance(node, JoinNode):
            value = CONTROL
            for edge in self._incoming(node):
                token = self._consume(edge)
                if token is not CONTROL:
                    value = token  # object token wins over control
            self._emit(self._outgoing(node)[0], value)
        elif isinstance(node, DecisionNode):
            token = self._consume(self._incoming(node)[0])
            self._emit(self._outgoing(node)[variant], token)
        elif isinstance(node, MergeNode):
            token = self._consume(self._incoming(node)[variant])
            self._emit(self._outgoing(node)[0], token)
        elif isinstance(node, Action):
            self._fire_action(node)
        elif isinstance(node, ObjectNode):
            incoming = self._incoming(node)
            if variant < len(incoming):
                token = self._consume(incoming[variant])
                self._pool[node.xmi_id].append(token)
                if isinstance(node, ActivityParameterNode) and not node.is_input:
                    self.outputs[node.name].append(
                        None if token is CONTROL else token)
            else:
                edge = self._outgoing(node)[variant - len(incoming)]
                token = self._pool[node.xmi_id].popleft()
                self._emit(edge, token)
        else:
            raise ActivityError(f"cannot fire node {node!r}")

    def _fire_action(self, action: Action) -> None:
        consumed: Dict[str, Any] = {}
        for edge in self._incoming(action):
            self._consume(edge)
        for pin in action.input_pins:
            for edge in self._incoming(pin):
                token = self._consume(edge)
                consumed[pin.name] = None if token is CONTROL else token

        if isinstance(action, AcceptEventAction):
            for index, (name, payload) in enumerate(self._events):
                if name == action.event:
                    del self._events[index]
                    consumed["event"] = payload
                    break

        produced = self._run_behavior(action, consumed)

        if isinstance(action, SendSignalAction) and self.signal_sink is not None:
            from ..asl import SentSignal

            self.signal_sink(SentSignal(action.signal, dict(consumed),
                                        action.target or None))

        for edge in self._outgoing(action):
            self._emit(edge, CONTROL)
        for pin in action.output_pins:
            value = produced.get(pin.name)
            for edge in self._outgoing(pin):
                self._emit(edge, value)

    def _run_behavior(self, action: Action,
                      consumed: Dict[str, Any]) -> Dict[str, Any]:
        behavior = action.behavior
        if behavior is None:
            # default: pass the first input through to every output pin
            first = next(iter(consumed.values()), None)
            return {pin.name: first for pin in action.output_pins}
        if callable(behavior):
            scope = dict(self.env)
            scope.update(consumed)
            result = behavior(scope)
            self._writeback(scope, consumed)
            if isinstance(result, dict):
                return result
            return {pin.name: scope.get(pin.name)
                    for pin in action.output_pins}
        from .. import asl

        scope = dict(self.env)
        scope.update(consumed)
        interpreter = asl.Interpreter(scope, signal_sink=self.signal_sink)
        interpreter.execute(behavior)
        self._writeback(scope, consumed)
        return {pin.name: scope.get(pin.name) for pin in action.output_pins}

    def _writeback(self, scope: Dict[str, Any],
                   consumed: Dict[str, Any]) -> None:
        for key, value in scope.items():
            if key in consumed:
                continue
            self.env[key] = value

    def _consume(self, edge: ActivityEdge) -> Any:
        tokens = self._edge_tokens[edge.xmi_id]
        if not tokens:
            raise ActivityError(f"no token to consume on {edge!r}")
        token = None
        for _ in range(edge.weight):
            token = tokens.popleft()
        return token

    def _emit(self, edge: ActivityEdge, token: Any) -> None:
        self._edge_tokens[edge.xmi_id].append(token)

    def _terminate(self) -> None:
        self.finished = True
        for tokens in self._edge_tokens.values():
            tokens.clear()
        for node_id, tokens in self._pool.items():
            tokens.clear()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def step(self) -> Optional[Firing]:
        """Fire one enabled firing (deterministic or seeded-random pick)."""
        firings = self.enabled_firings()
        if not firings:
            return None
        chosen = (self._rng.choice(firings) if self._rng is not None
                  else firings[0])
        self.fire(chosen)
        return chosen

    def run(self, max_steps: int = 100_000) -> int:
        """Fire until quiescence or termination; returns steps fired."""
        start = self.steps
        while not self.finished:
            if self.steps - start >= max_steps:
                raise ActivityError(
                    f"activity {self.activity.name!r} exceeded {max_steps} "
                    "steps (livelock?)")
            if self.step() is None:
                break
        return self.steps - start

    @property
    def is_quiescent(self) -> bool:
        """True when no firing is enabled."""
        return not self.enabled_firings()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Capture the complete token-game state (in-process snapshot).

        Token values are kept by reference (the :data:`CONTROL` marker
        included), so a snapshot round-trips exactly but is not a JSON
        document — same contract as the state-machine runtimes.
        """
        return {
            "edges": {edge_id: list(tokens)
                      for edge_id, tokens in self._edge_tokens.items()
                      if tokens},
            "pool": {node_id: list(tokens)
                     for node_id, tokens in self._pool.items() if tokens},
            "env": dict(self.env),
            "events": [(name, dict(payload))
                       for name, payload in self._events],
            "steps": self.steps,
            "fired_nodes": list(self.fired_nodes),
            "outputs": {name: list(values)
                        for name, values in self.outputs.items()},
            "finished": self.finished,
            "time": self.time,
            "rng": self._rng.getstate() if self._rng is not None else None,
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        """Reinstate a state captured by :meth:`snapshot` (exact replay)."""
        for tokens in self._edge_tokens.values():
            tokens.clear()
        for edge_id, tokens in snap["edges"].items():
            self._edge_tokens[edge_id].extend(tokens)
        for tokens in self._pool.values():
            tokens.clear()
        for node_id, tokens in snap["pool"].items():
            self._pool.setdefault(node_id, deque()).extend(tokens)
        self.env.clear()
        self.env.update(snap["env"])
        self._events = [(name, dict(payload))
                        for name, payload in snap["events"]]
        self.steps = snap["steps"]
        self.fired_nodes = list(snap["fired_nodes"])
        self.outputs = {name: list(values)
                        for name, values in snap["outputs"].items()}
        self.finished = snap["finished"]
        self.time = snap["time"]
        if snap["rng"] is not None:
            if self._rng is None:
                self._rng = random.Random()
            self._rng.setstate(snap["rng"])


def explore(activity: Activity, max_markings: int = 50_000,
            env: Optional[Dict[str, Any]] = None) -> set:
    """Exhaustively enumerate reachable markings of the token game.

    Fires every enabled (node, variant) alternative from every reachable
    marking — the activity-side state space compared against the Petri
    net reachability set in experiment D3.  Object values are abstracted
    to token counts, so this is exact for control-only activities.
    """
    engine = TokenEngine(activity, env=dict(env or {}))
    initial = engine.marking_counts()
    seen = {initial}
    frontier = [initial]
    while frontier:
        marking = frontier.pop()
        engine.finished = False
        engine.set_marking(marking)
        for firing in engine.enabled_firings():
            engine.finished = False
            engine.set_marking(marking)
            engine.fire(firing)
            successor = engine.marking_counts()
            if successor not in seen:
                if len(seen) >= max_markings:
                    raise ActivityError(
                        f"exploration exceeded {max_markings} markings")
                seen.add(successor)
                frontier.append(successor)
    return seen
