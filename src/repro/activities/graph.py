"""Activity graphs: the container for nodes and edges.

An :class:`Activity` owns :class:`ActivityNode` instances and the
:class:`ControlFlow`/:class:`ObjectFlow` edges between them, offers
builder helpers mirroring the node vocabulary, and validates the
structural well-formedness rules the token engine relies on.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Union

from ..errors import ActivityError
from ..metamodel.element import Element
from ..metamodel.namespaces import PackageableElement
from ..metamodel.types import TypeElement
from .nodes import (
    AcceptEventAction,
    Action,
    ActivityFinalNode,
    ActivityNode,
    ActivityParameterNode,
    Behavior,
    CentralBufferNode,
    ControlNode,
    DecisionNode,
    FlowFinalNode,
    ForkNode,
    InitialNode,
    InputPin,
    JoinNode,
    MergeNode,
    ObjectNode,
    OutputPin,
    Pin,
    SendSignalAction,
)

#: Edge guards: ASL expression text or a predicate over the engine env.
Guard = Union[str, Callable, None]


class ActivityEdge(Element):
    """Abstract directed edge of an activity graph."""

    _id_tag = "ActivityEdge"

    def __init__(self, source: ActivityNode, target: ActivityNode,
                 guard: Guard = None, weight: int = 1, name: str = ""):
        super().__init__()
        if weight < 1:
            raise ActivityError("edge weight must be >= 1")
        self.source = source
        self.target = target
        self.guard = guard
        self.weight = weight
        self.name = name

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.source.name!r} -> "
                f"{self.target.name!r}>")


class ControlFlow(ActivityEdge):
    """An edge carrying control tokens."""

    _id_tag = "ControlFlow"


class ObjectFlow(ActivityEdge):
    """An edge carrying object (data) tokens."""

    _id_tag = "ObjectFlow"


class Activity(PackageableElement):
    """A UML 2.0 activity: nodes plus flows, with token semantics."""

    _id_tag = "Activity"

    # -- content ----------------------------------------------------------

    @property
    def nodes(self) -> Tuple[ActivityNode, ...]:
        """Directly owned nodes (pins excluded — they live on actions)."""
        return self.owned_of_type(ActivityNode)

    @property
    def all_nodes(self) -> Tuple[ActivityNode, ...]:
        """All nodes including pins owned by actions."""
        return self.descendants_of_type(ActivityNode)

    @property
    def edges(self) -> Tuple[ActivityEdge, ...]:
        """Owned edges."""
        return self.owned_of_type(ActivityEdge)

    @property
    def actions(self) -> Tuple[Action, ...]:
        """Owned actions."""
        return self.owned_of_type(Action)

    def node(self, name: str) -> ActivityNode:
        """Lookup a directly owned node by name."""
        for candidate in self.nodes:
            if candidate.name == name:
                return candidate
        raise ActivityError(f"activity {self.name!r} has no node {name!r}")

    # -- builders ------------------------------------------------------------

    def _add_node(self, node: ActivityNode) -> ActivityNode:
        if node.name and any(n.name == node.name for n in self.nodes):
            raise ActivityError(
                f"activity {self.name!r} already has a node {node.name!r}")
        self._own(node)
        return node

    def add_initial(self, name: str = "initial") -> InitialNode:
        """Add the initial (control token source) node."""
        return self._add_node(InitialNode(name))  # type: ignore[return-value]

    def add_final(self, name: str = "final") -> ActivityFinalNode:
        """Add an activity-final (terminate everything) node."""
        return self._add_node(ActivityFinalNode(name))  # type: ignore[return-value]

    def add_flow_final(self, name: str = "flowFinal") -> FlowFinalNode:
        """Add a flow-final (sink one flow) node."""
        return self._add_node(FlowFinalNode(name))  # type: ignore[return-value]

    def add_action(self, name: str, behavior: Behavior = None) -> Action:
        """Add an opaque action."""
        return self._add_node(Action(name, behavior))  # type: ignore[return-value]

    def add_send_signal(self, name: str, signal: str = "",
                        target: str = "") -> SendSignalAction:
        """Add a send-signal action (``target`` = outbound port name)."""
        return self._add_node(SendSignalAction(name, signal, target))  # type: ignore[return-value]

    def add_accept_event(self, name: str, event: str = "") -> AcceptEventAction:
        """Add an accept-event action."""
        return self._add_node(AcceptEventAction(name, event))  # type: ignore[return-value]

    def add_fork(self, name: str = "fork") -> ForkNode:
        """Add a fork (parallel split) node."""
        return self._add_node(ForkNode(name))  # type: ignore[return-value]

    def add_join(self, name: str = "join") -> JoinNode:
        """Add a join (parallel synchronization) node."""
        return self._add_node(JoinNode(name))  # type: ignore[return-value]

    def add_decision(self, name: str = "decision") -> DecisionNode:
        """Add a decision (guarded branch) node."""
        return self._add_node(DecisionNode(name))  # type: ignore[return-value]

    def add_merge(self, name: str = "merge") -> MergeNode:
        """Add a merge (unsynchronized union) node."""
        return self._add_node(MergeNode(name))  # type: ignore[return-value]

    def add_buffer(self, name: str, type: Optional[TypeElement] = None,
                   upper_bound: Optional[int] = None) -> CentralBufferNode:
        """Add a central buffer node."""
        return self._add_node(  # type: ignore[return-value]
            CentralBufferNode(name, type, upper_bound))

    def add_parameter_node(self, name: str,
                           type: Optional[TypeElement] = None,
                           is_input: bool = True) -> ActivityParameterNode:
        """Add an activity parameter node."""
        return self._add_node(  # type: ignore[return-value]
            ActivityParameterNode(name, type, is_input))

    def flow(self, source: ActivityNode, target: ActivityNode,
             guard: Guard = None, weight: int = 1) -> ControlFlow:
        """Add a control flow edge."""
        edge = ControlFlow(source, target, guard, weight)
        self._own(edge)
        return edge

    def object_flow(self, source: ActivityNode, target: ActivityNode,
                    guard: Guard = None, weight: int = 1) -> ObjectFlow:
        """Add an object flow edge (endpoints must be object/action nodes)."""
        for endpoint in (source, target):
            if not isinstance(endpoint, (ObjectNode, Action)):
                raise ActivityError(
                    f"object flows connect object nodes/pins/actions, "
                    f"not {type(endpoint).__name__}")
        edge = ObjectFlow(source, target, guard, weight)
        self._own(edge)
        return edge

    def chain(self, *nodes: ActivityNode) -> Tuple[ControlFlow, ...]:
        """Connect nodes in sequence with control flows (convenience)."""
        created = []
        for source, target in zip(nodes, nodes[1:]):
            created.append(self.flow(source, target))
        return tuple(created)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ActivityError` on structural defects.

        Rules enforced (the ones the token engine depends on):
        initial nodes have no incoming and exactly one outgoing edge;
        final nodes have no outgoing edges; fork/decision have one
        incoming; join/merge have one outgoing; join has >= 2 incoming;
        fork has >= 2 outgoing; every edge endpoint belongs to this
        activity; object flows touch at least one object node.
        """
        owned = set(map(id, self.all_nodes))
        for edge in self.edges:
            if id(edge.source) not in owned or id(edge.target) not in owned:
                raise ActivityError(
                    f"{edge!r} references a node outside activity "
                    f"{self.name!r}")
        for node in self.nodes:
            n_in = len(node.incoming)
            n_out = len(node.outgoing)
            if isinstance(node, InitialNode):
                if n_in:
                    raise ActivityError(
                        f"initial node {node.name!r} must not have "
                        "incoming edges")
                if n_out != 1:
                    raise ActivityError(
                        f"initial node {node.name!r} must have exactly one "
                        f"outgoing edge, has {n_out}")
            elif isinstance(node, (ActivityFinalNode, FlowFinalNode)):
                if n_out:
                    raise ActivityError(
                        f"final node {node.name!r} must not have outgoing "
                        "edges")
                if not n_in:
                    raise ActivityError(
                        f"final node {node.name!r} is unreachable (no "
                        "incoming edges)")
            elif isinstance(node, ForkNode):
                if n_in != 1:
                    raise ActivityError(
                        f"fork {node.name!r} needs exactly 1 incoming edge")
                if n_out < 2:
                    raise ActivityError(
                        f"fork {node.name!r} needs >= 2 outgoing edges")
            elif isinstance(node, JoinNode):
                if n_out != 1:
                    raise ActivityError(
                        f"join {node.name!r} needs exactly 1 outgoing edge")
                if n_in < 2:
                    raise ActivityError(
                        f"join {node.name!r} needs >= 2 incoming edges")
            elif isinstance(node, DecisionNode):
                if n_in != 1:
                    raise ActivityError(
                        f"decision {node.name!r} needs exactly 1 incoming "
                        "edge")
                if n_out < 2:
                    raise ActivityError(
                        f"decision {node.name!r} needs >= 2 outgoing edges")
            elif isinstance(node, MergeNode):
                if n_out != 1:
                    raise ActivityError(
                        f"merge {node.name!r} needs exactly 1 outgoing edge")
                if n_in < 2:
                    raise ActivityError(
                        f"merge {node.name!r} needs >= 2 incoming edges")

    def __repr__(self) -> str:
        return (f"<Activity {self.name!r} ({len(self.nodes)} nodes, "
                f"{len(self.edges)} edges)>")
