"""Activity nodes: actions, control nodes, object nodes, pins.

UML 2.0 gave activities a token-flow semantics "semantically close to
high-level Petri Nets" (the paper, Section 2).  The node kinds defined
here are the vocabulary of that token game; the execution rules live in
:mod:`repro.activities.engine` and the formal Petri mapping in
:mod:`repro.activities.petri`.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Union

from ..errors import ActivityError
from ..metamodel.element import Element
from ..metamodel.namespaces import NamedElement
from ..metamodel.types import TypeElement

#: Node behaviors: ASL source text or a Python callable.
Behavior = Union[str, Callable, None]


class ActivityNode(NamedElement):
    """Abstract node of an activity graph."""

    _id_tag = "ActivityNode"

    @property
    def activity(self):
        """The owning activity (import-cycle-free duck lookup)."""
        from .graph import Activity  # local import: graph imports nodes

        node = self.owner
        while node is not None:
            if isinstance(node, Activity):
                return node
            node = node.owner
        return None

    @property
    def incoming(self) -> Tuple["Element", ...]:
        """Edges entering this node."""
        activity = self.activity
        if activity is None:
            return ()
        return tuple(e for e in activity.edges if e.target is self)

    @property
    def outgoing(self) -> Tuple["Element", ...]:
        """Edges leaving this node."""
        activity = self.activity
        if activity is None:
            return ()
        return tuple(e for e in activity.edges if e.source is self)


class ExecutableNode(ActivityNode):
    """A node that performs computation when it fires."""

    _id_tag = "ExecutableNode"


class Action(ExecutableNode):
    """An opaque action: the atomic unit of behavior.

    ``behavior`` is ASL source or a callable ``f(env) -> None``; the
    engine exposes input-pin values as ASL variables named after the
    pins and collects output-pin variables after execution.
    """

    _id_tag = "Action"

    def __init__(self, name: str = "", behavior: Behavior = None):
        super().__init__(name)
        self.behavior = behavior

    @property
    def input_pins(self) -> Tuple["InputPin", ...]:
        """Owned input pins, in declaration order."""
        return self.owned_of_type(InputPin)

    @property
    def output_pins(self) -> Tuple["OutputPin", ...]:
        """Owned output pins, in declaration order."""
        return self.owned_of_type(OutputPin)

    def add_input_pin(self, name: str,
                      type: Optional[TypeElement] = None) -> "InputPin":
        """Create and own an input pin."""
        if any(p.name == name for p in self.input_pins):
            raise ActivityError(
                f"action {self.name!r} already has input pin {name!r}")
        pin = InputPin(name, type)
        self._own(pin)
        return pin

    def add_output_pin(self, name: str,
                       type: Optional[TypeElement] = None) -> "OutputPin":
        """Create and own an output pin."""
        if any(p.name == name for p in self.output_pins):
            raise ActivityError(
                f"action {self.name!r} already has output pin {name!r}")
        pin = OutputPin(name, type)
        self._own(pin)
        return pin


class SendSignalAction(Action):
    """Fires a signal (routed to the engine's signal sink).

    ``target`` names the port the signal leaves through when the
    activity runs as a part behavior; empty means a self-send.
    """

    _id_tag = "SendSignalAction"

    def __init__(self, name: str = "", signal: str = "", target: str = ""):
        super().__init__(name)
        self.signal = signal or name
        self.target = target


class AcceptEventAction(Action):
    """Blocks until a matching external event is delivered to the engine."""

    _id_tag = "AcceptEventAction"

    def __init__(self, name: str = "", event: str = ""):
        super().__init__(name)
        self.event = event or name


class ControlNode(ActivityNode):
    """Abstract coordination node (no computation)."""

    _id_tag = "ControlNode"


class InitialNode(ControlNode):
    """Source of the initial control token."""

    _id_tag = "InitialNode"


class ActivityFinalNode(ControlNode):
    """Consuming a token here terminates the entire activity."""

    _id_tag = "ActivityFinalNode"


class FlowFinalNode(ControlNode):
    """Consuming a token here destroys just that flow."""

    _id_tag = "FlowFinalNode"


class ForkNode(ControlNode):
    """Duplicates an incoming token onto every outgoing edge."""

    _id_tag = "ForkNode"


class JoinNode(ControlNode):
    """Synchronizes: consumes one token from *every* incoming edge."""

    _id_tag = "JoinNode"


class DecisionNode(ControlNode):
    """Routes an incoming token to exactly one outgoing edge (guards)."""

    _id_tag = "DecisionNode"


class MergeNode(ControlNode):
    """Passes tokens from any incoming edge to the single outgoing edge."""

    _id_tag = "MergeNode"


class ObjectNode(ActivityNode):
    """A node that holds object (data) tokens."""

    _id_tag = "ObjectNode"

    def __init__(self, name: str = "", type: Optional[TypeElement] = None,
                 upper_bound: Optional[int] = None):
        super().__init__(name)
        self.type = type
        self.upper_bound = upper_bound  # None = unbounded


class CentralBufferNode(ObjectNode):
    """A buffer decoupling producers and consumers (a FIFO place)."""

    _id_tag = "CentralBufferNode"


class ActivityParameterNode(ObjectNode):
    """Carries activity inputs/outputs across the activity boundary."""

    _id_tag = "ActivityParameterNode"

    def __init__(self, name: str = "", type: Optional[TypeElement] = None,
                 is_input: bool = True):
        super().__init__(name, type)
        self.is_input = is_input


class Pin(ObjectNode):
    """An object node attached to an action."""

    _id_tag = "Pin"

    @property
    def action(self) -> Optional[Action]:
        """The owning action."""
        owner = self.owner
        return owner if isinstance(owner, Action) else None


class InputPin(Pin):
    """Receives object tokens consumed when the action fires."""

    _id_tag = "InputPin"


class OutputPin(Pin):
    """Emits object tokens produced by the action's behavior."""

    _id_tag = "OutputPin"
