"""Cosimulation: executing UML component models on the event kernel.

This is the paper's "early prototyping and inherent software
simulation" made concrete: a :class:`SystemSimulation` takes a top
component (whose parts are classes/components with state machine
classifier behaviors), wires the parts' ports along the model's
connectors, and executes everything over one
:class:`~repro.simulation.kernel.Simulator`.

Communication model: a state machine effect executes the ASL statement
``send Sig(arg=..) to "port";`` — the harness routes the signal through
the connector attached to that part's port, delivering it to the peer
part's state machine after the connector latency.  A ``send`` without a
target is a self-send (internal event).  Hardware and software parts
are treated identically — which is precisely the interchangeability
argument of Section 4.

Time: state machine *time events* (``after(n)``) advance on a fixed
quantum: a kernel tick wakes every ``quantum`` and advances each
runtime's local clock.  Deliveries also advance the target runtime to
the current simulation time first, so local clocks never run ahead of
the kernel.

Execution modes: with ``compile=True`` each part's state machine is
compiled once into a dispatch table of precompiled guard/effect
closures (:func:`repro.statemachines.flatten.compile_machine`) and
executed by the :class:`~repro.statemachines.flatten.CompiledRuntime`;
machines outside the compilable subset (deep history, deferral, change
triggers, ...) transparently fall back to the interpreter per part —
``compile_report`` says which parts compiled and why the rest did not.
Both modes are bit-identical in message traffic, states and contexts
(the lockstep equivalence tests assert this); compiled mode is simply
several times faster.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..asl import SentSignal
from ..errors import SimulationError
from ..metamodel.components import Component, Connector, ConnectorKind
from ..metamodel.classifiers import UmlClass
from ..perf import PERF
from ..statemachines.events import EventOccurrence
from ..statemachines.kernel import StateMachine
from ..statemachines.runtime import StateMachineRuntime
from ..statemachines.flatten import (
    CompiledRuntime,
    compile_fallback_reason,
    compile_machine,
)
from .kernel import Simulator

#: Either execution engine for a part's behavior.
PartRuntime = Union[StateMachineRuntime, CompiledRuntime]


class PartInstance:
    """One running part: its model property plus a live runtime."""

    __slots__ = ("name", "part_type", "runtime", "received", "sent")

    def __init__(self, name: str, part_type: UmlClass,
                 runtime: Optional[PartRuntime]):
        self.name = name
        self.part_type = part_type
        self.runtime = runtime
        self.received = 0
        self.sent = 0

    def state(self) -> Tuple[str, ...]:
        """The active leaf state names (empty for behavior-less parts)."""
        if self.runtime is None:
            return ()
        return self.runtime.active_leaf_names()

    def __repr__(self) -> str:
        return f"<PartInstance {self.name}: {self.part_type.name}>"


Route = Tuple[str, str, float]  # (peer part, peer port, latency)


class SystemSimulation:
    """Executes a component assembly as a discrete-event cosimulation."""

    def __init__(self, top: Component,
                 quantum: float = 1.0,
                 default_latency: float = 1.0,
                 latency_fn: Optional[Callable[[Connector], float]] = None,
                 context: Optional[Dict[str, Dict[str, Any]]] = None,
                 trace: bool = False,
                 strict_routing: bool = False,
                 compile: bool = False):
        self.top = top
        self.simulator = Simulator()
        self.quantum = quantum
        self.default_latency = default_latency
        self.latency_fn = latency_fn
        self.trace_enabled = trace
        self.strict_routing = strict_routing
        self.compile_enabled = compile
        self.trace: List[Tuple[float, str]] = []
        #: (time, sender, receiver, signal) for every delivered message
        self.message_log: List[Tuple[float, str, str, str]] = []
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.wall_time_s = 0.0
        self.parts: Dict[str, PartInstance] = {}
        #: part name -> engine choice: "compiled", "interpreter[: reason]",
        #: or "no behavior"
        self.compile_report: Dict[str, str] = {}
        self._routes: Dict[Tuple[str, str], List[Route]] = {}
        #: precompiled per-part port lookup: part -> {port: routes}
        self._part_routes: Dict[str, Dict[str, List[Route]]] = {}
        self._inward: Dict[str, List[Route]] = {}  # top port -> parts
        self._build_parts(context or {})
        self._build_routes()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _make_runtime(self, part_name: str, behavior: StateMachine,
                      initial_context: Dict[str, Any]) -> PartRuntime:
        sink = self._make_sink(part_name)
        if self.compile_enabled:
            reason = compile_fallback_reason(behavior)
            if reason is None:
                self.compile_report[part_name] = "compiled"
                PERF.incr("cosim.compiled_parts")
                return CompiledRuntime(compile_machine(behavior),
                                       context=initial_context,
                                       signal_sink=sink)
            self.compile_report[part_name] = f"interpreter: {reason}"
            PERF.incr("cosim.interpreted_parts")
        else:
            self.compile_report[part_name] = "interpreter"
        return StateMachineRuntime(behavior, context=initial_context,
                                   signal_sink=sink)

    def _build_parts(self, contexts: Dict[str, Dict[str, Any]]) -> None:
        for part in self.top.parts:
            part_type = part.type
            if not isinstance(part_type, UmlClass):
                continue
            behavior = part_type.classifier_behavior
            runtime: Optional[PartRuntime] = None
            if isinstance(behavior, StateMachine):
                initial_context = dict(contexts.get(part.name, {}))
                for attribute in part_type.all_attributes():
                    if attribute.name not in initial_context \
                            and attribute.default_value is not None:
                        initial_context[attribute.name] = \
                            attribute.default_value
                runtime = self._make_runtime(part.name, behavior,
                                             initial_context)
            else:
                self.compile_report[part.name] = "no behavior"
            self.parts[part.name] = PartInstance(part.name, part_type,
                                                 runtime)
        if not self.parts:
            raise SimulationError(
                f"component {self.top.name!r} has no executable parts")
        for instance in self.parts.values():
            if instance.runtime is not None:
                instance.runtime.start()

    def _connector_latency(self, connector: Connector) -> float:
        if self.latency_fn is not None:
            return self.latency_fn(connector)
        return self.default_latency

    def _build_routes(self) -> None:
        part_of_port: Dict[int, str] = {}
        for part in self.top.parts:
            part_type = part.type
            if isinstance(part_type, Component):
                for port in part_type.ports:
                    part_of_port[id(port)] = part.name

        for connector in self.top.connectors:
            latency = self._connector_latency(connector)
            end_a, end_b = connector.ends
            name_a = end_a.part.name if end_a.part is not None else None
            name_b = end_b.part.name if end_b.part is not None else None
            if connector.kind is ConnectorKind.DELEGATION:
                # outer port (no part) -> inner part port
                outer = end_a if name_a is None else end_b
                inner = end_b if name_a is None else end_a
                if inner.part is None:
                    raise SimulationError(
                        f"delegation connector {connector!r} has no part end")
                self._inward.setdefault(outer.port.name, []).append(
                    (inner.part.name, inner.port.name, latency))
                continue
            if name_a is None or name_b is None:
                raise SimulationError(
                    f"assembly connector {connector!r} must reference parts")
            self._routes.setdefault((name_a, end_a.port.name), []).append(
                (name_b, end_b.port.name, latency))
            self._routes.setdefault((name_b, end_b.port.name), []).append(
                (name_a, end_a.port.name, latency))
        # flatten into per-part lookup tables: the send hot path then
        # does two dict gets instead of building a tuple key per signal
        for (part_name, port_name), routes in self._routes.items():
            self._part_routes.setdefault(part_name, {})[port_name] = routes
        for part_name in self.parts:
            self._part_routes.setdefault(part_name, {})

    # ------------------------------------------------------------------
    # signal routing
    # ------------------------------------------------------------------

    def _make_sink(self, part_name: str) -> Callable[[SentSignal], None]:
        def sink(sent: SentSignal) -> None:
            self.parts[part_name].sent += 1
            if sent.target is None:
                # self-send: schedule as an internal event, zero latency
                self._schedule_delivery(part_name, sent.signal,
                                        sent.arguments, 0.0,
                                        sender=part_name)
                return
            port_name = str(sent.target)
            routes = self._part_routes[part_name].get(port_name)
            if not routes:
                if self.strict_routing:
                    raise SimulationError(
                        f"part {part_name!r} sent {sent.signal!r} to port "
                        f"{port_name!r}, but no connector is attached")
                # dangling output: drop (counted), like an unconnected pin
                self.messages_dropped += 1
                if self.trace_enabled:
                    self.trace.append(
                        (self.simulator.now,
                         f"{sent.signal} dropped at {part_name}.{port_name}"))
                return
            for peer_part, _peer_port, latency in routes:
                self._schedule_delivery(peer_part, sent.signal,
                                        sent.arguments, latency,
                                        sender=part_name)
        return sink

    def _schedule_delivery(self, part_name: str, signal: str,
                           arguments: Dict[str, Any],
                           latency: float,
                           sender: str = "env") -> None:
        def deliver() -> None:
            instance = self.parts[part_name]
            if instance.runtime is None:
                return
            self._sync_runtime(instance)
            instance.received += 1
            self.messages_delivered += 1
            self.message_log.append(
                (self.simulator.now, sender, part_name, signal))
            if self.trace_enabled:
                self.trace.append(
                    (self.simulator.now, f"{signal} -> {part_name}"))
            instance.runtime.dispatch(
                EventOccurrence.signal(signal, **arguments))
        self.simulator.schedule(latency, deliver)

    def _sync_runtime(self, instance: PartInstance) -> None:
        runtime = instance.runtime
        if runtime is not None and runtime.time < self.simulator.now:
            runtime.advance_time(self.simulator.now - runtime.time)

    def _sync_all(self) -> None:
        for instance in self.parts.values():
            self._sync_runtime(instance)

    # ------------------------------------------------------------------
    # external stimulus + execution
    # ------------------------------------------------------------------

    def send(self, part_name: str, signal: str, delay: float = 0.0,
             **arguments: Any) -> None:
        """Inject an external signal into a named part."""
        if part_name not in self.parts:
            raise SimulationError(f"unknown part {part_name!r}")
        self._schedule_delivery(part_name, signal, arguments, delay)

    def send_to_port(self, port_name: str, signal: str, delay: float = 0.0,
                     **arguments: Any) -> None:
        """Inject a signal through one of the top component's own ports."""
        routes = self._inward.get(port_name)
        if not routes:
            raise SimulationError(
                f"top component has no delegated port {port_name!r}")
        for part_name, _inner_port, latency in routes:
            self._schedule_delivery(part_name, signal, arguments,
                                    delay + latency)

    def run(self, until: float) -> "SystemSimulation":
        """Run the cosimulation up to simulated time ``until`` (chainable)."""
        start = _time.perf_counter()
        events_before = self.simulator.events_processed
        self.simulator.every(self.quantum, self._sync_all, until=until)
        self.simulator.run(until=until)
        for instance in self.parts.values():
            if instance.runtime is not None \
                    and instance.runtime.time < until:
                instance.runtime.advance_time(
                    until - instance.runtime.time)
        elapsed = _time.perf_counter() - start
        self.wall_time_s += elapsed
        PERF.observe("cosim.run_wall_s", elapsed)
        PERF.incr("cosim.kernel_events",
                  self.simulator.events_processed - events_before)
        return self

    def state_snapshot(self) -> Dict[str, Tuple[str, ...]]:
        """Active leaf states of every part."""
        return {name: instance.state()
                for name, instance in sorted(self.parts.items())}

    def context_of(self, part_name: str) -> Dict[str, Any]:
        """The variable context of a part's state machine."""
        runtime = self.parts[part_name].runtime
        if runtime is None:
            raise SimulationError(f"part {part_name!r} has no behavior")
        return runtime.context

    def stats(self) -> Dict[str, Any]:
        """Execution statistics: engine mix, traffic, and throughput."""
        compiled = sum(1 for report in self.compile_report.values()
                       if report == "compiled")
        events = self.simulator.events_processed
        return {
            "mode": "compiled" if self.compile_enabled else "interpreted",
            "parts": len(self.parts),
            "compiled_parts": compiled,
            "kernel_events": events,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "wall_s": self.wall_time_s,
            "events_per_s": (round(events / self.wall_time_s)
                             if self.wall_time_s > 0 else 0),
        }

    def __repr__(self) -> str:
        return (f"<SystemSimulation {self.top.name!r} parts="
                f"{len(self.parts)} t={self.simulator.now}>")
