"""Cosimulation: executing UML component models on the event kernel.

This is the paper's "early prototyping and inherent software
simulation" made concrete: a :class:`SystemSimulation` takes a top
component (whose parts are classes/components with classifier
behaviors), wires the parts' ports along the model's connectors, and
executes everything over one
:class:`~repro.simulation.kernel.Simulator`.

Execution core (PR 3): the harness speaks only the
:class:`~repro.engine.ExecutionEngine` protocol —
``start``/``send``/``step``/``active_configuration``/``checkpoint``/
``restore`` — and resolves each part's classifier behavior to an engine
through the :mod:`repro.engine.registry`.  A part whose behavior is a
state machine runs on the interpreter (or, with ``compile=True``, the
dispatch-table :class:`~repro.statemachines.flatten.CompiledRuntime`
when the machine is in the compilable subset); a part whose behavior is
an :class:`~repro.activities.Activity` runs on the token-game
:class:`~repro.activities.ActivityRuntime` — under the *same*
scheduler, fault injector, degradation policies and
checkpoint/restore.  There is no engine-type dispatch here.

Observation: every routed/delivered/dropped message, every fault
injection and every quarantine/restart is emitted as a typed
:class:`~repro.engine.TraceEvent` on the simulation's
:class:`~repro.engine.TraceBus` (``bus`` attribute).  The message log
and the resilience quarantine accounting are plain bus subscribers;
engine-level events (RTC steps, transitions, state entries/exits,
token firings) flow on the same bus when a subscriber asks for them.
``bus=False`` disables the bus entirely (benchmark mode: no message
log, no quarantine-drop accounting); passing a
:class:`~repro.engine.TraceBus` shares one stream across observers
(note: the harness's own subscribers then see every event on that bus,
so avoid sharing one bus between concurrently running simulations).

Communication model: a behavior executes ``send Sig(arg=..) to
"port";`` (state machines) or fires a
:class:`~repro.activities.SendSignalAction` with a ``target`` port
(activities) — the harness routes the signal through the connector
attached to that part's port, delivering it to the peer part's engine
after the connector latency.  A ``send`` without a target is a
self-send (internal event).  Hardware and software parts are treated
identically — which is precisely the interchangeability argument of
Section 4.

Time: engine time triggers advance on a fixed quantum: a kernel tick
wakes every ``quantum`` and steps each engine's local clock to the
kernel's absolute time.  Deliveries also advance the target engine
first, so local clocks never run ahead of the kernel.

Observability (PR 4): ``coverage=True``, ``profile=True`` and
``flight_recorder=N`` attach the :mod:`repro.observability`
subscribers (functional coverage, the deterministic profiler, the
post-mortem ring buffer) to the bus before the engines start; the
wired suite is exposed as :attr:`observability`.  ``causality=True``
(PR 9) additionally attaches a
:class:`~repro.observability.CausalIndex` and flips the bus into
causal mode, so every emitted record carries the ordinal of the record
that caused it (see docs/TRACING.md).  ``incident_hooks``
fire on every escaping kernel error and quarantine — that is how the
flight recorder auto-dumps its black box.

Resilience (PR 2): a seeded
:class:`~repro.faults.FaultCampaign` attached via ``faults=`` wraps
every connector hop in a deterministic
:class:`~repro.faults.FaultInjector`; ``on_part_error`` selects what
happens when a part's behavior raises (``"raise"`` propagates,
``"quarantine"`` isolates the part, ``"restart"`` rebuilds its engine
up to ``max_restarts`` times, then quarantines); everything that
happened is recorded in :attr:`resilience`
(:class:`~repro.faults.ResilienceReport`).  :meth:`checkpoint` /
:meth:`restore` round-trip the *entire* simulation state — kernel
clock and queue, every part's engine checkpoint, the trace-bus ordinal
— so campaigns can snapshot, inject and roll back.  The harness is
also a context manager: leaving the ``with`` block closes the kernel
so no campaign leaks scheduled work into the next run.

Supervised rollback recovery (PR 5): ``checkpoint_interval=T`` arms
periodic per-part snapshots (the exact-replay engine checkpoints), and
``on_part_error="restore"`` rolls a failing part back to its last good
snapshot — keeping everything it learned — through the
:class:`~repro.simulation.supervisor.Supervisor` escalation chain
(restore up to ``max_restores`` times, then restart up to
``max_restarts``, then quarantine).  Every decision is emitted as a
typed ``supervisor_decision`` trace event, and the rollback itself as
``part_restored``, so recovery is byte-comparable across engines.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..asl import SentSignal
from ..engine import (
    CHECKPOINT,
    ENGINE_DEGRADED,
    MESSAGE_DELIVERED,
    MESSAGE_DROPPED,
    MESSAGE_ROUTED,
    PART_QUARANTINED,
    PART_RESTARTED,
    PART_RESTORED,
    SUPERVISOR_DECISION,
    BatchGroup,
    ExecutionEngine,
    TraceBus,
    TraceEvent,
    build_batched_binding,
    build_engine_factory,
    plan_batch_groups,
)
from ..errors import ReproError, SimulationError
from ..faults import FaultCampaign, FaultInjector, ResilienceReport
from ..metamodel.components import Component, Connector, ConnectorKind
from ..metamodel.classifiers import UmlClass
from ..perf import PERF
from .kernel import Simulator
from .supervisor import Supervisor

#: Valid part-error policies.
PART_ERROR_POLICIES = ("raise", "quarantine", "restart", "restore")

#: Valid explicit engine selections (``engine=`` constructor argument).
ENGINE_MODES = ("interpreted", "compiled", "batched")


class PartInstance:
    """One running part: its model property plus a live engine."""

    __slots__ = ("name", "part_type", "runtime", "received", "sent")

    def __init__(self, name: str, part_type: UmlClass,
                 runtime: Optional[ExecutionEngine]):
        self.name = name
        self.part_type = part_type
        self.runtime = runtime
        self.received = 0
        self.sent = 0

    def state(self) -> Tuple[str, ...]:
        """The active configuration (empty for behavior-less parts)."""
        if self.runtime is None:
            return ()
        return self.runtime.active_configuration()

    def __repr__(self) -> str:
        return f"<PartInstance {self.name}: {self.part_type.name}>"


Route = Tuple[str, str, float, str]  # (peer part, peer port, latency, conn)


class SystemSimulation:
    """Executes a component assembly as a discrete-event cosimulation."""

    def __init__(self, top: Component,
                 quantum: float = 1.0,
                 default_latency: float = 1.0,
                 latency_fn: Optional[Callable[[Connector], float]] = None,
                 context: Optional[Dict[str, Dict[str, Any]]] = None,
                 trace: bool = False,
                 strict_routing: bool = False,
                 compile: bool = False,
                 engine: Optional[str] = None,
                 batch_min: int = 2,
                 faults: Optional[FaultCampaign] = None,
                 fault_seed: Optional[int] = None,
                 on_part_error: str = "raise",
                 max_restarts: int = 3,
                 max_restores: int = 3,
                 checkpoint_interval: Optional[float] = None,
                 max_queue: Optional[int] = None,
                 overflow_policy: str = "raise",
                 bus: Any = None,
                 coverage: bool = False,
                 profile: bool = False,
                 flight_recorder: int = 0,
                 flight_dump: Optional[str] = None,
                 causality: bool = False,
                 properties: Any = None,
                 on_violation: str = "incident"):
        if on_part_error not in PART_ERROR_POLICIES:
            raise SimulationError(
                f"unknown on_part_error policy {on_part_error!r}; "
                f"choose from {PART_ERROR_POLICIES}")
        if engine is not None and engine not in ENGINE_MODES:
            raise SimulationError(
                f"unknown engine {engine!r}; choose from {ENGINE_MODES}")
        if batch_min < 2:
            raise SimulationError(
                f"batch_min must be at least 2, got {batch_min}")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise SimulationError(
                f"checkpoint_interval must be positive, "
                f"got {checkpoint_interval}")
        self.top = top
        self.simulator = Simulator(max_queue=max_queue,
                                   overflow_policy=overflow_policy)
        self.quantum = quantum
        self.default_latency = default_latency
        self.latency_fn = latency_fn
        self.trace_enabled = trace
        self.strict_routing = strict_routing
        #: resolved engine selection: ``engine=`` wins over the legacy
        #: ``compile`` flag ("batched" implies the compiled fast path
        #: for parts that cannot batch)
        self.engine_mode = engine if engine is not None \
            else ("compiled" if compile else "interpreted")
        self.compile_enabled = self.engine_mode in ("compiled", "batched")
        self.batch_min = batch_min
        #: batch groups in first-member order (empty unless batched)
        self.batch_groups: List[BatchGroup] = []
        #: part name -> why it degraded out of the batched engine
        self.batch_degraded: Dict[str, str] = {}
        self._batch_plan: Dict[str, BatchGroup] = {}
        #: batched part name -> (group, lane index): the fused fast path
        self._lane_map: Dict[str, Tuple[BatchGroup, int]] = {}
        self._nonbatched: List[PartInstance] = []
        self._fused = False
        self.on_part_error = on_part_error
        self.max_restarts = max_restarts
        self.max_restores = max_restores
        self.checkpoint_interval = checkpoint_interval
        #: the escalation chain deciding restore/restart/quarantine
        self.supervisor = Supervisor(on_part_error,
                                     max_restores=max_restores,
                                     max_restarts=max_restarts)
        #: part name -> last good recovery snapshot
        #: ({"t", "runtime", "received", "sent"})
        self._part_snapshots: Dict[str, Dict[str, Any]] = {}
        self.trace: List[Tuple[float, str]] = []
        #: (time, sender, receiver, signal) for every delivered message
        #: (maintained by a bus subscriber; empty with ``bus=False``)
        self.message_log: List[Tuple[float, str, str, str]] = []
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.wall_time_s = 0.0
        self.parts: Dict[str, PartInstance] = {}
        #: part name -> engine choice: "compiled", "interpreter[: reason]",
        #: "token-engine", or "no behavior"
        self.compile_report: Dict[str, str] = {}
        #: structured record of faults injected and failures survived
        self.resilience = ResilienceReport()
        # bus=None -> fresh bus; bus=False -> disabled; else shared bus.
        if bus is False:
            self._bus: Optional[TraceBus] = None
        elif bus is None:
            self._bus = TraceBus()
        elif isinstance(bus, TraceBus):
            self._bus = bus
        else:
            raise SimulationError(
                f"bus must be None, False or a TraceBus, got {bus!r}")
        #: the harness's own subscriptions (cancellable, e.g. to measure
        #: the cost of a bus with zero subscribers)
        self._builtin_subscriptions: Tuple[Any, ...] = ()
        if self._bus is not None:
            self._builtin_subscriptions = (
                self._bus.subscribe(self._record_delivery,
                                    kinds=(MESSAGE_DELIVERED,)),
                self._bus.subscribe(self._record_drop,
                                    kinds=(MESSAGE_DROPPED,)),
            )
        #: callbacks fired as ``hook(reason, detail)`` when a
        #: SimulationError escapes :meth:`run` or a part is quarantined
        #: (the flight recorder's auto-dump registers here); hook
        #: failures are swallowed — post-mortem machinery must never
        #: mask the original incident.
        self.incident_hooks: List[Callable[[str, str], None]] = []
        #: the attached ObservabilitySuite (None unless any of
        #: coverage/profile/flight_recorder was requested)
        self.observability: Any = None
        self._injector: Optional[FaultInjector] = None
        self._quarantined: set = set()
        #: part name -> zero-arg factory rebuilding a fresh engine
        self._part_factories: Dict[str, Callable[[], ExecutionEngine]] = {}
        self._routes: Dict[Tuple[str, str], List[Route]] = {}
        #: precompiled per-part port lookup: part -> {port: routes}
        self._part_routes: Dict[str, Dict[str, List[Route]]] = {}
        self._inward: Dict[str, List[Route]] = {}  # top port -> parts
        # Order matters: build every part's engine, wire the routes,
        # attach faults, and only then start the engines — a behavior
        # may send from its initial step (an activity's first token run,
        # a state entry action) and that send must route and be subject
        # to the campaign like any other.
        self._build_parts(context or {})
        # Fused delivery needs lanes to sweep and an unbounded queue —
        # coalesced messages do not occupy individual queue slots, so a
        # bounded kernel falls back to one event per message to keep
        # backpressure accounting identical to the serial engines.
        self._fused = bool(self._lane_map) \
            and self.simulator.max_queue is None
        self._nonbatched = [instance for name, instance in self.parts.items()
                            if name not in self._lane_map]
        self._build_routes()
        if faults is not None:
            self.attach_faults(faults, seed=fault_seed)
        # Observability subscribers attach before the engines start so
        # the initial configuration entries land in coverage/profiles.
        if coverage or profile or flight_recorder or causality:
            from ..observability import ObservabilitySuite

            self.observability = ObservabilitySuite(
                self, coverage=coverage, profile=profile,
                flight_recorder=flight_recorder, flight_dump=flight_dump,
                causality=causality)
        #: the attached online PropertyChecker (None unless properties=
        #: was given).  Attached after observability so the flight
        #: recorder sees each witnessing event *before* the nested
        #: property_violation it provokes — post-mortems read causally.
        self.property_checker: Any = None
        if properties is not None:
            if self._bus is None:
                raise SimulationError(
                    "properties= needs the trace bus; it cannot be "
                    "combined with bus=False")
            from ..properties import PropertyChecker

            self.property_checker = PropertyChecker(
                properties, self._bus, simulation=self,
                on_violation=on_violation)
        self._start_parts()
        # Baseline recovery snapshot: with periodic checkpoints armed or
        # the restore policy selected, every part has a last-good
        # snapshot from the moment it started — a failure before the
        # first interval still rolls back instead of cold-restarting.
        if checkpoint_interval is not None or on_part_error == "restore":
            self.take_part_checkpoints()

    # ------------------------------------------------------------------
    # bus + built-in subscribers
    # ------------------------------------------------------------------

    @property
    def bus(self) -> Optional[TraceBus]:
        """The simulation's trace bus (None when disabled)."""
        return self._bus

    def _record_delivery(self, event: TraceEvent) -> None:
        self.message_log.append((event.t, event.data["sender"], event.part,
                                 event.data["signal"]))

    def _record_drop(self, event: TraceEvent) -> None:
        if event.data.get("reason") == "quarantined":
            self.resilience.bump("quarantine_dropped")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _make_runtime(self, part_name: str, behavior: Any,
                      initial_context: Dict[str, Any]
                      ) -> Optional[ExecutionEngine]:
        """Resolve a behavior to an engine via the registry; None when
        no registered engine executes it."""
        group = self._batch_plan.get(part_name)
        if group is not None:
            binding = build_batched_binding(
                group, part_name, initial_context,
                self._make_sink(part_name))
        else:
            binding = build_engine_factory(
                behavior, context=initial_context,
                signal_sink=self._make_sink(part_name),
                prefer_compiled=self.compile_enabled)
        if binding is None:
            return None
        label, build = binding
        self.compile_report[part_name] = label
        bus = self._bus

        def factory(_build=build, _name=part_name,
                    _bus=bus) -> ExecutionEngine:
            runtime = _build()
            runtime.trace_bus = _bus
            runtime.trace_part = _name
            return runtime
        self._part_factories[part_name] = factory
        runtime = factory()
        if group is not None:
            self._lane_map[part_name] = (group, runtime.lane)
        return runtime

    def _build_parts(self, contexts: Dict[str, Dict[str, Any]]) -> None:
        if self.engine_mode == "batched":
            behaviors = {
                part.name: part.type.classifier_behavior
                for part in self.top.parts
                if isinstance(part.type, UmlClass)}
            self._batch_plan, self.batch_degraded, self.batch_groups = \
                plan_batch_groups(behaviors, self.batch_min,
                                  trace_bus=self._bus)
        for part in self.top.parts:
            part_type = part.type
            if not isinstance(part_type, UmlClass):
                continue
            behavior = part_type.classifier_behavior
            initial_context = dict(contexts.get(part.name, {}))
            for attribute in part_type.all_attributes():
                if attribute.name not in initial_context \
                        and attribute.default_value is not None:
                    initial_context[attribute.name] = attribute.default_value
            runtime = self._make_runtime(part.name, behavior, initial_context)
            if runtime is None:
                self.compile_report[part.name] = "no behavior"
            self.parts[part.name] = PartInstance(part.name, part_type,
                                                 runtime)
        if not self.parts:
            raise SimulationError(
                f"component {self.top.name!r} has no executable parts")
        if self.engine_mode == "batched":
            for group in self.batch_groups:
                PERF.observe("batch.occupancy", group.width)
            bus = self._bus
            if bus is not None and self.batch_degraded \
                    and ENGINE_DEGRADED in bus.active_kinds:
                for name, reason in sorted(self.batch_degraded.items()):
                    bus.emit(ENGINE_DEGRADED, 0.0, name,
                             {"reason": reason,
                              "engine": self.compile_report.get(
                                  name, "no behavior")})

    def _start_parts(self) -> None:
        for instance in self.parts.values():
            if instance.runtime is not None:
                instance.runtime.start()

    def _connector_latency(self, connector: Connector) -> float:
        if self.latency_fn is not None:
            return self.latency_fn(connector)
        return self.default_latency

    def _build_routes(self) -> None:
        part_of_port: Dict[int, str] = {}
        for part in self.top.parts:
            part_type = part.type
            if isinstance(part_type, Component):
                for port in part_type.ports:
                    part_of_port[id(port)] = part.name

        for connector in self.top.connectors:
            latency = self._connector_latency(connector)
            conn_name = connector.name
            end_a, end_b = connector.ends
            name_a = end_a.part.name if end_a.part is not None else None
            name_b = end_b.part.name if end_b.part is not None else None
            if connector.kind is ConnectorKind.DELEGATION:
                # outer port (no part) -> inner part port
                outer = end_a if name_a is None else end_b
                inner = end_b if name_a is None else end_a
                if inner.part is None:
                    raise SimulationError(
                        f"delegation connector {connector!r} has no part end")
                self._inward.setdefault(outer.port.name, []).append(
                    (inner.part.name, inner.port.name, latency, conn_name))
                continue
            if name_a is None or name_b is None:
                raise SimulationError(
                    f"assembly connector {connector!r} must reference parts")
            self._routes.setdefault((name_a, end_a.port.name), []).append(
                (name_b, end_b.port.name, latency, conn_name))
            self._routes.setdefault((name_b, end_b.port.name), []).append(
                (name_a, end_a.port.name, latency, conn_name))
        # flatten into per-part lookup tables: the send hot path then
        # does two dict gets instead of building a tuple key per signal
        for (part_name, port_name), routes in self._routes.items():
            self._part_routes.setdefault(part_name, {})[port_name] = routes
        for part_name in self.parts:
            self._part_routes.setdefault(part_name, {})

    # ------------------------------------------------------------------
    # fault injection & degradation
    # ------------------------------------------------------------------

    def attach_faults(self, campaign: FaultCampaign,
                      seed: Optional[int] = None) -> FaultInjector:
        """Attach a seeded fault campaign to the routing layer.

        Replaces any previously attached campaign.  Returns the
        injector (its report is this simulation's :attr:`resilience`).
        """
        if not isinstance(campaign, FaultCampaign):
            raise SimulationError(
                f"faults must be a FaultCampaign, got {campaign!r}")
        self._injector = FaultInjector(self, campaign, seed=seed,
                                       report=self.resilience)
        return self._injector

    @property
    def injector(self) -> Optional[FaultInjector]:
        """The attached fault injector, if any."""
        return self._injector

    @property
    def quarantined_parts(self) -> Tuple[str, ...]:
        """Names of quarantined parts, sorted."""
        return tuple(sorted(self._quarantined))

    def _part_failed(self, part_name: str, error: BaseException) -> None:
        """Apply the ``on_part_error`` policy to a part failure.

        Everything except ``"raise"`` goes through the
        :class:`~repro.simulation.supervisor.Supervisor` escalation
        chain (restore → restart → quarantine, per-part budgets); the
        decision is emitted as a ``supervisor_decision`` trace event
        before the chosen action executes.
        """
        if self.on_part_error == "raise":
            raise error
        now = self.simulator.now
        detail = f"{type(error).__name__}: {error}"
        has_snapshot = part_name in self._part_snapshots
        action, label = self.supervisor.decide(part_name, has_snapshot)
        if self._bus is not None \
                and SUPERVISOR_DECISION in self._bus.active_kinds:
            data = {"action": action, "label": label, "reason": detail}
            data.update(self.supervisor.budgets(part_name))
            record = self._bus.emit(SUPERVISOR_DECISION, now, part_name,
                                    data)
            if self._bus.causal and record is not None:
                # the restore/restart/quarantine record descends from
                # this decision
                self._bus.cause = record.ordinal
        self.resilience.record_part_failure(now, part_name, detail, label)
        if action == "restore":
            self.resilience.record_restore(part_name)
            self._restore_part(part_name, detail)
            return
        if action == "restart":
            self.resilience.record_restart(part_name)
            self._restart_part(part_name, detail)
            return
        self.resilience.record_quarantine(now, part_name)
        self._quarantined.add(part_name)
        if self._bus is not None:
            self._bus.emit(PART_QUARANTINED, now, part_name,
                           {"reason": detail})
        if self.trace_enabled:
            self.trace.append(
                (now, f"{part_name} quarantined after {detail}"))
        self._fire_incident("part_quarantined", f"{part_name}: {detail}")

    def _fire_incident(self, reason: str, detail: str) -> None:
        """Run the registered incident hooks, swallowing hook errors."""
        for hook in list(self.incident_hooks):
            try:
                hook(reason, detail)
            except Exception:  # noqa: BLE001 - best-effort post-mortem
                PERF.incr("cosim.incident_hook_errors")

    def _restart_part(self, part_name: str, detail: str = "") -> None:
        """Rebuild a part's engine in its initial configuration.

        The fresh engine's clock starts at the current simulation time
        so it does not replay a burst of catch-up time triggers.
        """
        instance = self.parts[part_name]
        runtime = self._part_factories[part_name]()
        runtime.time = self.simulator.now
        runtime.start()
        instance.runtime = runtime
        if self._bus is not None:
            self._bus.emit(PART_RESTARTED, self.simulator.now, part_name,
                           {"reason": detail})
        if self.trace_enabled:
            self.trace.append(
                (self.simulator.now, f"{part_name} restarted"))

    def _restore_part(self, part_name: str, detail: str = "") -> None:
        """Roll a part back to its last good recovery snapshot.

        The engine reinstates the snapshot's configuration, context and
        timers — everything the part learned up to the snapshot
        survives, unlike a restart.  The engine's local clock rewinds
        to the snapshot time; the next harness sync advances it back to
        kernel time, deterministically replaying due time triggers, so
        interpreted and compiled engines stay lockstep through the
        rollback.
        """
        instance = self.parts[part_name]
        snap = self._part_snapshots[part_name]
        instance.runtime.restore(snap["runtime"])
        instance.received = snap["received"]
        instance.sent = snap["sent"]
        if self._bus is not None:
            self._bus.emit(PART_RESTORED, self.simulator.now, part_name,
                           {"reason": detail, "snapshot_t": snap["t"]})
        if self.trace_enabled:
            self.trace.append(
                (self.simulator.now,
                 f"{part_name} restored to snapshot t={snap['t']}"))

    def take_part_checkpoints(self) -> int:
        """Snapshot every healthy part's engine for rollback recovery.

        Called automatically every ``checkpoint_interval`` during
        :meth:`run` (and once at construction when the restore policy or
        an interval is configured); callable by hand to mark a known-good
        point.  Returns the number of parts snapshotted.
        """
        now = self.simulator.now
        taken = 0
        for name, instance in self.parts.items():
            if instance.runtime is None or name in self._quarantined:
                continue
            self._part_snapshots[name] = {
                "t": now,
                "runtime": instance.runtime.checkpoint(),
                "received": instance.received,
                "sent": instance.sent,
            }
            taken += 1
        if self._bus is not None and CHECKPOINT in self._bus.active_kinds:
            if self._bus.causal:
                # checkpoints are roots, not consequences of whatever
                # record happened to precede the tick
                self._bus.cause = None
            self._bus.emit(CHECKPOINT, now, "", {"parts": taken})
        return taken

    @property
    def part_snapshot_times(self) -> Dict[str, float]:
        """Snapshot age per part: name -> simulated time it was taken."""
        return {name: snap["t"]
                for name, snap in sorted(self._part_snapshots.items())}

    # ------------------------------------------------------------------
    # signal routing
    # ------------------------------------------------------------------

    def _make_sink(self, part_name: str) -> Callable[[SentSignal], None]:
        def sink(sent: SentSignal) -> None:
            self.parts[part_name].sent += 1
            if sent.target is None:
                # self-send: schedule as an internal event, zero latency
                self._schedule_delivery(part_name, sent.signal,
                                        sent.arguments, 0.0,
                                        sender=part_name)
                return
            port_name = str(sent.target)
            routes = self._part_routes[part_name].get(port_name)
            if not routes:
                if self.strict_routing:
                    raise SimulationError(
                        f"part {part_name!r} sent {sent.signal!r} to port "
                        f"{port_name!r}, but no connector is attached")
                # dangling output: drop (counted), like an unconnected pin
                self.messages_dropped += 1
                if self._bus is not None \
                        and MESSAGE_DROPPED in self._bus.active_kinds:
                    self._bus.emit(MESSAGE_DROPPED, self.simulator.now,
                                   part_name, {"signal": sent.signal,
                                               "port": port_name,
                                               "reason": "unrouted"})
                if self.trace_enabled:
                    self.trace.append(
                        (self.simulator.now,
                         f"{sent.signal} dropped at {part_name}.{port_name}"))
                return
            bus = self._bus
            routed = bus is not None and MESSAGE_ROUTED in bus.active_kinds
            causal = bus is not None and bus.causal
            # each routed record (not the transition that sent it) is
            # the proximate cause of its delivery; the register is
            # restored per hop so sibling hops stay siblings
            origin = bus.cause if causal else None
            injector = self._injector
            if injector is None:
                for peer_part, _peer_port, latency, conn in routes:
                    if routed:
                        record = bus.emit(
                            MESSAGE_ROUTED, self.simulator.now,
                            part_name, {"signal": sent.signal,
                                        "port": port_name,
                                        "peer": peer_part,
                                        "connector": conn})
                        if causal and record is not None:
                            bus.cause = record.ordinal
                    self._schedule_delivery(peer_part, sent.signal,
                                            sent.arguments, latency,
                                            sender=part_name)
                    if causal:
                        bus.cause = origin
            else:
                for peer_part, _peer_port, latency, conn in routes:
                    if routed:
                        record = bus.emit(
                            MESSAGE_ROUTED, self.simulator.now,
                            part_name, {"signal": sent.signal,
                                        "port": port_name,
                                        "peer": peer_part,
                                        "connector": conn})
                        if causal and record is not None:
                            bus.cause = record.ordinal
                    injector.route(part_name, port_name, peer_part, conn,
                                   sent.signal, sent.arguments, latency)
                    if causal:
                        bus.cause = origin
        return sink

    def _schedule_delivery(self, part_name: str, signal: str,
                           arguments: Dict[str, Any],
                           latency: float,
                           sender: str = "env") -> None:
        # Capture the causal register at schedule time: the delivery,
        # executing later, is caused by whatever record scheduled it
        # (a routed message, a fault injection, a transition self-send).
        bus = self._bus
        cause = bus.cause if bus is not None and bus.causal else None
        if self._fused:
            entry = self._lane_map.get(part_name)
            if entry is not None and latency >= 0 \
                    and not self.simulator._closed:
                group, lane = entry
                simulator = self.simulator
                due = simulator.now + latency
                message = (part_name, lane, signal, arguments, sender,
                           cause)
                if group._open_rid >= 0 and group._open_t == due \
                        and group._open_seq == simulator._seq:
                    # No scheduler event was interleaved since this
                    # bucket's last append, so a serial run would pop
                    # the two deliveries back-to-back — safe to ride
                    # the same sweep.  Consume a sequence number
                    # exactly as the serial per-message push would, so
                    # the no-interleaving check stays exact across
                    # groups and recurring ticks.
                    group._runs[group._open_rid].append(message)
                    simulator._seq += 1
                    group._open_seq = simulator._seq
                    return
                rid = group.open_run(due, -1)
                group._runs[rid].append(message)
                simulator.schedule_call(latency, self._drain_run,
                                        (group, rid))
                group._open_seq = simulator._seq
                return

        def deliver() -> None:
            instance = self.parts[part_name]
            if instance.runtime is None:
                return
            bus = self._bus
            causal = bus is not None and bus.causal
            if causal:
                bus.cause = cause
            if part_name in self._quarantined:
                self._drop_quarantined(part_name, signal, sender)
                if causal:
                    bus.cause = None
                return
            self._sync_runtime(instance)
            if causal:
                # the sync rooted its timer chains; this delivery is
                # still caused by the record that scheduled it
                bus.cause = cause
            if part_name in self._quarantined:
                # the time sync itself failed the part
                self._drop_quarantined(part_name, signal, sender)
                if causal:
                    bus.cause = None
                return
            instance.received += 1
            self.messages_delivered += 1
            if bus is not None and MESSAGE_DELIVERED in bus.active_kinds:
                record = bus.emit(MESSAGE_DELIVERED, self.simulator.now,
                                  part_name,
                                  {"signal": signal, "sender": sender})
                if causal and record is not None:
                    bus.cause = record.ordinal
            if self.trace_enabled:
                self.trace.append(
                    (self.simulator.now, f"{signal} -> {part_name}"))
            try:
                instance.runtime.send(signal, **arguments)
            except Exception as error:  # noqa: BLE001 - policy decides
                self._part_failed(part_name, error)
            if causal:
                bus.cause = None
        self.simulator.schedule(latency, deliver)

    def _drain_run(self, payload: Tuple[BatchGroup, int]) -> None:
        """Sweep one coalesced delivery run of a batch group.

        Replicates the serial ``deliver`` closure per message —
        quarantine check, lane time sync, delivery accounting, trace
        emits, engine send, part-failure policy — with the lookup chain
        hoisted out of the loop.  Self-sends appended to the live run
        during the sweep are processed in the same pass (index
        iteration), exactly where the serial scheduler would pop them.
        Under the ``"raise"`` policy an escaping part error aborts the
        simulation mid-run, as it does mid-queue serially.
        """
        group, rid = payload
        run = group._runs.get(rid)
        if run is None:
            return
        parts = self.parts
        simulator = self.simulator
        now = simulator.now
        quarantined = self._quarantined
        bus = self._bus
        delivered_active = bus is not None \
            and MESSAGE_DELIVERED in bus.active_kinds
        causal = bus is not None and bus.causal
        trace_enabled = self.trace_enabled
        trace = self.trace
        lanes = group.lanes
        clock = lanes.clock
        index = 0
        try:
            while index < len(run):
                part_name, lane, signal, arguments, sender, cause \
                    = run[index]
                index += 1
                if causal:
                    bus.cause = cause
                if part_name in quarantined:
                    self._drop_quarantined(part_name, signal, sender)
                    continue
                if clock[lane] < now:
                    if causal:
                        # timer chains fired by the sync are roots,
                        # like the serial _sync_runtime path
                        bus.cause = None
                    try:
                        lanes.advance_lane(lane, now)
                    except Exception as error:  # noqa: BLE001
                        self._part_failed(part_name, error)
                    if causal:
                        bus.cause = cause
                    if part_name in quarantined:
                        # the time sync itself failed the part
                        self._drop_quarantined(part_name, signal, sender)
                        continue
                parts[part_name].received += 1
                self.messages_delivered += 1
                if delivered_active:
                    record = bus.emit(MESSAGE_DELIVERED, now, part_name,
                                      {"signal": signal, "sender": sender})
                    if causal and record is not None:
                        bus.cause = record.ordinal
                if trace_enabled:
                    trace.append((now, f"{signal} -> {part_name}"))
                try:
                    lanes.send_lane(lane, signal, arguments)
                except Exception as error:  # noqa: BLE001
                    self._part_failed(part_name, error)
            if causal:
                bus.cause = None
        finally:
            # logical-event parity: serially each message is one kernel
            # event; fused it is one event per run, so account for the
            # difference (the kernel already counted this run as 1)
            simulator.events_processed += index - 1
            PERF.incr("batch.fused_dispatches")
            PERF.observe("batch.events_per_dispatch", index)
        group.close_run(rid)

    def _drop_quarantined(self, part_name: str, signal: str,
                          sender: str) -> None:
        if self._bus is not None \
                and MESSAGE_DROPPED in self._bus.active_kinds:
            self._bus.emit(MESSAGE_DROPPED, self.simulator.now, part_name,
                           {"signal": signal, "sender": sender,
                            "reason": "quarantined"})
        else:
            # keep the resilience count deterministic even with the bus
            # off or unobserved (the subscriber normally does this)
            self.resilience.bump("quarantine_dropped")
        if self.trace_enabled:
            self.trace.append(
                (self.simulator.now,
                 f"{signal} dropped at quarantined {part_name}"))

    def _sync_runtime(self, instance: PartInstance) -> None:
        runtime = instance.runtime
        if runtime is not None and runtime.time < self.simulator.now \
                and instance.name not in self._quarantined:
            bus = self._bus
            if bus is not None and bus.causal:
                # timer chains fired by the advance root themselves at
                # their own event records
                bus.cause = None
            try:
                runtime.step(self.simulator.now)
            except Exception as error:  # noqa: BLE001 - policy decides
                self._part_failed(instance.name, error)

    def _sync_all(self) -> None:
        groups = self.batch_groups
        if groups and not self._quarantined:
            now = self.simulator.now
            quiet = True
            for group in groups:
                if group.min_due() <= now:
                    quiet = False
                    break
            if quiet:
                # No lane has a due timer: a serial per-part step() would
                # fire nothing and emit nothing, so bulk clock assignment
                # is observably identical.  Degraded parts still sync
                # individually (their relative order is preserved; the
                # skipped lane steps were no-ops, so interleaving with
                # them is unobservable).
                for group in groups:
                    group.bulk_clock(now)
                for instance in self._nonbatched:
                    self._sync_runtime(instance)
                return
        for instance in self.parts.values():
            self._sync_runtime(instance)

    # ------------------------------------------------------------------
    # external stimulus + execution
    # ------------------------------------------------------------------

    def send(self, part_name: str, signal: str, delay: float = 0.0,
             **arguments: Any) -> None:
        """Inject an external signal into a named part."""
        if part_name not in self.parts:
            raise SimulationError(f"unknown part {part_name!r}")
        self._schedule_delivery(part_name, signal, arguments, delay)

    def send_to_port(self, port_name: str, signal: str, delay: float = 0.0,
                     **arguments: Any) -> None:
        """Inject a signal through one of the top component's own ports."""
        routes = self._inward.get(port_name)
        if not routes:
            raise SimulationError(
                f"top component has no delegated port {port_name!r}")
        for part_name, _inner_port, latency, _conn in routes:
            self._schedule_delivery(part_name, signal, arguments,
                                    delay + latency)

    def run(self, until: float,
            timeout: Optional[float] = None,
            max_events: int = 10_000_000,
            max_events_at_instant: Optional[int] = None,
            detect_deadlock: bool = False) -> "SystemSimulation":
        """Run the cosimulation up to simulated time ``until`` (chainable).

        ``timeout`` arms the kernel's wall-clock watchdog;
        ``max_events_at_instant`` arms the livelock (zero-delay storm)
        heuristic.  Kernel incidents are recorded in :attr:`resilience`
        before the exception propagates.
        """
        start = _time.perf_counter()
        events_before = self.simulator.events_processed
        self._arm_run(until)
        try:
            self.simulator.run(until=until, max_events=max_events,
                               timeout=timeout,
                               max_events_at_instant=max_events_at_instant,
                               detect_deadlock=detect_deadlock)
            self._finish_run(until)
        except SimulationError as error:
            self._handle_run_error(error)
            raise
        except ReproError as error:
            # part-behavior errors under the raise policy: not a kernel
            # incident, but the black box should still hit the ground
            self._handle_run_error(error)
            raise
        finally:
            elapsed = _time.perf_counter() - start
            self.wall_time_s += elapsed
            PERF.observe("cosim.run_wall_s", elapsed)
            PERF.hist("cosim.run_hist_s", elapsed)
            PERF.incr("cosim.kernel_events",
                      self.simulator.events_processed - events_before)
        return self

    def _arm_run(self, until: float) -> None:
        """Arm the per-run recurrences (quantum sync, periodic
        checkpoints).  Split out of :meth:`run` so the vectorized
        campaign runner can interleave several simulations over one
        process with exactly :meth:`run`'s semantics."""
        self.simulator.every(self.quantum, self._sync_all, until=until)
        if self.checkpoint_interval is not None:
            # armed after the quantum sync at equal timestamps, so a
            # snapshot always captures the parts *after* they advanced
            # to the tick's time
            self.simulator.every(self.checkpoint_interval,
                                 self.take_part_checkpoints, until=until)

    def _finish_run(self, until: float) -> None:
        """Post-run epilogue: flush reorder-held fault messages, then
        advance every engine clock to the horizon."""
        if self._injector is not None:
            # deliver reorder-held messages that never found a partner
            leftovers = self._injector.flush()
            if leftovers:
                for peer, signal, arguments in leftovers:
                    self._schedule_delivery(peer, signal, arguments,
                                            0.0, sender="fault-flush")
                self.simulator.run(until=until)
        for instance in self.parts.values():
            if instance.runtime is not None \
                    and instance.runtime.time < until:
                self._final_advance(instance, until)

    def _handle_run_error(self, error: BaseException) -> None:
        """Record an escaping run error (incident hooks + resilience)."""
        if isinstance(error, SimulationError):
            self.resilience.record_kernel_incident(
                self.simulator.now, type(error).__name__, str(error))
        self._fire_incident("simulation_error",
                            f"{type(error).__name__}: {error}")

    def _final_advance(self, instance: PartInstance, until: float) -> None:
        if instance.name in self._quarantined:
            instance.runtime.time = until
            return
        bus = self._bus
        if bus is not None and bus.causal:
            bus.cause = None
        try:
            instance.runtime.step(until)
        except Exception as error:  # noqa: BLE001 - policy decides
            self._part_failed(instance.name, error)

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Capture the complete simulation state.

        Kernel clock and event queue, every part's engine checkpoint
        (configuration, context, timers/markings — every engine kind),
        message/trace logs, the trace-bus ordinal, degradation state,
        the resilience report and, when attached, the fault injector's
        RNG and budgets.  Restore with :meth:`restore`; a checkpoint →
        inject → restore cycle returns to the exact pre-injection state.
        """
        parts: Dict[str, Any] = {}
        for name, instance in self.parts.items():
            parts[name] = {
                "runtime": (instance.runtime.checkpoint()
                            if instance.runtime is not None else None),
                "received": instance.received,
                "sent": instance.sent,
            }
        return {
            "kernel": self.simulator.checkpoint(),
            "parts": parts,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "message_log_len": len(self.message_log),
            "trace_len": len(self.trace),
            "bus": self._bus.checkpoint() if self._bus is not None else None,
            "quarantined": set(self._quarantined),
            "supervisor": self.supervisor.snapshot(),
            "part_snapshots": dict(self._part_snapshots),
            "resilience": self.resilience.snapshot(),
            "injector": (self._injector.snapshot()
                         if self._injector is not None else None),
            "observability": (self.observability.checkpoint()
                              if self.observability is not None else None),
            "properties": (self.property_checker.checkpoint()
                           if self.property_checker is not None else None),
            # pending fused-delivery buckets (lane state itself rides in
            # the parts section through each view's checkpoint)
            "batched": [group.checkpoint_runs()
                        for group in self.batch_groups],
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        """Return to a state captured by :meth:`checkpoint`."""
        self.simulator.restore(snap["kernel"])
        for name, part_snap in snap["parts"].items():
            instance = self.parts[name]
            if part_snap["runtime"] is not None:
                instance.runtime.restore(part_snap["runtime"])
            instance.received = part_snap["received"]
            instance.sent = part_snap["sent"]
        self.messages_delivered = snap["messages_delivered"]
        self.messages_dropped = snap["messages_dropped"]
        del self.message_log[snap["message_log_len"]:]
        del self.trace[snap["trace_len"]:]
        if self._bus is not None and snap.get("bus") is not None:
            self._bus.restore(snap["bus"])
        self._quarantined = set(snap["quarantined"])
        self.supervisor.restore_state(snap["supervisor"])
        self._part_snapshots = dict(snap["part_snapshots"])
        self.resilience.restore(snap["resilience"])
        if self._injector is not None and snap["injector"] is not None:
            self._injector.restore(snap["injector"])
        if self.observability is not None \
                and snap.get("observability") is not None:
            self.observability.restore(snap["observability"])
        if self.property_checker is not None \
                and snap.get("properties") is not None:
            self.property_checker.restore(snap["properties"])
        for group, group_snap in zip(self.batch_groups,
                                     snap.get("batched", ())):
            group.restore_runs(group_snap)

    # ------------------------------------------------------------------
    # property verdicts
    # ------------------------------------------------------------------

    def property_report(self):
        """Finalize the property checker at the current simulated time
        and return the per-run
        :class:`~repro.properties.PropertyReport` (None when no
        properties are attached).  Finalization is idempotent, so the
        report can be requested repeatedly after a run."""
        if self.property_checker is None:
            return None
        self.property_checker.finalize(self.simulator.now)
        return self.property_checker.report()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Tear down the kernel (cancels recurrences; idempotent)."""
        self.simulator.close()

    def __enter__(self) -> "SystemSimulation":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def state_snapshot(self) -> Dict[str, Tuple[str, ...]]:
        """Active configuration of every part."""
        return {name: instance.state()
                for name, instance in sorted(self.parts.items())}

    def context_of(self, part_name: str) -> Dict[str, Any]:
        """The variable context of a part's engine."""
        runtime = self.parts[part_name].runtime
        if runtime is None:
            raise SimulationError(f"part {part_name!r} has no behavior")
        return runtime.context

    def stats(self) -> Dict[str, Any]:
        """Execution statistics: engine mix, traffic, and throughput."""
        compiled = sum(1 for report in self.compile_report.values()
                       if report == "compiled")
        events = self.simulator.events_processed
        return {
            "mode": self.engine_mode,
            "parts": len(self.parts),
            "compiled_parts": compiled,
            "batched_parts": len(self._lane_map),
            "batch_groups": len(self.batch_groups),
            "kernel_events": events,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "faults_injected": self.resilience.total_injections,
            "quarantined_parts": len(self._quarantined),
            "restarts": sum(self.supervisor.restart_counts.values()),
            "restores": sum(self.supervisor.restore_counts.values()),
            "kernel_events_dropped": self.simulator.events_dropped,
            "trace_events": (self._bus.events_emitted
                             if self._bus is not None else 0),
            "wall_s": self.wall_time_s,
            "events_per_s": (round(events / self.wall_time_s)
                             if self.wall_time_s > 0 else 0),
        }

    def __repr__(self) -> str:
        return (f"<SystemSimulation {self.top.name!r} parts="
                f"{len(self.parts)} t={self.simulator.now}>")
