"""Discrete-event simulation kernel.

The paper's Section 4 argues that "early prototyping and inherent
software simulation capabilities ... promise cost and time savings".
This kernel is the substrate that makes UML models executable as
simulations: a classic event-wheel scheduler plus generator-based
processes (a compact simpy-style coroutine model).

A process is a Python generator that yields:

* a ``float``/``int`` or :class:`Timeout` — resume after that much
  simulated time;
* a :class:`SimEvent` — resume when the event succeeds (with its value
  sent into the generator).

Robustness controls (PR 2): :meth:`Simulator.run` accepts a wall-clock
``timeout`` watchdog, a ``max_events_at_instant`` livelock heuristic
and ``detect_deadlock``; the queue can be bounded
(``max_queue``/``overflow_policy``); and the whole wheel state is
checkpointable via :meth:`Simulator.checkpoint` / :meth:`restore` so
fault campaigns can snapshot, inject and roll back.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..errors import (
    DeadlockError,
    LivelockError,
    QueueOverflowError,
    SimulationError,
    WatchdogTimeout,
)

#: Queue overflow policies for a bounded simulator.
OVERFLOW_POLICIES = ("raise", "drop-newest", "drop-latest")


class Timeout:
    """Yieldable: resume the process after ``delay`` simulated time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError("timeouts cannot be negative")
        self.delay = delay


class SimEvent:
    """A one-shot event processes can wait on.

    ``succeed(value)`` schedules all waiters to resume immediately
    (same simulated time, later delta) with ``value``.
    """

    __slots__ = ("simulator", "triggered", "value", "_waiters")

    def __init__(self, simulator: "Simulator"):
        self.simulator = simulator
        self.triggered = False
        self.value: Any = None
        self._waiters: List["ProcessHandle"] = []

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event, waking every waiter (chainable)."""
        if self.simulator._closed:
            raise SimulationError(
                "cannot succeed an event on a closed simulator; "
                "the event wheel has been torn down")
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for waiter in self._waiters:
            self.simulator._schedule_resume(waiter, 0.0, value)
        self._waiters.clear()
        return self

    def _add_waiter(self, process: "ProcessHandle") -> None:
        if self.triggered:
            self.simulator._schedule_resume(process, 0.0, self.value)
        else:
            self._waiters.append(process)


class ProcessHandle:
    """A running simulation process (generator driven by the kernel)."""

    __slots__ = ("generator", "name", "alive", "result", "done_event")

    def __init__(self, generator: Generator, name: str,
                 simulator: "Simulator"):
        self.generator = generator
        self.name = name
        self.alive = True
        self.result: Any = None
        self.done_event = SimEvent(simulator)

    def __repr__(self) -> str:
        status = "alive" if self.alive else "done"
        return f"<Process {self.name} ({status})>"


class _RecurringTick:
    """A fixed-interval callback that re-arms itself without per-tick
    generator frames or lambda allocation (the clock fast path).

    Semantics match a ``while now < until: yield interval; action()``
    process exactly: the first firing at the creation time is a no-op
    that only arms the next tick, every later firing runs the action
    and then re-arms while ``now < until``.
    """

    __slots__ = ("simulator", "interval", "action", "until", "primed",
                 "stopped")

    def __init__(self, simulator: "Simulator", interval: float,
                 action: Callable[[], None], until: Optional[float]):
        self.simulator = simulator
        self.interval = interval
        self.action = action
        self.until = until
        self.primed = False
        self.stopped = False

    def stop(self) -> None:
        """Permanently disarm the tick (pending firing becomes a no-op)."""
        self.stopped = True

    def _fire(self) -> None:
        if self.stopped:
            return
        if self.primed:
            self.action()
        else:
            self.primed = True
        simulator = self.simulator
        if self.until is None or simulator.now < self.until:
            simulator._seq = seq = simulator._seq + 1
            heapq.heappush(
                simulator._queue,
                (simulator.now + self.interval, seq, self._fire, None))
        else:
            # expired: mark stopped so the tick registry can be pruned
            self.stopped = True


class Simulator:
    """The event-wheel scheduler.

    ``max_queue``/``overflow_policy`` bound the event queue: once
    ``len(queue) >= max_queue``, a :meth:`schedule` call is resolved by
    the policy — ``"raise"`` (:class:`QueueOverflowError`),
    ``"drop-newest"`` (the incoming event is discarded and counted) or
    ``"drop-latest"`` (the queued event furthest in the future is
    evicted to admit the incoming one).  Internal process resumes and
    recurring ticks bypass backpressure — dropping those would corrupt
    coroutine state.
    """

    def __init__(self, max_queue: Optional[int] = None,
                 overflow_policy: str = "raise") -> None:
        if overflow_policy not in OVERFLOW_POLICIES:
            raise SimulationError(
                f"unknown overflow policy {overflow_policy!r}; "
                f"choose from {OVERFLOW_POLICIES}")
        if max_queue is not None and max_queue <= 0:
            raise SimulationError("max_queue must be positive")
        self.now: float = 0.0
        self.events_processed = 0
        self.events_dropped = 0
        self.max_queue = max_queue
        self.overflow_policy = overflow_policy
        self._queue: List[Tuple[float, int, Callable, Any]] = []
        self._seq = 0
        self._processes: List[ProcessHandle] = []
        self._ticks: List[_RecurringTick] = []
        self._closed = False

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action()`` after ``delay`` simulated time."""
        if self._closed:
            raise SimulationError("cannot schedule on a closed simulator")
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        if self.max_queue is not None \
                and len(self._queue) >= self.max_queue \
                and not self._admit_over_capacity():
            return
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self.now + delay, seq, action, None))

    def schedule_call(self, delay: float, action: Callable[[Any], None],
                      payload: Any) -> None:
        """Run ``action(payload)`` after ``delay`` simulated time.

        Like :meth:`schedule`, but the payload rides in the (previously
        unused) fourth slot of the heap entry instead of a closure — the
        fused-delivery fast path schedules thousands of these without
        allocating a function object per event.  ``payload`` must not be
        None (a None payload is the zero-argument convention).
        """
        if self._closed:
            raise SimulationError("cannot schedule on a closed simulator")
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        if payload is None:
            raise SimulationError("schedule_call needs a non-None payload")
        if self.max_queue is not None \
                and len(self._queue) >= self.max_queue \
                and not self._admit_over_capacity():
            return
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self.now + delay, seq, action, payload))

    def _admit_over_capacity(self) -> bool:
        """Apply the overflow policy; True when the new event may enter."""
        policy = self.overflow_policy
        if policy == "raise":
            raise QueueOverflowError(
                f"event queue overflowed its bound of {self.max_queue} "
                f"at t={self.now}")
        if policy == "drop-newest":
            self.events_dropped += 1
            return False
        # drop-latest: evict the entry furthest in the future (O(n), but
        # only ever paid under overflow)
        victim = max(self._queue)
        self._queue.remove(victim)
        heapq.heapify(self._queue)
        self.events_dropped += 1
        return True

    def every(self, interval: float, action: Callable[[], None],
              until: Optional[float] = None) -> _RecurringTick:
        """Run ``action()`` every ``interval`` without process overhead.

        Returns the tick handle (call ``.stop()`` to disarm).  The first
        action runs at ``now + interval``; with ``until`` given, ticks
        stop re-arming once ``now >= until`` (the action still runs at a
        tick landing exactly on ``until`` — the same inclusive boundary
        as :meth:`run`).  Outstanding ticks are cancelled by
        :meth:`close`.
        """
        if self._closed:
            raise SimulationError("cannot schedule on a closed simulator")
        if interval <= 0:
            raise SimulationError("recurring interval must be positive")
        if self._ticks and any(t.stopped for t in self._ticks):
            self._ticks = [t for t in self._ticks if not t.stopped]
        tick = _RecurringTick(self, interval, action, until)
        self._ticks.append(tick)
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self.now, seq, tick._fire, None))
        return tick

    def event(self) -> SimEvent:
        """Create a fresh one-shot event bound to this simulator."""
        return SimEvent(self)

    def process(self, generator: Generator,
                name: str = "") -> ProcessHandle:
        """Start a generator as a process (resumed immediately at t=now)."""
        if self._closed:
            raise SimulationError(
                "cannot start a process on a closed simulator")
        handle = ProcessHandle(generator, name or f"p{len(self._processes)}",
                               self)
        self._processes.append(handle)
        self._schedule_resume(handle, 0.0, None)
        return handle

    def _schedule_resume(self, handle: ProcessHandle, delay: float,
                         value: Any) -> None:
        self._seq = seq = self._seq + 1
        heapq.heappush(
            self._queue,
            (self.now + delay, seq,
             lambda: self._resume(handle, value), None))

    def _resume(self, handle: ProcessHandle, value: Any) -> None:
        if not handle.alive:
            return
        try:
            yielded = handle.generator.send(value)
        except StopIteration as stop:
            handle.alive = False
            handle.result = getattr(stop, "value", None)
            handle.done_event.succeed(handle.result)
            return
        if isinstance(yielded, (int, float)):
            yielded = Timeout(float(yielded))
        if isinstance(yielded, Timeout):
            self._schedule_resume(handle, yielded.delay, None)
        elif isinstance(yielded, SimEvent):
            yielded._add_waiter(handle)
        elif isinstance(yielded, ProcessHandle):
            yielded.done_event._add_waiter(handle)
        else:
            raise SimulationError(
                f"process {handle.name!r} yielded {type(yielded).__name__}; "
                "yield a delay, SimEvent or ProcessHandle")

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Process the next scheduled action; False when queue is empty."""
        if not self._queue:
            return False
        time, _seq, action, payload = heapq.heappop(self._queue)
        if time < self.now:
            raise SimulationError("scheduler time went backwards")
        self.now = time
        self.events_processed += 1
        if payload is None:
            action()
        else:
            action(payload)
        return True

    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000,
            timeout: Optional[float] = None,
            max_events_at_instant: Optional[int] = None,
            detect_deadlock: bool = False) -> float:
        """Run until quiescence or simulated time ``until``.

        Boundary contract: events scheduled *exactly at* ``until`` are
        processed (the horizon is inclusive), events strictly later stay
        queued, and ``now == until`` on return even when the queue
        drained earlier.  ``until`` must not lie in the past — time
        never moves backwards.

        Robustness knobs (all off by default):

        * ``timeout`` — wall-clock watchdog in real seconds; raises
          :class:`WatchdogTimeout` when exceeded (checked every 256
          events to keep the hot loop tight).
        * ``max_events_at_instant`` — livelock heuristic; raises
          :class:`LivelockError` when more than this many events fire
          without simulated time advancing (zero-delay storms).
        * ``detect_deadlock`` — on quiescence, raises
          :class:`DeadlockError` if generator processes are still alive
          (blocked on events nothing can trigger anymore).

        Returns the simulation time reached.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until t={until}: simulation time is already "
                f"t={self.now} (time never moves backwards)")
        deadline = None if timeout is None \
            else _time.perf_counter() + timeout
        instant_events = 0
        last_now = self.now
        processed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return self.now
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events")
            self.step()
            if max_events_at_instant is not None:
                if self.now == last_now:
                    instant_events += 1
                    if instant_events > max_events_at_instant:
                        raise LivelockError(
                            f"{instant_events} events fired at t={self.now} "
                            f"without time advancing (limit "
                            f"{max_events_at_instant}); suspected "
                            "zero-delay event storm")
                else:
                    last_now = self.now
                    instant_events = 0
            if deadline is not None and not (processed & 255) \
                    and _time.perf_counter() > deadline:
                raise WatchdogTimeout(
                    f"wall-clock watchdog expired after {timeout}s at "
                    f"t={self.now} ({processed} events this run); "
                    "simulation appears hung")
        if detect_deadlock:
            blocked = sorted(p.name for p in self._processes if p.alive)
            if blocked:
                raise DeadlockError(
                    f"event queue drained at t={self.now} with "
                    f"{len(blocked)} process(es) still blocked: "
                    f"{', '.join(blocked)}")
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Capture the wheel state (clock, queue, tick arms, counters).

        The queue holds plain action closures, which are re-runnable; a
        live *generator* process cannot be rolled back, so checkpointing
        with one alive raises :class:`SimulationError`.  Restore with
        :meth:`restore`.
        """
        alive = [p.name for p in self._processes if p.alive]
        if alive:
            raise SimulationError(
                "cannot checkpoint a simulator with live generator "
                f"processes ({', '.join(sorted(alive))}); generator frames "
                "are not restorable")
        return {
            "now": self.now,
            "events_processed": self.events_processed,
            "events_dropped": self.events_dropped,
            "seq": self._seq,
            "queue": list(self._queue),
            "ticks": [(tick, tick.primed, tick.stopped)
                      for tick in self._ticks],
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        """Return to a state captured by :meth:`checkpoint`.

        Recurring ticks created *after* the checkpoint are discarded
        together with their queued firings.
        """
        if self._closed:
            raise SimulationError("cannot restore a closed simulator")
        self.now = snap["now"]
        self.events_processed = snap["events_processed"]
        self.events_dropped = snap["events_dropped"]
        self._seq = snap["seq"]
        self._queue = list(snap["queue"])
        self._ticks = [tick for tick, _primed, _stopped in snap["ticks"]]
        for tick, primed, stopped in snap["ticks"]:
            tick.primed = primed
            tick.stopped = stopped

    def close(self) -> None:
        """Tear down the wheel: drop queued work, refuse new scheduling.

        After ``close()`` any :meth:`schedule`, :meth:`every` or
        :meth:`SimEvent.succeed` raises :class:`SimulationError` —
        nothing silently schedules into a dead wheel.  Outstanding
        :meth:`every` recurrences are cancelled.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for tick in self._ticks:
            tick.stop()
        self._ticks.clear()
        self._queue.clear()

    @property
    def is_closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    @property
    def is_quiescent(self) -> bool:
        """True when nothing is scheduled."""
        return not self._queue

    def __repr__(self) -> str:
        return (f"<Simulator t={self.now} queued={len(self._queue)} "
                f"processed={self.events_processed}>")
