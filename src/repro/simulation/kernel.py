"""Discrete-event simulation kernel.

The paper's Section 4 argues that "early prototyping and inherent
software simulation capabilities ... promise cost and time savings".
This kernel is the substrate that makes UML models executable as
simulations: a classic event-wheel scheduler plus generator-based
processes (a compact simpy-style coroutine model).

A process is a Python generator that yields:

* a ``float``/``int`` or :class:`Timeout` — resume after that much
  simulated time;
* a :class:`SimEvent` — resume when the event succeeds (with its value
  sent into the generator).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..errors import SimulationError


class Timeout:
    """Yieldable: resume the process after ``delay`` simulated time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError("timeouts cannot be negative")
        self.delay = delay


class SimEvent:
    """A one-shot event processes can wait on.

    ``succeed(value)`` schedules all waiters to resume immediately
    (same simulated time, later delta) with ``value``.
    """

    __slots__ = ("simulator", "triggered", "value", "_waiters")

    def __init__(self, simulator: "Simulator"):
        self.simulator = simulator
        self.triggered = False
        self.value: Any = None
        self._waiters: List["ProcessHandle"] = []

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event, waking every waiter (chainable)."""
        if self.simulator._closed:
            raise SimulationError(
                "cannot succeed an event on a closed simulator; "
                "the event wheel has been torn down")
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for waiter in self._waiters:
            self.simulator._schedule_resume(waiter, 0.0, value)
        self._waiters.clear()
        return self

    def _add_waiter(self, process: "ProcessHandle") -> None:
        if self.triggered:
            self.simulator._schedule_resume(process, 0.0, self.value)
        else:
            self._waiters.append(process)


class ProcessHandle:
    """A running simulation process (generator driven by the kernel)."""

    __slots__ = ("generator", "name", "alive", "result", "done_event")

    def __init__(self, generator: Generator, name: str,
                 simulator: "Simulator"):
        self.generator = generator
        self.name = name
        self.alive = True
        self.result: Any = None
        self.done_event = SimEvent(simulator)

    def __repr__(self) -> str:
        status = "alive" if self.alive else "done"
        return f"<Process {self.name} ({status})>"


class _RecurringTick:
    """A fixed-interval callback that re-arms itself without per-tick
    generator frames or lambda allocation (the clock fast path).

    Semantics match a ``while now < until: yield interval; action()``
    process exactly: the first firing at the creation time is a no-op
    that only arms the next tick, every later firing runs the action
    and then re-arms while ``now < until``.
    """

    __slots__ = ("simulator", "interval", "action", "until", "primed",
                 "stopped")

    def __init__(self, simulator: "Simulator", interval: float,
                 action: Callable[[], None], until: Optional[float]):
        self.simulator = simulator
        self.interval = interval
        self.action = action
        self.until = until
        self.primed = False
        self.stopped = False

    def stop(self) -> None:
        """Permanently disarm the tick (pending firing becomes a no-op)."""
        self.stopped = True

    def _fire(self) -> None:
        if self.stopped:
            return
        if self.primed:
            self.action()
        else:
            self.primed = True
        simulator = self.simulator
        if self.until is None or simulator.now < self.until:
            heapq.heappush(
                simulator._queue,
                (simulator.now + self.interval, next(simulator._sequence),
                 self._fire, None))


class Simulator:
    """The event-wheel scheduler."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed = 0
        self._queue: List[Tuple[float, int, Callable, Any]] = []
        self._sequence = itertools.count()
        self._processes: List[ProcessHandle] = []
        self._closed = False

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action()`` after ``delay`` simulated time."""
        if self._closed:
            raise SimulationError("cannot schedule on a closed simulator")
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        heapq.heappush(self._queue,
                       (self.now + delay, next(self._sequence), action, None))

    def every(self, interval: float, action: Callable[[], None],
              until: Optional[float] = None) -> _RecurringTick:
        """Run ``action()`` every ``interval`` without process overhead.

        Returns the tick handle (call ``.stop()`` to disarm).  The first
        action runs at ``now + interval``; with ``until`` given, ticks
        stop re-arming once ``now >= until`` (the action still runs at a
        tick landing exactly on ``until`` — the same inclusive boundary
        as :meth:`run`).
        """
        if self._closed:
            raise SimulationError("cannot schedule on a closed simulator")
        if interval <= 0:
            raise SimulationError("recurring interval must be positive")
        tick = _RecurringTick(self, interval, action, until)
        heapq.heappush(self._queue,
                       (self.now, next(self._sequence), tick._fire, None))
        return tick

    def event(self) -> SimEvent:
        """Create a fresh one-shot event bound to this simulator."""
        return SimEvent(self)

    def process(self, generator: Generator,
                name: str = "") -> ProcessHandle:
        """Start a generator as a process (resumed immediately at t=now)."""
        if self._closed:
            raise SimulationError(
                "cannot start a process on a closed simulator")
        handle = ProcessHandle(generator, name or f"p{len(self._processes)}",
                               self)
        self._processes.append(handle)
        self._schedule_resume(handle, 0.0, None)
        return handle

    def _schedule_resume(self, handle: ProcessHandle, delay: float,
                         value: Any) -> None:
        heapq.heappush(
            self._queue,
            (self.now + delay, next(self._sequence),
             lambda: self._resume(handle, value), None))

    def _resume(self, handle: ProcessHandle, value: Any) -> None:
        if not handle.alive:
            return
        try:
            yielded = handle.generator.send(value)
        except StopIteration as stop:
            handle.alive = False
            handle.result = getattr(stop, "value", None)
            handle.done_event.succeed(handle.result)
            return
        if isinstance(yielded, (int, float)):
            yielded = Timeout(float(yielded))
        if isinstance(yielded, Timeout):
            self._schedule_resume(handle, yielded.delay, None)
        elif isinstance(yielded, SimEvent):
            yielded._add_waiter(handle)
        elif isinstance(yielded, ProcessHandle):
            yielded.done_event._add_waiter(handle)
        else:
            raise SimulationError(
                f"process {handle.name!r} yielded {type(yielded).__name__}; "
                "yield a delay, SimEvent or ProcessHandle")

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Process the next scheduled action; False when queue is empty."""
        if not self._queue:
            return False
        time, _seq, action, _payload = heapq.heappop(self._queue)
        if time < self.now:
            raise SimulationError("scheduler time went backwards")
        self.now = time
        self.events_processed += 1
        action()
        return True

    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> float:
        """Run until quiescence or simulated time ``until``.

        Boundary contract: events scheduled *exactly at* ``until`` are
        processed (the horizon is inclusive), events strictly later stay
        queued, and ``now == until`` on return even when the queue
        drained earlier.  ``until`` must not lie in the past — time
        never moves backwards.

        Returns the simulation time reached.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until t={until}: simulation time is already "
                f"t={self.now} (time never moves backwards)")
        processed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return self.now
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events")
            self.step()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def close(self) -> None:
        """Tear down the wheel: drop queued work, refuse new scheduling.

        After ``close()`` any :meth:`schedule`, :meth:`every` or
        :meth:`SimEvent.succeed` raises :class:`SimulationError` —
        nothing silently schedules into a dead wheel.  Idempotent.
        """
        self._closed = True
        self._queue.clear()

    @property
    def is_closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    @property
    def is_quiescent(self) -> bool:
        """True when nothing is scheduled."""
        return not self._queue

    def __repr__(self) -> str:
        return (f"<Simulator t={self.now} queued={len(self._queue)} "
                f"processed={self.events_processed}>")
