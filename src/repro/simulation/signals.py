"""Signals, clocks and waveform recording for hardware simulation.

These are the RTL-flavoured primitives on top of the event kernel: a
:class:`SimSignal` holds a value and wakes subscribers on change, a
:class:`Clock` ticks periodically, and a :class:`Waveform` records a
signal's value history (the data a VCD viewer would plot).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError
from .kernel import SimEvent, Simulator


class SimSignal:
    """A value with change notification (an RTL wire/reg analogue)."""

    def __init__(self, simulator: Simulator, name: str = "",
                 initial: Any = 0):
        self.simulator = simulator
        self.name = name
        self._value = initial
        self._subscribers: List[Callable[[Any, Any], None]] = []
        self._change_event: Optional[SimEvent] = None

    @property
    def value(self) -> Any:
        """The current value."""
        return self._value

    def write(self, new_value: Any, delay: float = 0.0) -> None:
        """Drive a new value (optionally after a delta/propagation delay)."""
        if delay:
            self.simulator.schedule(delay,
                                    lambda: self._apply(new_value))
        else:
            self._apply(new_value)

    def _apply(self, new_value: Any) -> None:
        old_value = self._value
        if new_value == old_value:
            return
        self._value = new_value
        for subscriber in list(self._subscribers):
            subscriber(old_value, new_value)
        if self._change_event is not None:
            event, self._change_event = self._change_event, None
            event.succeed(new_value)

    def on_change(self, callback: Callable[[Any, Any], None]) -> None:
        """Subscribe ``callback(old, new)`` to every change."""
        self._subscribers.append(callback)

    def wait_change(self) -> SimEvent:
        """A yieldable event that succeeds on the next value change."""
        if self._change_event is None:
            self._change_event = self.simulator.event()
        return self._change_event

    def __repr__(self) -> str:
        return f"<SimSignal {self.name}={self._value!r}>"


class Clock:
    """A periodic tick source driving synchronous behaviors."""

    def __init__(self, simulator: Simulator, period: float,
                 name: str = "clk"):
        if period <= 0:
            raise SimulationError("clock period must be positive")
        self.simulator = simulator
        self.period = period
        self.name = name
        self.cycles = 0
        self._subscribers: List[Callable[[int], None]] = []
        self._running = False

    def on_tick(self, callback: Callable[[int], None]) -> None:
        """Subscribe ``callback(cycle_number)`` to every rising edge."""
        self._subscribers.append(callback)

    def start(self, max_cycles: Optional[int] = None) -> None:
        """Begin ticking (idempotent)."""
        if self._running:
            return
        self._running = True
        self._schedule_tick(max_cycles)

    def stop(self) -> None:
        """Stop after the current tick."""
        self._running = False

    def _schedule_tick(self, remaining: Optional[int]) -> None:
        if not self._running or (remaining is not None and remaining <= 0):
            self._running = False
            return
        def tick() -> None:
            if not self._running:
                return
            self.cycles += 1
            for subscriber in list(self._subscribers):
                subscriber(self.cycles)
            self._schedule_tick(None if remaining is None else remaining - 1)
        self.simulator.schedule(self.period, tick)

    def __repr__(self) -> str:
        return f"<Clock {self.name} period={self.period} cycles={self.cycles}>"


class Waveform:
    """Records (time, value) samples of a signal for later inspection."""

    def __init__(self, signal: SimSignal):
        self.signal = signal
        self.samples: List[Tuple[float, Any]] = [
            (signal.simulator.now, signal.value)]
        signal.on_change(self._record)

    def _record(self, old_value: Any, new_value: Any) -> None:
        self.samples.append((self.signal.simulator.now, new_value))

    def value_at(self, time: float) -> Any:
        """The signal's value at a given simulated time."""
        current = self.samples[0][1]
        for sample_time, value in self.samples:
            if sample_time > time:
                break
            current = value
        return current

    def changes(self) -> Tuple[Tuple[float, Any], ...]:
        """All recorded (time, value) samples."""
        return tuple(self.samples)

    def __repr__(self) -> str:
        return f"<Waveform {self.signal.name} ({len(self.samples)} samples)>"
