"""Discrete-event simulation of UML models (subsystem S10).

A compact event-wheel kernel with coroutine processes, RTL-style
signals/clocks/waveforms, and the cosimulation harness that executes a
component assembly's state machines over one scheduler.
"""

from .kernel import (
    OVERFLOW_POLICIES,
    ProcessHandle,
    SimEvent,
    Simulator,
    Timeout,
)
from .signals import Clock, SimSignal, Waveform
from .cosim import PART_ERROR_POLICIES, PartInstance, SystemSimulation
from .supervisor import SUPERVISOR_ACTIONS, Supervisor
from .vcd import dump_vcd, write_vcd

__all__ = [
    "OVERFLOW_POLICIES", "ProcessHandle", "SimEvent", "Simulator", "Timeout",
    "Clock", "SimSignal", "Waveform",
    "PART_ERROR_POLICIES", "PartInstance", "SystemSimulation",
    "SUPERVISOR_ACTIONS", "Supervisor",
    "dump_vcd", "write_vcd",
]
