"""Supervised recovery: the escalation chain for failing parts.

PR 2 gave the cosimulation harness *cold* degradation — a failing part
could be quarantined or rebuilt from its initial state.  The
:class:`Supervisor` upgrades that into a budgeted escalation chain in
the Erlang/OTP tradition:

``restore``
    roll the part back to its last good snapshot (taken by the
    harness's periodic ``checkpoint_interval`` machinery), keeping
    everything the part learned since it started;
``restart``
    rebuild the part's engine in its initial configuration (the PR 2
    behavior) once the restore budget is exhausted or no snapshot
    exists;
``quarantine``
    isolate the part once every recovery budget is spent.

The supervisor only *decides*; the harness executes the mechanics.
Decisions are pure functions of the per-part budget counters, so the
same failure sequence always escalates identically — which is what
keeps interpreted and compiled engines lockstep under recovery — and
every decision is emitted as a typed
:class:`~repro.engine.TraceEvent` (kind ``supervisor_decision``) so
flight-recorder dumps and coverage stay byte-comparable across runs.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

#: Actions a supervisor can take, in escalation order.
SUPERVISOR_ACTIONS = ("restore", "restart", "quarantine")


class Supervisor:
    """Budgeted restore → restart → quarantine escalation per part.

    ``policy`` is the simulation's ``on_part_error`` value; ``decide``
    consumes budget for the action it returns, so calling it *is* the
    decision.  State is checkpointable (:meth:`snapshot` /
    :meth:`restore_state`) so a full-simulation rollback also rewinds
    the escalation history.
    """

    __slots__ = ("policy", "max_restores", "max_restarts",
                 "restore_counts", "restart_counts")

    def __init__(self, policy: str, max_restores: int = 3,
                 max_restarts: int = 3):
        self.policy = policy
        self.max_restores = max_restores
        self.max_restarts = max_restarts
        #: part name -> restores performed
        self.restore_counts: Dict[str, int] = {}
        #: part name -> restarts performed
        self.restart_counts: Dict[str, int] = {}

    def decide(self, part: str, has_snapshot: bool = True
               ) -> Tuple[str, str]:
        """Pick the recovery action for one failure of ``part``.

        Returns ``(action, label)`` where ``action`` is one of
        :data:`SUPERVISOR_ACTIONS` and ``label`` is the human-readable
        record written to the resilience report (it carries the *why*
        of an escalation).  Budget for the returned action is consumed
        here.
        """
        if self.policy == "quarantine":
            return "quarantine", "quarantine"
        if self.policy == "restore":
            used = self.restore_counts.get(part, 0)
            if has_snapshot and used < self.max_restores:
                self.restore_counts[part] = used + 1
                return "restore", "restore"
            reason = ("no snapshot" if not has_snapshot
                      else "restore budget exhausted")
            if self.restart_counts.get(part, 0) < self.max_restarts:
                self.restart_counts[part] = \
                    self.restart_counts.get(part, 0) + 1
                return "restart", f"restart ({reason})"
            return "quarantine", "quarantine (recovery budgets exhausted)"
        if self.policy == "restart":
            if self.restart_counts.get(part, 0) < self.max_restarts:
                self.restart_counts[part] = \
                    self.restart_counts.get(part, 0) + 1
                return "restart", "restart"
            return "quarantine", "quarantine (restart budget exhausted)"
        # the "raise" policy never reaches a supervisor
        return "quarantine", "quarantine"

    def budgets(self, part: str) -> Dict[str, int]:
        """Remaining budget per action (for trace events / inspection)."""
        return {
            "restores_left": max(
                0, self.max_restores - self.restore_counts.get(part, 0)),
            "restarts_left": max(
                0, self.max_restarts - self.restart_counts.get(part, 0)),
        }

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {"restore_counts": dict(self.restore_counts),
                "restart_counts": dict(self.restart_counts)}

    def restore_state(self, snap: Dict[str, Any]) -> None:
        self.restore_counts = dict(snap["restore_counts"])
        self.restart_counts = dict(snap["restart_counts"])

    def __repr__(self) -> str:
        return (f"<Supervisor policy={self.policy!r} "
                f"restores={sum(self.restore_counts.values())} "
                f"restarts={sum(self.restart_counts.values())}>")
