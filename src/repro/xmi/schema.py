"""Field schema driving XMI serialization.

Rather than scattering to/from-XML code across seventy metamodel
classes, serialization is table-driven: :data:`SPEC` maps each concrete
element class to the fields that must be persisted, their kinds, and a
fixup hook run after reference resolution (rebuilding derived internal
lists such as ``Association._member_ends``).

Field kinds:

``str``/``int``/``float``/``bool``
    plain XML attributes (absent = default).
``json``
    JSON-encoded attribute (lists, dicts of plain values).
``enum``
    an :class:`enum.Enum` stored by value; ``enum_type`` names the type.
``multiplicity``
    a :class:`~repro.metamodel.element.Multiplicity` via its string form.
``action``
    a guard/effect/behavior: ASL text serializes; Python callables
    raise :class:`~repro.errors.XmiError` (XMI interchange needs text).
``ref`` / ``reflist``
    references to other elements by ``xmi:id``, resolved in pass two.
``tagtype``
    a tag-definition value type, stored by name (str/int/float/bool/list).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from .. import activities as ac
from .. import interactions as ix
from .. import metamodel as mm
from .. import profiles as pf
from .. import statemachines as st
from ..errors import XmiError

ENUMS: Dict[str, type] = {
    "VisibilityKind": mm.VisibilityKind,
    "AggregationKind": mm.AggregationKind,
    "ParameterDirection": mm.ParameterDirection,
    "PortDirection": mm.PortDirection,
    "ConnectorKind": mm.ConnectorKind,
    "PseudostateKind": st.PseudostateKind,
    "TransitionKind": st.TransitionKind,
    "MessageSort": ix.MessageSort,
    "InteractionOperator": ix.InteractionOperator,
}

TAG_TYPES: Dict[str, type] = {
    "str": str, "int": int, "float": float, "bool": bool, "list": list,
    "dict": dict,
}


@dataclass(frozen=True)
class Field:
    """One persisted field of an element class."""

    name: str
    kind: str
    enum_type: str = ""
    default: Any = None


@dataclass(frozen=True)
class ClassSpec:
    """Serialization recipe for one element class."""

    fields: Tuple[Field, ...] = ()
    init: Tuple[Tuple[str, Callable[[], Any]], ...] = ()
    fixup: Optional[Callable[[Any], None]] = None


def _s(name: str, default: Any = "") -> Field:
    return Field(name, "str", default=default)


def _i(name: str, default: Any = 0) -> Field:
    return Field(name, "int", default=default)


def _f(name: str, default: Any = 0.0) -> Field:
    return Field(name, "float", default=default)


def _b(name: str, default: Any = False) -> Field:
    return Field(name, "bool", default=default)


def _e(name: str, enum_type: str, default: Any = None) -> Field:
    return Field(name, "enum", enum_type=enum_type, default=default)


def _r(name: str) -> Field:
    return Field(name, "ref")


def _rl(name: str) -> Field:
    return Field(name, "reflist", default=())


def _a(name: str) -> Field:
    return Field(name, "action")


def _j(name: str, default: Any = None) -> Field:
    return Field(name, "json", default=default)


NAMED = (_s("name"), _e("visibility", "VisibilityKind",
                        mm.VisibilityKind.PUBLIC))


# -- fixups ------------------------------------------------------------------

def _fix_package(package: mm.Package) -> None:
    package._imports = [c for c in package.owned_elements
                        if isinstance(c, mm.PackageImport)]


def _fix_property(prop: mm.Property) -> None:
    specs = prop.owned_of_type(mm.ValueSpecification)
    prop._default = specs[0] if specs else None


def _fix_parameter(param: mm.Parameter) -> None:
    specs = param.owned_of_type(mm.ValueSpecification)
    param._default = specs[0] if specs else None


def _fix_operation(op: mm.Operation) -> None:
    bodies = op.owned_of_type(mm.OpaqueExpression)
    op._body = bodies[0] if bodies else None


def _fix_association(assoc: mm.Association) -> None:
    for end in assoc._member_ends:
        end.association = assoc


def _fix_connector(connector: mm.Connector) -> None:
    ends = connector.owned_of_type(mm.ConnectorEnd)
    if len(ends) != 2:
        raise XmiError(
            f"connector {connector.xmi_id} needs 2 ends, found {len(ends)}")
    connector.ends = (ends[0], ends[1])


def _fix_link(link: mm.Link) -> None:
    link.participants = tuple(link.participants)


def _fix_transition(transition: st.Transition) -> None:
    transition.triggers = list(transition.triggers)


SPEC: Dict[type, ClassSpec] = {
    # --- core metamodel -----------------------------------------------------
    mm.Comment: ClassSpec((_s("body"),)),
    mm.Package: ClassSpec(NAMED, (("_imports", list),), _fix_package),
    mm.Model: ClassSpec(NAMED, (("_imports", list),), _fix_package),
    mm.PackageImport: ClassSpec((_r("imported"),)),
    mm.LiteralInteger: ClassSpec((_i("literal"),)),
    mm.LiteralReal: ClassSpec((_f("literal"),)),
    mm.LiteralBoolean: ClassSpec((_b("literal"),)),
    mm.LiteralString: ClassSpec((_s("literal"),)),
    mm.LiteralNull: ClassSpec(),
    mm.LiteralUnlimitedNatural: ClassSpec((Field("literal", "json"),)),
    mm.InstanceValue: ClassSpec((_r("instance"),)),
    mm.OpaqueExpression: ClassSpec((_s("body"), _s("language", "asl"),
                                _s("name"))),
    mm.PrimitiveType: ClassSpec(NAMED),
    mm.DataType: ClassSpec(NAMED),
    mm.Enumeration: ClassSpec(NAMED),
    mm.EnumerationLiteral: ClassSpec(NAMED),
    mm.Property: ClassSpec(
        NAMED + (_r("type"), Field("multiplicity", "multiplicity"),
                 _e("aggregation", "AggregationKind", mm.AggregationKind.NONE),
                 _b("is_read_only"), _b("is_derived"), _b("is_static"),
                 _b("is_ordered"), _b("is_unique", True),
                 _b("is_navigable", True), _r("association")),
        (("_default", lambda: None),),
        _fix_property),
    mm.Parameter: ClassSpec(
        NAMED + (_r("type"),
                 _e("direction", "ParameterDirection",
                    mm.ParameterDirection.IN),
                 Field("multiplicity", "multiplicity")),
        (("_default", lambda: None),),
        _fix_parameter),
    mm.Operation: ClassSpec(
        NAMED + (_b("is_abstract"), _b("is_query"), _b("is_static"),
                 Field("type", "ref")),
        (("_body", lambda: None),),
        _fix_operation),
    mm.Reception: ClassSpec(NAMED + (_r("signal"), _b("is_static"),
                                     Field("type", "ref"))),
    mm.Generalization: ClassSpec((_r("general"),)),
    mm.InterfaceRealization: ClassSpec((_r("contract"),)),
    mm.Dependency: ClassSpec((_r("supplier"), _s("kind", "use"))),
    mm.Classifier: ClassSpec(NAMED + (_b("is_abstract"),)),
    mm.Interface: ClassSpec(NAMED + (_b("is_abstract"),)),
    mm.Signal: ClassSpec(NAMED + (_b("is_abstract"),)),
    mm.UmlClass: ClassSpec(
        NAMED + (_b("is_abstract"), _b("is_active"),
                 _r("_classifier_behavior"))),
    mm.Association: ClassSpec(
        NAMED + (_rl("_member_ends"),), (), _fix_association),
    mm.Component: ClassSpec(
        NAMED + (_b("is_abstract"), _b("is_active", True),
                 _r("_classifier_behavior"))),
    mm.Port: ClassSpec(
        NAMED + (_r("type"), Field("multiplicity", "multiplicity"),
                 _e("direction", "PortDirection", mm.PortDirection.INOUT),
                 _b("is_behavior"), _b("is_service", True),
                 _e("aggregation", "AggregationKind", mm.AggregationKind.NONE),
                 _b("is_read_only"), _b("is_derived"), _b("is_static"),
                 _b("is_ordered"), _b("is_unique", True),
                 _b("is_navigable", True), _r("association"),
                 _rl("_provided"), _rl("_required")),
        (("_default", lambda: None),),
        _fix_property),
    mm.ConnectorEnd: ClassSpec((_r("port"), _r("part"))),
    mm.Connector: ClassSpec(
        (_s("name"), _e("kind", "ConnectorKind", mm.ConnectorKind.ASSEMBLY)),
        (("ends", tuple),), _fix_connector),
    mm.Slot: ClassSpec((_r("feature"),)),
    mm.InstanceSpecification: ClassSpec(NAMED + (_rl("classifiers"),)),
    mm.Link: ClassSpec(
        NAMED + (_r("association"), _rl("participants")), (), _fix_link),
    mm.Actor: ClassSpec(NAMED + (_b("is_abstract"),)),
    mm.UseCase: ClassSpec(
        NAMED + (_b("is_abstract"), _rl("_subjects"), _rl("_actors"),
                 _j("extension_points", [])),
        (("extension_points", list),)),
    mm.Include: ClassSpec((_r("addition"),)),
    mm.Extend: ClassSpec((_r("extended"), _s("extension_point"),
                          _s("condition"))),
    mm.Artifact: ClassSpec(NAMED + (_b("is_abstract"), _s("file_name"))),
    mm.Manifestation: ClassSpec((_r("utilized"),)),
    mm.Deployment: ClassSpec((_r("artifact"),)),
    mm.Node: ClassSpec(NAMED + (_b("is_abstract"),)),
    mm.Device: ClassSpec(NAMED + (_b("is_abstract"),)),
    mm.ExecutionEnvironment: ClassSpec(NAMED + (_b("is_abstract"),)),
    mm.CommunicationPath: ClassSpec(NAMED + (_rl("ends"),)),
    # --- state machines ------------------------------------------------------
    st.StateMachine: ClassSpec(NAMED),
    st.Region: ClassSpec(NAMED),
    st.State: ClassSpec(
        NAMED + (_a("entry"), _a("exit"), _a("do_activity"),
                 _j("deferrable", [])),
        (("deferrable", list),)),
    st.FinalState: ClassSpec(
        NAMED + (_a("entry"), _a("exit"), _a("do_activity"),
                 _j("deferrable", [])),
        (("deferrable", list),)),
    st.Pseudostate: ClassSpec(
        NAMED + (_e("kind", "PseudostateKind", None),)),
    st.Transition: ClassSpec(
        (_s("name"), _r("source"), _r("target"), _rl("triggers"),
         _a("guard"), _a("effect"),
         _e("kind", "TransitionKind", st.TransitionKind.EXTERNAL)),
        (), _fix_transition),
    st.SignalEvent: ClassSpec((_s("name"),)),
    st.CallEvent: ClassSpec((_s("name"),)),
    st.TimeEvent: ClassSpec((_s("name"), _f("after"))),
    st.ChangeEvent: ClassSpec((_s("name"), _s("condition"))),
    # --- activities -------------------------------------------------------------
    ac.Activity: ClassSpec(NAMED),
    ac.InitialNode: ClassSpec(NAMED),
    ac.ActivityFinalNode: ClassSpec(NAMED),
    ac.FlowFinalNode: ClassSpec(NAMED),
    ac.ForkNode: ClassSpec(NAMED),
    ac.JoinNode: ClassSpec(NAMED),
    ac.DecisionNode: ClassSpec(NAMED),
    ac.MergeNode: ClassSpec(NAMED),
    ac.Action: ClassSpec(NAMED + (_a("behavior"),)),
    ac.SendSignalAction: ClassSpec(
        NAMED + (_a("behavior"), _s("signal"), _s("target"))),
    ac.AcceptEventAction: ClassSpec(NAMED + (_a("behavior"), _s("event"))),
    ac.ObjectNode: ClassSpec(NAMED + (_r("type"), _j("upper_bound"))),
    ac.CentralBufferNode: ClassSpec(NAMED + (_r("type"), _j("upper_bound"))),
    ac.ActivityParameterNode: ClassSpec(
        NAMED + (_r("type"), _j("upper_bound"), _b("is_input", True))),
    ac.InputPin: ClassSpec(NAMED + (_r("type"), _j("upper_bound"))),
    ac.OutputPin: ClassSpec(NAMED + (_r("type"), _j("upper_bound"))),
    ac.ControlFlow: ClassSpec(
        (_s("name"), _r("source"), _r("target"), _a("guard"),
         _i("weight", 1))),
    ac.ObjectFlow: ClassSpec(
        (_s("name"), _r("source"), _r("target"), _a("guard"),
         _i("weight", 1))),
    # --- interactions ---------------------------------------------------------------
    ix.Interaction: ClassSpec(NAMED),
    ix.Lifeline: ClassSpec(NAMED + (_r("represents"),)),
    ix.Message: ClassSpec(
        (_s("name"), _r("sender"), _r("receiver"),
         _e("sort", "MessageSort", ix.MessageSort.ASYNC_SIGNAL),
         _j("arguments", {})),
        (("arguments", dict),)),
    ix.CombinedFragment: ClassSpec(
        (_e("operator", "InteractionOperator", None),
         _i("loop_min"), _i("loop_max", 1))),
    ix.InteractionOperand: ClassSpec((Field("guard", "json"),)),
    # --- profiles ---------------------------------------------------------------------
    pf.Profile: ClassSpec(NAMED, (("_imports", list),), _fix_package),
    pf.Stereotype: ClassSpec(
        NAMED + (_j("extends", []), _r("_specializes")),
        (("constraints", list), ("extends", tuple))),
    pf.TagDefinition: ClassSpec(
        NAMED + (Field("tag_type", "tagtype"), _j("default"),
                 _b("required"))),
}


def spec_for(element: Any) -> ClassSpec:
    """The :class:`ClassSpec` for an element (exact class match)."""
    spec = SPEC.get(type(element))
    if spec is None:
        raise XmiError(
            f"no XMI schema for {type(element).__name__}; register it in "
            "repro.xmi.schema.SPEC")
    return spec


#: Name -> class, for the reader.
CLASS_BY_NAME: Dict[str, type] = {cls.__name__: cls for cls in SPEC}
