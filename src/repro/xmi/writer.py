"""XMI writer: serialize models (and profiles + applications) to XML.

The document shape follows XMI 2.x conventions: an ``xmi:XMI`` root,
``xmi:type``/``xmi:id`` attributes on every element, ownership as XML
nesting and cross-references by id.  Stereotype applications are
emitted in a trailing ``applications`` section, mirroring how XMI
stores profile applications outside the model tree.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from typing import Any, Iterable, Optional, Sequence, Tuple

from ..errors import XmiError
from ..metamodel.element import Element, Multiplicity, ONE
from ..metamodel.model import Model
from ..metamodel.types import PRIMITIVES
from ..profiles.core import Profile, applications_of
from .schema import Field, spec_for

XMI_NS = "http://www.omg.org/XMI"
ET.register_namespace("xmi", XMI_NS)

_TYPE_ATTR = f"{{{XMI_NS}}}type"
_ID_ATTR = f"{{{XMI_NS}}}id"

#: id prefix for the shared builtin primitive types.
BUILTIN_PREFIX = "builtin:"

_BUILTIN_IDS = {id(prim): f"{BUILTIN_PREFIX}{name}"
                for name, prim in PRIMITIVES.items()}


def _ref_id(target: Optional[Element]) -> Optional[str]:
    if target is None:
        return None
    builtin = _BUILTIN_IDS.get(id(target))
    if builtin is not None:
        return builtin
    return target.xmi_id


def _serialize_field(element: Element, field: Field,
                     xml_element: ET.Element) -> None:
    value = getattr(element, field.name)
    attr = field.name.lstrip("_")
    kind = field.kind

    if kind in ("str", "int", "float"):
        if value != field.default:
            xml_element.set(attr, str(value))
    elif kind == "bool":
        if value != field.default:
            xml_element.set(attr, "true" if value else "false")
    elif kind == "enum":
        if value is not None and value != field.default:
            xml_element.set(attr, value.value)
    elif kind == "json":
        if value != field.default:
            xml_element.set(attr, json.dumps(value))
    elif kind == "multiplicity":
        if value != ONE:
            xml_element.set(attr, str(value))
    elif kind == "action":
        if value is None:
            return
        if callable(value):
            raise XmiError(
                f"{type(element).__name__} {element.xmi_id}: field "
                f"{field.name!r} holds a Python callable; XMI interchange "
                "requires ASL text actions")
        xml_element.set(attr, str(value))
    elif kind == "ref":
        ref = _ref_id(value)
        if ref is not None:
            xml_element.set(attr, ref)
    elif kind == "reflist":
        refs = [_ref_id(v) for v in value]
        if refs:
            xml_element.set(attr, " ".join(r for r in refs if r))
    elif kind == "tagtype":
        xml_element.set(attr, value.__name__)
    else:
        raise XmiError(f"unknown field kind {kind!r}")


def _serialize_element(element: Element, parent: ET.Element) -> None:
    spec = spec_for(element)
    xml_element = ET.SubElement(parent, "element")
    xml_element.set(_TYPE_ATTR, type(element).__name__)
    xml_element.set(_ID_ATTR, element.xmi_id)
    for field in spec.fields:
        _serialize_field(element, field, xml_element)
    for child in element.owned_elements:
        _serialize_element(child, xml_element)


def _serialize_applications(scope: Element, parent: ET.Element) -> None:
    targets = [scope] + list(scope.all_owned())
    for target in targets:
        for application in applications_of(target):
            xml_app = ET.SubElement(parent, "application")
            xml_app.set("stereotype", application.stereotype.xmi_id)
            xml_app.set("element", target.xmi_id)
            if application.values:
                xml_app.set("values", json.dumps(application.values,
                                                 sort_keys=True))


def write_model(model: Model, profiles: Sequence[Profile] = (),
                pretty: bool = False) -> str:
    """Serialize a model (plus profiles and applications) to XMI text."""
    root = ET.Element(f"{{{XMI_NS}}}XMI")
    root.set("version", "2.1")
    for profile in profiles:
        _serialize_element(profile, root)
    _serialize_element(model, root)
    applications = ET.SubElement(root, "applications")
    for profile in profiles:
        _serialize_applications(profile, applications)
    _serialize_applications(model, applications)
    if pretty:
        _indent(root)
    return ET.tostring(root, encoding="unicode")


def write_file(path: str, model: Model,
               profiles: Sequence[Profile] = ()) -> None:
    """Serialize to a file (UTF-8, pretty-printed)."""
    text = write_model(model, profiles, pretty=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        handle.write(text)


def _indent(element: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(element):
        if not (element.text or "").strip():
            element.text = pad + "  "
        for child in element:
            _indent(child, level + 1)
            if not (child.tail or "").strip():
                child.tail = pad + "  "
        if not (element[-1].tail or "").strip():
            element[-1].tail = pad
    elif level and not (element.tail or "").strip():
        element.tail = pad
