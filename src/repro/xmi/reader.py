"""XMI reader: reconstruct models from documents written by the writer.

Three passes:

1. **Build** — instantiate every ``element`` node (bypassing class
   constructors, which enforce builder-time invariants that the
   document already satisfies), restore plain fields, attach ownership
   by XML nesting, and queue reference fields.
2. **Resolve** — patch ``ref``/``reflist`` fields through the id index
   (``builtin:`` ids resolve to the shared primitive types).
3. **Fixup** — run each class's fixup hook (rebuilding derived internal
   structures), then re-apply stereotype applications.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from typing import Any, Dict, List, Optional, Tuple

from ..errors import XmiError
from ..metamodel.element import Element, Multiplicity, ONE
from ..metamodel.model import Model
from ..metamodel.types import PRIMITIVES
from ..profiles.core import Profile, Stereotype
from .schema import CLASS_BY_NAME, ENUMS, TAG_TYPES, Field, spec_for
from .writer import BUILTIN_PREFIX, XMI_NS

_TYPE_ATTR = f"{{{XMI_NS}}}type"
_ID_ATTR = f"{{{XMI_NS}}}id"


class XmiDocument:
    """The result of reading an XMI document."""

    def __init__(self, model: Optional[Model], profiles: List[Profile],
                 elements_by_id: Dict[str, Element]):
        self.model = model
        self.profiles = profiles
        self.elements_by_id = elements_by_id

    def __repr__(self) -> str:
        return (f"<XmiDocument model={self.model!r} "
                f"profiles={len(self.profiles)}>")


def read_model(text: str) -> XmiDocument:
    """Parse XMI text produced by :func:`repro.xmi.writer.write_model`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmiError(f"malformed XMI document: {exc}")
    if root.tag != f"{{{XMI_NS}}}XMI":
        raise XmiError(f"not an XMI document (root tag {root.tag!r})")

    index: Dict[str, Element] = {}
    pending_refs: List[Tuple[Element, Field, str]] = []
    built: List[Element] = []
    top_level: List[Element] = []

    for xml_element in root:
        if xml_element.tag == "element":
            top_level.append(
                _build(xml_element, None, index, pending_refs, built))

    _resolve(index, pending_refs)

    for element in built:
        spec = spec_for(element)
        if spec.fixup is not None:
            # fixups rebuild derived structure from restored fields; on
            # a corrupt document they can trip over missing pieces, and
            # the caller should still see a located XmiError
            try:
                spec.fixup(element)
            except XmiError:
                raise
            except Exception as exc:
                raise XmiError(
                    f"element {element.xmi_id!r} "
                    f"({type(element).__name__}): inconsistent document "
                    f"structure: {type(exc).__name__}: {exc}") from exc

    applications_node = root.find("applications")
    if applications_node is not None:
        _apply_applications(applications_node, index)

    model = next((e for e in top_level if isinstance(e, Model)), None)
    profiles = [e for e in top_level if isinstance(e, Profile)]
    return XmiDocument(model, profiles, index)


def read_file(path: str) -> XmiDocument:
    """Parse an XMI file."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_model(handle.read())


# ---------------------------------------------------------------------------
# pass 1: build
# ---------------------------------------------------------------------------

def _build(xml_element: ET.Element, owner: Optional[Element],
           index: Dict[str, Element],
           pending_refs: List[Tuple[Element, Field, str]],
           built: List[Element]) -> Element:
    type_name = xml_element.get(_TYPE_ATTR)
    xmi_id = xml_element.get(_ID_ATTR)
    if not type_name or not xmi_id:
        raise XmiError("element node missing xmi:type or xmi:id")
    cls = CLASS_BY_NAME.get(type_name)
    if cls is None:
        raise XmiError(f"unknown element type {type_name!r}")

    element: Element = object.__new__(cls)
    element.xmi_id = xmi_id
    element._owner = None
    element._owned = []
    if xmi_id in index:
        raise XmiError(
            f"duplicate xmi:id {xmi_id!r}: already used by "
            f"{type(index[xmi_id]).__name__}, redefined as {type_name}")
    index[xmi_id] = element
    built.append(element)

    spec = spec_for(element)
    for attr_name, factory in spec.init:
        setattr(element, attr_name, factory())
    for field in spec.fields:
        _restore_field(element, field, xml_element, pending_refs)

    if owner is not None:
        owner._own(element)

    for child in xml_element:
        if child.tag == "element":
            _build(child, element, index, pending_refs, built)
    return element


def _restore_field(element: Element, field: Field,
                   xml_element: ET.Element,
                   pending_refs: List[Tuple[Element, Field, str]]) -> None:
    attr = field.name.lstrip("_")
    raw = xml_element.get(attr)
    kind = field.kind

    def convert(factory: Any, what: str) -> Any:
        # every conversion of document text answers with a *located*
        # XmiError; a corrupt attribute must never surface as a bare
        # ValueError/KeyError from the converter
        try:
            return factory(raw)
        except XmiError:
            raise
        except Exception as exc:
            raise XmiError(
                f"element {element.xmi_id!r} "
                f"({type(element).__name__}): field {attr!r}: "
                f"bad {what} {raw!r}: {exc}") from exc

    if kind == "str":
        setattr(element, field.name, raw if raw is not None else field.default)
    elif kind == "int":
        setattr(element, field.name,
                convert(int, "integer") if raw is not None
                else field.default)
    elif kind == "float":
        setattr(element, field.name,
                convert(float, "number") if raw is not None
                else field.default)
    elif kind == "bool":
        setattr(element, field.name,
                raw == "true" if raw is not None else field.default)
    elif kind == "enum":
        enum_type = ENUMS[field.enum_type]
        setattr(element, field.name,
                convert(enum_type, f"{field.enum_type} value")
                if raw is not None else field.default)
    elif kind == "json":
        if raw is not None:
            setattr(element, field.name, convert(json.loads, "JSON"))
        else:
            default = field.default
            if isinstance(default, (list, dict)):
                default = type(default)(default)
            setattr(element, field.name, default)
    elif kind == "multiplicity":
        setattr(element, field.name,
                convert(Multiplicity.parse, "multiplicity")
                if raw is not None else ONE)
    elif kind == "action":
        setattr(element, field.name, raw)
    elif kind == "ref":
        setattr(element, field.name, None)
        if raw is not None:
            pending_refs.append((element, field, raw))
    elif kind == "reflist":
        setattr(element, field.name, [])
        if raw:
            pending_refs.append((element, field, raw))
    elif kind == "tagtype":
        if raw is None or raw not in TAG_TYPES:
            raise XmiError(
                f"element {element.xmi_id!r} "
                f"({type(element).__name__}): bad tag type {raw!r}")
        setattr(element, field.name, TAG_TYPES[raw])
    else:
        raise XmiError(f"unknown field kind {kind!r}")


# ---------------------------------------------------------------------------
# pass 2: resolve references
# ---------------------------------------------------------------------------

def _lookup(reference: str, index: Dict[str, Element]) -> Element:
    if reference.startswith(BUILTIN_PREFIX):
        name = reference[len(BUILTIN_PREFIX):]
        primitive = PRIMITIVES.get(name)
        if primitive is None:
            raise XmiError(f"unknown builtin primitive {name!r}")
        return primitive
    target = index.get(reference)
    if target is None:
        raise XmiError(f"dangling reference {reference!r}")
    return target


def _resolve(index: Dict[str, Element],
             pending_refs: List[Tuple[Element, Field, str]]) -> None:
    for element, field, raw in pending_refs:
        try:
            if field.kind == "ref":
                setattr(element, field.name, _lookup(raw, index))
            else:
                targets = [_lookup(ref, index) for ref in raw.split()]
                setattr(element, field.name, targets)
        except XmiError as exc:
            raise XmiError(
                f"element {element.xmi_id!r} "
                f"({type(element).__name__}): field "
                f"{field.name.lstrip('_')!r}: {exc}") from exc


# ---------------------------------------------------------------------------
# pass 3: stereotype applications
# ---------------------------------------------------------------------------

def _apply_applications(applications_node: ET.Element,
                        index: Dict[str, Element]) -> None:
    for xml_app in applications_node:
        if xml_app.tag != "application":
            continue
        stereotype = index.get(xml_app.get("stereotype", ""))
        target = index.get(xml_app.get("element", ""))
        if not isinstance(stereotype, Stereotype) or target is None:
            raise XmiError(
                f"application references unknown stereotype/element: "
                f"{xml_app.attrib}")
        raw_values = xml_app.get("values")
        try:
            values = json.loads(raw_values) if raw_values else {}
        except json.JSONDecodeError as exc:
            raise XmiError(
                f"application of {stereotype.name!r} to "
                f"{target.xmi_id!r}: bad values JSON: {exc}") from exc
        from ..profiles.core import apply_stereotype

        apply_stereotype(target, stereotype, **values)
