"""XMI 2.x-style model interchange (subsystem S7).

Write models, profiles and stereotype applications to an XMI XML
document and read them back with full structural fidelity (verified by
experiment D10).  ASL text actions round-trip; Python-callable actions
are rejected at write time with a clear error.
"""

from .writer import BUILTIN_PREFIX, XMI_NS, write_file, write_model
from .reader import XmiDocument, read_file, read_model

__all__ = [
    "BUILTIN_PREFIX", "XMI_NS", "write_file", "write_model",
    "XmiDocument", "read_file", "read_model",
]
