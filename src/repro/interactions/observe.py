"""Synthesize sequence diagrams from observed executions.

Closes the loop between simulation and specification: a cosimulation
run (or any message log) becomes an :class:`Interaction`, which can be
rendered as a sequence diagram or checked for conformance against a
specification interaction — "does the system do what the MSC says?"
answered mechanically.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from ..engine import MESSAGE_DELIVERED
from .model import Interaction, Lifeline, Message, MessageSort

#: One observed message: (sender, receiver, signal name).
ObservedMessage = Tuple[str, str, str]


def interaction_from_messages(name: str,
                              messages: Sequence[ObservedMessage],
                              ) -> Interaction:
    """Build a linear interaction from an ordered message list.

    Lifelines are created on demand (in order of first appearance);
    the result denotes exactly one trace — the observed one.
    """
    interaction = Interaction(name)
    lifelines = {}

    def lifeline(participant: str) -> Lifeline:
        if participant not in lifelines:
            lifelines[participant] = interaction.add_lifeline(participant)
        return lifelines[participant]

    for sender, receiver, signal in messages:
        interaction.message(signal, lifeline(sender), lifeline(receiver),
                            sort=MessageSort.ASYNC_SIGNAL)
    return interaction


def interaction_from_simulation(name: str, simulation,
                                include_env: bool = False,
                                limit: Optional[int] = None) -> Interaction:
    """Build the observed interaction of a cosimulation run.

    ``simulation`` is a :class:`~repro.simulation.cosim.SystemSimulation`
    whose ``message_log`` is consumed in delivery order.  Environment
    stimuli (sender ``"env"``) are skipped unless ``include_env``.
    """
    observed: List[ObservedMessage] = []
    for _time, sender, receiver, signal in simulation.message_log:
        if sender == "env" and not include_env:
            continue
        observed.append((sender, receiver, signal))
        if limit is not None and len(observed) >= limit:
            break
    return interaction_from_messages(name, observed)


def interaction_from_trace(name: str, events: Iterable[Any],
                           include_env: bool = False,
                           limit: Optional[int] = None) -> Interaction:
    """Build the observed interaction from a trace-event stream.

    ``events`` is an iterable of :class:`~repro.engine.TraceEvent`
    records *or* plain dicts (one parsed JSON line of a ``simulate
    --trace`` file each).  Only ``message_delivered`` records
    contribute: the sender comes from the payload, the receiver is the
    event's part.  Environment stimuli (sender ``"env"``) are skipped
    unless ``include_env``.
    """
    observed: List[ObservedMessage] = []
    for event in events:
        if isinstance(event, dict):
            kind = event.get("kind")
            receiver = event.get("part", "")
            sender = event.get("sender", "env")
            signal = event.get("signal", "")
        else:
            kind = event.kind
            receiver = event.part
            sender = event.data.get("sender", "env")
            signal = event.data.get("signal", "")
        if kind != MESSAGE_DELIVERED:
            continue
        if sender == "env" and not include_env:
            continue
        observed.append((sender, receiver, signal))
        if limit is not None and len(observed) >= limit:
            break
    return interaction_from_messages(name, observed)


def observed_trace(simulation, include_env: bool = False,
                   limit: Optional[int] = None) -> Tuple[str, ...]:
    """The run's trace in the canonical ``sender->receiver:signal`` form.

    Directly comparable with :func:`repro.interactions.traces` output
    and checkable with :func:`repro.interactions.conforms`.
    """
    labels: List[str] = []
    for _time, sender, receiver, signal in simulation.message_log:
        if sender == "env" and not include_env:
            continue
        labels.append(f"{sender}->{receiver}:{signal}")
        if limit is not None and len(labels) >= limit:
            break
    return tuple(labels)
