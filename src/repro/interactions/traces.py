"""Trace semantics for interactions (MSC-style).

An interaction denotes a *set of traces* — sequences of message labels.
This module provides:

* :func:`traces` — enumerate the trace set (bounded);
* :func:`trace_count` — count traces without materializing them where a
  closed form exists (flat ``par`` operands use the multinomial
  interleaving count), falling back to bounded enumeration;
* :func:`conforms` — membership test for a concrete trace, implemented
  as a memoized nondeterministic matcher so conformance does not
  require enumerating the (potentially factorial) trace set.

Semantics notes: sequencing inside an operand is *strict* (a faithful
weak-sequencing implementation would track per-lifeline orderings; the
``par`` operator recovers the interleaving behaviour designers actually
use fragments for).  ``alt`` operand guards are ASL expressions
evaluated against the optional ``env`` — without an ``env`` all
operands are considered viable (the full language).
"""

from __future__ import annotations

from functools import lru_cache
from math import factorial
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import InteractionError
from .model import (
    CombinedFragment,
    Interaction,
    InteractionOperand,
    InteractionOperator,
    Message,
)

Trace = Tuple[str, ...]


def _guard_allows(operand: InteractionOperand,
                  env: Optional[Dict[str, Any]]) -> bool:
    if operand.guard is None or env is None:
        return True
    if operand.guard.strip() == "else":
        return True  # handled by the caller for alt; standalone = viable
    from .. import asl

    return bool(asl.evaluate(operand.guard, dict(env)))


def _viable_operands(fragment: CombinedFragment,
                     env: Optional[Dict[str, Any]]) -> List[InteractionOperand]:
    """Operands an alt may choose, honouring guards and the else branch."""
    operands = list(fragment.operands)
    if env is None:
        return operands
    else_ops = [op for op in operands
                if op.guard is not None and op.guard.strip() == "else"]
    passing = [op for op in operands
               if op not in else_ops and _guard_allows(op, env)]
    if passing:
        return passing
    return else_ops


# ---------------------------------------------------------------------------
# enumeration
# ---------------------------------------------------------------------------

def _interleavings(traces: Sequence[Trace]) -> Iterator[Trace]:
    """All interleavings of the given traces (preserving each order)."""
    traces = [t for t in traces if t]
    if not traces:
        yield ()
        return
    if len(traces) == 1:
        yield traces[0]
        return
    for index, trace in enumerate(traces):
        head, rest = trace[0], trace[1:]
        remaining = list(traces)
        if rest:
            remaining[index] = rest
        else:
            del remaining[index]
        for tail in _interleavings(remaining):
            yield (head,) + tail


def _fragment_traces(fragment, env: Optional[Dict[str, Any]],
                     limit: int) -> List[Trace]:
    if isinstance(fragment, Message):
        return [(fragment.label,)]
    if not isinstance(fragment, CombinedFragment):
        raise InteractionError(f"unexpected fragment {fragment!r}")
    operator = fragment.operator

    if operator is InteractionOperator.ALT:
        collected: List[Trace] = []
        for operand in _viable_operands(fragment, env):
            collected.extend(_sequence_traces(operand.fragments, env, limit))
            if len(collected) > limit:
                raise InteractionError(
                    f"trace enumeration exceeded limit {limit}")
        return collected

    if operator is InteractionOperator.OPT:
        body = _sequence_traces(fragment.operands[0].fragments, env, limit)
        if _guard_allows(fragment.operands[0], env):
            return [()] + body
        return [()]

    if operator is InteractionOperator.LOOP:
        body = _sequence_traces(fragment.operands[0].fragments, env, limit)
        collected = []
        for repetitions in range(fragment.loop_min, fragment.loop_max + 1):
            power: List[Trace] = [()]
            for _ in range(repetitions):
                power = [p + b for p in power for b in body]
                if len(power) > limit:
                    raise InteractionError(
                        f"trace enumeration exceeded limit {limit}")
            collected.extend(power)
            if len(collected) > limit:
                raise InteractionError(
                    f"trace enumeration exceeded limit {limit}")
        return collected

    if operator in (InteractionOperator.STRICT, InteractionOperator.CRITICAL):
        collected = [()]
        for operand in fragment.operands:
            body = _sequence_traces(operand.fragments, env, limit)
            collected = [c + b for c in collected for b in body]
            if len(collected) > limit:
                raise InteractionError(
                    f"trace enumeration exceeded limit {limit}")
        return collected

    if operator is InteractionOperator.PAR:
        operand_traces = [_sequence_traces(op.fragments, env, limit)
                          for op in fragment.operands]
        collected = []
        combos: List[Tuple[Trace, ...]] = [()]
        for options in operand_traces:
            combos = [c + (o,) for c in combos for o in options]
        for combo in combos:
            for woven in _interleavings(combo):
                collected.append(woven)
                if len(collected) > limit:
                    raise InteractionError(
                        f"trace enumeration exceeded limit {limit}")
        return collected

    raise InteractionError(f"unsupported operator {operator}")


def _sequence_traces(fragments, env: Optional[Dict[str, Any]],
                     limit: int) -> List[Trace]:
    collected: List[Trace] = [()]
    for fragment in fragments:
        options = _fragment_traces(fragment, env, limit)
        collected = [c + o for c in collected for o in options]
        if len(collected) > limit:
            raise InteractionError(
                f"trace enumeration exceeded limit {limit}")
    return collected


def traces(interaction: Interaction, env: Optional[Dict[str, Any]] = None,
           limit: int = 100_000) -> List[Trace]:
    """The interaction's trace set (deduplicated, deterministic order)."""
    interaction.validate()
    raw = _sequence_traces(interaction.fragments, env, limit)
    seen = set()
    unique: List[Trace] = []
    for trace in raw:
        if trace not in seen:
            seen.add(trace)
            unique.append(trace)
    return unique


# ---------------------------------------------------------------------------
# counting
# ---------------------------------------------------------------------------

def interleaving_count(lengths: Sequence[int]) -> int:
    """Number of interleavings of sequences with the given lengths."""
    total = sum(lengths)
    count = factorial(total)
    for length in lengths:
        count //= factorial(length)
    return count


def _flat_length(fragments) -> Optional[int]:
    """Length of the operand body if it is a flat message sequence."""
    length = 0
    for fragment in fragments:
        if isinstance(fragment, Message):
            length += 1
        else:
            return None
    return length


def trace_count(interaction: Interaction,
                env: Optional[Dict[str, Any]] = None,
                limit: int = 100_000) -> int:
    """Count traces; uses the multinomial closed form for flat ``par``.

    Falls back to bounded enumeration for nested structures.  Note the
    closed form counts *sequences with multiplicity*; when messages are
    distinct (the generator's case) it equals the unique-trace count.
    """
    def count(fragments) -> Optional[int]:
        total = 1
        for fragment in fragments:
            if isinstance(fragment, Message):
                continue
            if not isinstance(fragment, CombinedFragment):
                return None
            if fragment.operator is InteractionOperator.PAR:
                lengths = []
                for operand in fragment.operands:
                    length = _flat_length(operand.fragments)
                    if length is None:
                        return None
                    lengths.append(length)
                total *= interleaving_count(lengths)
            elif fragment.operator is InteractionOperator.ALT:
                branch_sum = 0
                for operand in _viable_operands(fragment, env):
                    nested = count(operand.fragments)
                    if nested is None:
                        return None
                    branch_sum += nested
                total *= max(branch_sum, 1)
            elif fragment.operator is InteractionOperator.OPT:
                nested = count(fragment.operands[0].fragments)
                if nested is None:
                    return None
                total *= nested + 1
            elif fragment.operator is InteractionOperator.LOOP:
                nested = count(fragment.operands[0].fragments)
                if nested is None:
                    return None
                total *= sum(nested ** k for k in
                             range(fragment.loop_min, fragment.loop_max + 1))
            elif fragment.operator in (InteractionOperator.STRICT,
                                       InteractionOperator.CRITICAL):
                for operand in fragment.operands:
                    nested = count(operand.fragments)
                    if nested is None:
                        return None
                    total *= nested
            else:
                return None
        return total

    closed_form = count(interaction.fragments)
    if closed_form is not None:
        return closed_form
    return len(traces(interaction, env, limit))


# ---------------------------------------------------------------------------
# conformance
# ---------------------------------------------------------------------------

def conforms(interaction: Interaction, trace: Sequence[str],
             env: Optional[Dict[str, Any]] = None) -> bool:
    """True when ``trace`` is in the interaction's trace language.

    Memoized nondeterministic matcher: returns the set of end positions
    reachable after each fragment, so conformance never enumerates the
    whole trace set.  ``par`` interleavings are resolved by recursive
    splitting with memoization on (fragment, position) pairs.
    """
    interaction.validate()
    trace = tuple(trace)
    memo: Dict[Tuple[int, Tuple[int, ...], int], frozenset] = {}

    def match_sequence(fragments: Tuple, position: int) -> frozenset:
        positions = frozenset([position])
        for fragment in fragments:
            next_positions = set()
            for pos in positions:
                next_positions |= match_fragment(fragment, pos)
            positions = frozenset(next_positions)
            if not positions:
                return positions
        return positions

    def match_fragment(fragment, position: int) -> frozenset:
        key = (id(fragment), (), position)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = _match_fragment_uncached(fragment, position)
        memo[key] = result
        return result

    def _match_fragment_uncached(fragment, position: int) -> frozenset:
        if isinstance(fragment, Message):
            if position < len(trace) and trace[position] == fragment.label:
                return frozenset([position + 1])
            return frozenset()
        operator = fragment.operator
        if operator is InteractionOperator.ALT:
            out = set()
            for operand in _viable_operands(fragment, env):
                out |= match_sequence(operand.fragments, position)
            return frozenset(out)
        if operator is InteractionOperator.OPT:
            out = {position}
            if _guard_allows(fragment.operands[0], env):
                out |= match_sequence(fragment.operands[0].fragments,
                                      position)
            return frozenset(out)
        if operator is InteractionOperator.LOOP:
            body = fragment.operands[0].fragments
            current = frozenset([position])
            results = set()
            for iteration in range(fragment.loop_max + 1):
                if iteration >= fragment.loop_min:
                    results |= current
                stepped = set()
                for pos in current:
                    stepped |= match_sequence(body, pos)
                nxt = frozenset(stepped)
                if nxt == current or not nxt:
                    current = nxt
                    if iteration + 1 >= fragment.loop_min and nxt:
                        results |= nxt
                    break
                current = nxt
            return frozenset(results)
        if operator in (InteractionOperator.STRICT,
                        InteractionOperator.CRITICAL):
            current = frozenset([position])
            for operand in fragment.operands:
                stepped = set()
                for pos in current:
                    stepped |= match_sequence(operand.fragments, pos)
                current = frozenset(stepped)
                if not current:
                    break
            return current
        if operator is InteractionOperator.PAR:
            return match_par(tuple(op.fragments for op in fragment.operands),
                             position)
        raise InteractionError(f"unsupported operator {operator}")

    def match_par(operand_bodies: Tuple[Tuple, ...],
                  position: int) -> frozenset:
        """Interleaving match via per-operand first-step decomposition."""
        par_memo: Dict[Tuple[Tuple[Tuple[int, int], ...], int], frozenset] = {}

        # Decompose each operand body into (first message consumed,
        # remaining matcher state).  We model operand progress as the
        # set of (fragment index, intra positions...) — to stay simple
        # and correct we instead enumerate each operand's traces ONCE
        # and interleave over them with a DP; memoization keys on the
        # per-operand consumed counts.
        operand_traces = [
            _sequence_traces(body, env, 100_000) for body in operand_bodies
        ]

        ends = set()
        combos: List[Tuple[Trace, ...]] = [()]
        for options in operand_traces:
            combos = [c + (o,) for c in combos for o in options]
        for combo in combos:
            ends |= _interleave_match(combo, position)
        return frozenset(ends)

    def _interleave_match(sequences: Tuple[Trace, ...],
                          position: int) -> frozenset:
        lengths = tuple(len(s) for s in sequences)
        total = sum(lengths)
        if position + total > len(trace):
            pass  # may still fail fast below
        states = {tuple(0 for _ in sequences): {position}}
        for _ in range(total):
            next_states: Dict[Tuple[int, ...], set] = {}
            for consumed, positions in states.items():
                for index, sequence in enumerate(sequences):
                    taken = consumed[index]
                    if taken >= len(sequence):
                        continue
                    label = sequence[taken]
                    for pos in positions:
                        if pos < len(trace) and trace[pos] == label:
                            key = consumed[:index] + (taken + 1,) \
                                + consumed[index + 1:]
                            next_states.setdefault(key, set()).add(pos + 1)
            states = next_states
            if not states:
                return frozenset()
        final_key = lengths
        return frozenset(states.get(final_key, set()))

    ends = match_sequence(tuple(interaction.fragments), 0)
    return len(trace) in ends
