"""Interaction (sequence diagram) metamodel.

UML 2.0 extended the Sequence Diagram "to be comparable to an SDL
Message Sequence Chart" (the paper): lifelines, messages of several
sorts, and — the UML 2.0 addition — *combined fragments* (``alt``,
``opt``, ``loop``, ``par``, ``strict``, ``critical``) structuring the
message flow.  Trace semantics live in
:mod:`repro.interactions.traces`.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import InteractionError
from ..metamodel.classifiers import Classifier
from ..metamodel.element import Element
from ..metamodel.namespaces import NamedElement, PackageableElement


class MessageSort(enum.Enum):
    """The kind of communication a message conveys."""

    SYNC_CALL = "synchCall"
    ASYNC_CALL = "asynchCall"
    ASYNC_SIGNAL = "asynchSignal"
    REPLY = "reply"
    CREATE = "createMessage"
    DELETE = "deleteMessage"


class InteractionOperator(enum.Enum):
    """Combined fragment operators (the supported UML 2.0 subset)."""

    ALT = "alt"
    OPT = "opt"
    LOOP = "loop"
    PAR = "par"
    STRICT = "strict"
    CRITICAL = "critical"


class Lifeline(NamedElement):
    """A participant in the interaction."""

    _id_tag = "Lifeline"

    def __init__(self, name: str = "",
                 represents: Optional[Classifier] = None):
        super().__init__(name)
        self.represents = represents

    def __repr__(self) -> str:
        return f"<Lifeline {self.name!r}>"


class Message(Element):
    """A message between two lifelines (or a self-message)."""

    _id_tag = "Message"

    def __init__(self, name: str, sender: Lifeline, receiver: Lifeline,
                 sort: MessageSort = MessageSort.ASYNC_SIGNAL,
                 arguments: Optional[Dict[str, Any]] = None):
        super().__init__()
        self.name = name
        self.sender = sender
        self.receiver = receiver
        self.sort = sort
        self.arguments = dict(arguments or {})

    @property
    def is_self_message(self) -> bool:
        """True when sender and receiver coincide."""
        return self.sender is self.receiver

    @property
    def label(self) -> str:
        """Canonical trace label: ``sender->receiver:name``."""
        return f"{self.sender.name}->{self.receiver.name}:{self.name}"

    def __repr__(self) -> str:
        return f"<Message {self.label}>"


class InteractionOperand(Element):
    """One operand of a combined fragment, with an optional guard.

    ``fragments`` is the ordered body: messages and nested combined
    fragments.  The guard is an ASL expression evaluated against the
    environment passed to the trace functions (an absent guard is
    ``true``).
    """

    _id_tag = "InteractionOperand"

    def __init__(self, guard: Optional[str] = None):
        super().__init__()
        self.guard = guard

    @property
    def fragments(self) -> Tuple[Element, ...]:
        """The ordered body of this operand."""
        return tuple(child for child in self.owned_elements
                     if isinstance(child, (Message, CombinedFragment)))

    def add(self, fragment: Union[Message, "CombinedFragment"]) -> Element:
        """Append a message or nested fragment to the operand body."""
        self._own(fragment)
        return fragment


class CombinedFragment(Element):
    """A combined fragment: operator + one or more operands."""

    _id_tag = "CombinedFragment"

    def __init__(self, operator: InteractionOperator,
                 loop_min: int = 0, loop_max: int = 1):
        super().__init__()
        self.operator = operator
        if operator is InteractionOperator.LOOP:
            if loop_min < 0 or loop_max < loop_min:
                raise InteractionError(
                    f"invalid loop bounds [{loop_min}, {loop_max}]")
        self.loop_min = loop_min
        self.loop_max = loop_max

    @property
    def operands(self) -> Tuple[InteractionOperand, ...]:
        """The operands, in declaration order."""
        return self.owned_of_type(InteractionOperand)

    def add_operand(self, guard: Optional[str] = None) -> InteractionOperand:
        """Append an operand.

        ``opt``/``loop``/``critical`` take exactly one operand; ``alt``,
        ``par`` and ``strict`` take any number.
        """
        single = (InteractionOperator.OPT, InteractionOperator.LOOP,
                  InteractionOperator.CRITICAL)
        if self.operator in single and self.operands:
            raise InteractionError(
                f"{self.operator.value} fragments take exactly one operand")
        operand = InteractionOperand(guard)
        self._own(operand)
        return operand

    def validate(self) -> None:
        """Raise on structurally invalid fragments."""
        count = len(self.operands)
        if count == 0:
            raise InteractionError(
                f"{self.operator.value} fragment has no operands")
        if self.operator is InteractionOperator.ALT and count < 1:
            raise InteractionError("alt needs at least one operand")
        if self.operator in (InteractionOperator.PAR,
                             InteractionOperator.STRICT) and count < 2:
            raise InteractionError(
                f"{self.operator.value} needs at least two operands")

    def __repr__(self) -> str:
        return (f"<CombinedFragment {self.operator.value} "
                f"({len(self.operands)} operands)>")


class Interaction(PackageableElement):
    """A sequence diagram: lifelines plus an ordered fragment body."""

    _id_tag = "Interaction"

    # -- lifelines -----------------------------------------------------------

    @property
    def lifelines(self) -> Tuple[Lifeline, ...]:
        """Participating lifelines."""
        return self.owned_of_type(Lifeline)

    def add_lifeline(self, name: str,
                     represents: Optional[Classifier] = None) -> Lifeline:
        """Create and own a lifeline."""
        if any(l.name == name for l in self.lifelines):
            raise InteractionError(
                f"interaction {self.name!r} already has lifeline {name!r}")
        lifeline = Lifeline(name, represents)
        self._own(lifeline)
        return lifeline

    def lifeline(self, name: str) -> Lifeline:
        """Lookup a lifeline by name."""
        for lifeline in self.lifelines:
            if lifeline.name == name:
                return lifeline
        raise InteractionError(
            f"interaction {self.name!r} has no lifeline {name!r}")

    # -- body ------------------------------------------------------------------

    @property
    def fragments(self) -> Tuple[Element, ...]:
        """The ordered top-level body (messages and combined fragments)."""
        return tuple(child for child in self.owned_elements
                     if isinstance(child, (Message, CombinedFragment)))

    def message(self, name: str, sender: Union[Lifeline, str],
                receiver: Union[Lifeline, str],
                sort: MessageSort = MessageSort.ASYNC_SIGNAL,
                arguments: Optional[Dict[str, Any]] = None) -> Message:
        """Append a message to the top-level body."""
        sender_obj = self.lifeline(sender) if isinstance(sender, str) else sender
        receiver_obj = (self.lifeline(receiver) if isinstance(receiver, str)
                        else receiver)
        message = Message(name, sender_obj, receiver_obj, sort, arguments)
        self._own(message)
        return message

    def combined(self, operator: InteractionOperator,
                 loop_min: int = 0, loop_max: int = 1) -> CombinedFragment:
        """Append a combined fragment to the top-level body."""
        fragment = CombinedFragment(operator, loop_min, loop_max)
        self._own(fragment)
        return fragment

    def alt(self) -> CombinedFragment:
        """Append an ``alt`` fragment."""
        return self.combined(InteractionOperator.ALT)

    def opt(self) -> CombinedFragment:
        """Append an ``opt`` fragment."""
        return self.combined(InteractionOperator.OPT)

    def par(self) -> CombinedFragment:
        """Append a ``par`` fragment."""
        return self.combined(InteractionOperator.PAR)

    def strict(self) -> CombinedFragment:
        """Append a ``strict`` fragment."""
        return self.combined(InteractionOperator.STRICT)

    def loop(self, minimum: int, maximum: int) -> CombinedFragment:
        """Append a ``loop`` fragment with the given iteration bounds."""
        return self.combined(InteractionOperator.LOOP, minimum, maximum)

    def validate(self) -> None:
        """Validate all nested combined fragments and message endpoints."""
        owned_lifelines = set(map(id, self.lifelines))
        for element in self.all_owned():
            if isinstance(element, CombinedFragment):
                element.validate()
            if isinstance(element, Message):
                if (id(element.sender) not in owned_lifelines
                        or id(element.receiver) not in owned_lifelines):
                    raise InteractionError(
                        f"{element!r} references a lifeline outside "
                        f"interaction {self.name!r}")

    def __repr__(self) -> str:
        return (f"<Interaction {self.name!r} ({len(self.lifelines)} "
                f"lifelines)>")
