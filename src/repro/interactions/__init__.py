"""UML 2.0 interactions / sequence diagrams (subsystem S4).

Lifelines, messages and combined fragments, with MSC-style trace
semantics: enumeration, counting (closed form for flat ``par``), and a
memoized conformance matcher.
"""

from .model import (
    CombinedFragment,
    Interaction,
    InteractionOperand,
    InteractionOperator,
    Lifeline,
    Message,
    MessageSort,
)
from .traces import conforms, interleaving_count, trace_count, traces
from .observe import (
    interaction_from_messages,
    interaction_from_simulation,
    interaction_from_trace,
    observed_trace,
)

__all__ = [
    "CombinedFragment", "Interaction", "InteractionOperand",
    "InteractionOperator", "Lifeline", "Message", "MessageSort",
    "conforms", "interleaving_count", "trace_count", "traces",
    "interaction_from_messages", "interaction_from_simulation",
    "interaction_from_trace", "observed_trace",
]
