"""The 13 UML 2.0 diagram types as views over the model.

"UML 2.0 ... covers 13 diagram types to describe various structural,
behavioral and physical aspects of a system" (the paper).  A
:class:`Diagram` is a *view*: a named selection of model elements under
one of the 13 kinds.  Factories extract the conventional content for
each kind from a scope (e.g. a class diagram of a package collects its
classifiers and associations).  Rendering to PlantUML text lives in
:mod:`repro.diagrams.plantuml`.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from .. import activities as ac
from .. import interactions as ixn
from .. import metamodel as mm
from .. import statemachines as st


class DiagramKind(enum.Enum):
    """The 13 diagram types of UML 2.0."""

    CLASS = "class"
    OBJECT = "object"
    PACKAGE = "package"
    COMPOSITE_STRUCTURE = "composite structure"
    COMPONENT = "component"
    DEPLOYMENT = "deployment"
    USE_CASE = "use case"
    ACTIVITY = "activity"
    STATE_MACHINE = "state machine"
    SEQUENCE = "sequence"
    COMMUNICATION = "communication"
    INTERACTION_OVERVIEW = "interaction overview"
    TIMING = "timing"


#: The structural / behavioral / physical grouping from the paper.
STRUCTURAL_KINDS = (
    DiagramKind.CLASS, DiagramKind.OBJECT, DiagramKind.PACKAGE,
    DiagramKind.COMPOSITE_STRUCTURE, DiagramKind.COMPONENT,
)
BEHAVIORAL_KINDS = (
    DiagramKind.USE_CASE, DiagramKind.ACTIVITY, DiagramKind.STATE_MACHINE,
    DiagramKind.SEQUENCE, DiagramKind.COMMUNICATION,
    DiagramKind.INTERACTION_OVERVIEW, DiagramKind.TIMING,
)
PHYSICAL_KINDS = (DiagramKind.DEPLOYMENT,)


class Diagram:
    """A named view: a diagram kind plus the elements it shows."""

    def __init__(self, kind: DiagramKind, name: str,
                 elements: Tuple[mm.Element, ...] = ()):
        self.kind = kind
        self.name = name
        self.elements: List[mm.Element] = list(elements)

    def add(self, element: mm.Element) -> "Diagram":
        """Include an element in the view (chainable)."""
        if element not in self.elements:
            self.elements.append(element)
        return self

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:
        return (f"<Diagram [{self.kind.value}] {self.name!r} "
                f"({len(self.elements)} elements)>")


# -- extraction factories -----------------------------------------------------

def class_diagram(package: mm.Package, name: str = "") -> Diagram:
    """Classes, interfaces, data types and associations of a package."""
    diagram = Diagram(DiagramKind.CLASS, name or f"{package.name} classes")
    for element in package.packaged_elements:
        if isinstance(element, (mm.Classifier, mm.Association,
                                mm.Enumeration, mm.DataType)):
            diagram.add(element)
    return diagram


def object_diagram(package: mm.Package, name: str = "") -> Diagram:
    """Instance specifications and links of a package."""
    diagram = Diagram(DiagramKind.OBJECT, name or f"{package.name} objects")
    for element in package.packaged_elements:
        if isinstance(element, (mm.InstanceSpecification, mm.Link)):
            diagram.add(element)
    return diagram


def package_diagram(root: mm.Package, name: str = "") -> Diagram:
    """The package nesting and import structure under a root."""
    diagram = Diagram(DiagramKind.PACKAGE, name or f"{root.name} packages")
    for package in root.all_packages():
        diagram.add(package)
    return diagram


def component_diagram(package: mm.Package, name: str = "") -> Diagram:
    """Components and their interface wiring."""
    diagram = Diagram(DiagramKind.COMPONENT,
                      name or f"{package.name} components")
    for element in package.packaged_elements:
        if isinstance(element, (mm.Component, mm.Interface)):
            diagram.add(element)
    return diagram


def composite_structure_diagram(component: mm.Component,
                                name: str = "") -> Diagram:
    """The internal parts, ports and connectors of one component."""
    diagram = Diagram(DiagramKind.COMPOSITE_STRUCTURE,
                      name or f"{component.name} structure")
    diagram.add(component)
    for part in component.parts:
        diagram.add(part)
    for connector in component.connectors:
        diagram.add(connector)
    return diagram


def deployment_diagram(package: mm.Package, name: str = "") -> Diagram:
    """Nodes, artifacts and communication paths."""
    diagram = Diagram(DiagramKind.DEPLOYMENT,
                      name or f"{package.name} deployment")
    for element in package.packaged_elements:
        if isinstance(element, (mm.Node, mm.Artifact, mm.CommunicationPath)):
            diagram.add(element)
    return diagram


def use_case_diagram(package: mm.Package, name: str = "") -> Diagram:
    """Actors and use cases."""
    diagram = Diagram(DiagramKind.USE_CASE,
                      name or f"{package.name} use cases")
    for element in package.packaged_elements:
        if isinstance(element, (mm.Actor, mm.UseCase)):
            diagram.add(element)
    return diagram


def state_machine_diagram(machine: st.StateMachine,
                          name: str = "") -> Diagram:
    """One state machine as a diagram."""
    diagram = Diagram(DiagramKind.STATE_MACHINE, name or machine.name)
    diagram.add(machine)
    return diagram


def activity_diagram(activity: ac.Activity, name: str = "") -> Diagram:
    """One activity as a diagram."""
    diagram = Diagram(DiagramKind.ACTIVITY, name or activity.name)
    diagram.add(activity)
    return diagram


def sequence_diagram(interaction: ixn.Interaction,
                     name: str = "") -> Diagram:
    """One interaction as a sequence diagram."""
    diagram = Diagram(DiagramKind.SEQUENCE, name or interaction.name)
    diagram.add(interaction)
    return diagram


def communication_diagram(interaction: ixn.Interaction,
                          name: str = "") -> Diagram:
    """The same interaction, viewed by links (communication flavor)."""
    diagram = Diagram(DiagramKind.COMMUNICATION, name or interaction.name)
    diagram.add(interaction)
    return diagram


def timing_diagram(machine: st.StateMachine, name: str = "") -> Diagram:
    """A state machine's state-over-time view (timing flavor)."""
    diagram = Diagram(DiagramKind.TIMING, name or machine.name)
    diagram.add(machine)
    return diagram


def interaction_overview_diagram(activity: ac.Activity,
                                 name: str = "") -> Diagram:
    """An activity whose actions reference interactions."""
    diagram = Diagram(DiagramKind.INTERACTION_OVERVIEW,
                      name or activity.name)
    diagram.add(activity)
    return diagram
