"""Render diagrams to PlantUML text.

Textual diagram export makes models reviewable in any PlantUML viewer
and gives the documentation pipeline something to embed.  Each renderer
consumes a :class:`~repro.diagrams.registry.Diagram` (or the underlying
element directly) and returns ``@startuml .. @enduml`` text.
"""

from __future__ import annotations

from typing import List

from .. import activities as ac
from .. import interactions as ixn
from .. import metamodel as mm
from .. import statemachines as st
from ..profiles.core import stereotypes_of
from .registry import Diagram, DiagramKind


def _stereo(element: mm.Element) -> str:
    names = [s.name for s in stereotypes_of(element)]
    return " " + " ".join(f"<<{n}>>" for n in names) if names else ""


def _safe(name: str) -> str:
    return name.replace(" ", "_").replace("-", "_") or "unnamed"


# ---------------------------------------------------------------------------
# class / component diagrams
# ---------------------------------------------------------------------------

def render_classifier(classifier: mm.Classifier) -> List[str]:
    """PlantUML lines declaring one classifier with its features."""
    if isinstance(classifier, mm.Interface):
        keyword = "interface"
    elif isinstance(classifier, mm.Component):
        keyword = "component" if not classifier.attributes \
            and not classifier.operations else "class"
    elif isinstance(classifier, mm.Enumeration):
        keyword = "enum"
    elif getattr(classifier, "is_abstract", False):
        keyword = "abstract class"
    else:
        keyword = "class"
    lines = [f"{keyword} {_safe(classifier.name)}{_stereo(classifier)} {{"]
    if isinstance(classifier, mm.Enumeration):
        for literal in classifier.literals:
            lines.append(f"  {literal.name}")
    else:
        for attribute in classifier.attributes:
            if isinstance(attribute, mm.Port):
                continue
            type_part = f": {attribute.type_name}" if attribute.type else ""
            multiplicity = attribute.multiplicity
            mult_part = f" [{multiplicity}]" if str(multiplicity) != "1" else ""
            lines.append(f"  {attribute.name}{type_part}{mult_part}")
        for operation in classifier.operations:
            lines.append(f"  {operation.signature}")
    lines.append("}")
    return lines


def render_class_diagram(diagram: Diagram) -> str:
    """A class/component diagram as PlantUML."""
    lines = ["@startuml", f"title {diagram.name}"]
    classifiers = [e for e in diagram.elements
                   if isinstance(e, mm.Classifier)]
    for classifier in classifiers:
        lines.extend(render_classifier(classifier))
    shown = {id(c) for c in classifiers}
    for classifier in classifiers:
        for general in classifier.generals:
            if id(general) in shown:
                lines.append(f"{_safe(general.name)} <|-- "
                             f"{_safe(classifier.name)}")
        for contract in classifier.realized_interfaces:
            if id(contract) in shown:
                lines.append(f"{_safe(contract.name)} <|.. "
                             f"{_safe(classifier.name)}")
    for element in diagram.elements:
        if isinstance(element, mm.Association) and element.is_binary:
            first, second = element.end_types
            if id(first) in shown and id(second) in shown:
                label = f" : {element.name}" if element.name else ""
                ends = element.member_ends
                lines.append(
                    f'{_safe(second.name)} "{ends[1].multiplicity}" -- '
                    f'"{ends[0].multiplicity}" {_safe(first.name)}{label}')
    lines.append("@enduml")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# state machine diagrams
# ---------------------------------------------------------------------------

def render_state_machine(machine: st.StateMachine) -> str:
    """A state machine as PlantUML."""
    lines = ["@startuml", f"title {machine.name}"]

    def emit_region(region: st.Region, indent: str) -> None:
        for vertex in region.vertices:
            if isinstance(vertex, st.FinalState):
                continue
            if isinstance(vertex, st.Pseudostate):
                if vertex.kind in (st.PseudostateKind.CHOICE,
                                   st.PseudostateKind.JUNCTION):
                    lines.append(f"{indent}state {_safe(vertex.name)} "
                                 f"<<choice>>")
                elif vertex.kind in (st.PseudostateKind.FORK,
                                     st.PseudostateKind.JOIN):
                    lines.append(f"{indent}state {_safe(vertex.name)} "
                                 f"<<{vertex.kind.value}>>")
                continue
            if isinstance(vertex, st.State) and vertex.is_composite:
                lines.append(f"{indent}state {_safe(vertex.name)} {{")
                for index, nested in enumerate(vertex.regions):
                    if index:
                        lines.append(f"{indent}  --")
                    emit_region(nested, indent + "  ")
                lines.append(f"{indent}}}")
            elif isinstance(vertex, st.State):
                lines.append(f"{indent}state {_safe(vertex.name)}")
                if vertex.entry and isinstance(vertex.entry, str):
                    lines.append(f"{indent}{_safe(vertex.name)} : "
                                 f"entry / {vertex.entry}")
                if vertex.exit and isinstance(vertex.exit, str):
                    lines.append(f"{indent}{_safe(vertex.name)} : "
                                 f"exit / {vertex.exit}")
        for transition in region.transitions:
            source, target = transition.source, transition.target
            source_name = "[*]" if isinstance(source, st.Pseudostate) \
                and source.kind is st.PseudostateKind.INITIAL \
                else _safe(source.name)
            target_name = "[*]" if isinstance(target, st.FinalState) \
                else _safe(target.name)
            label_parts = []
            if transition.triggers:
                label_parts.append(
                    ",".join(t.name for t in transition.triggers))
            if isinstance(transition.guard, str):
                label_parts.append(f"[{transition.guard}]")
            if isinstance(transition.effect, str):
                label_parts.append(f"/ {transition.effect}")
            label = f" : {' '.join(label_parts)}" if label_parts else ""
            lines.append(f"{indent}{source_name} --> {target_name}{label}")

    for region in machine.regions:
        emit_region(region, "")
    lines.append("@enduml")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# activity diagrams
# ---------------------------------------------------------------------------

def render_activity(activity: ac.Activity) -> str:
    """An activity as PlantUML (graph form with explicit nodes)."""
    lines = ["@startuml", f"title {activity.name}"]
    names = {}
    for node in activity.nodes:
        safe = _safe(node.name)
        names[id(node)] = safe
        if isinstance(node, ac.InitialNode):
            names[id(node)] = "(*)"
        elif isinstance(node, (ac.ActivityFinalNode, ac.FlowFinalNode)):
            names[id(node)] = "(*)"
        elif isinstance(node, (ac.ForkNode, ac.JoinNode)):
            lines.append(f"state {safe} <<fork>>" if isinstance(
                node, ac.ForkNode) else f"state {safe} <<join>>")
        elif isinstance(node, (ac.DecisionNode, ac.MergeNode)):
            lines.append(f"state {safe} <<choice>>")
        else:
            lines.append(f"state {safe}")
    for edge in activity.edges:
        guard = ""
        if isinstance(edge.guard, str):
            guard = f" : [{edge.guard}]"
        source = names.get(id(edge.source), _safe(edge.source.name))
        target = names.get(id(edge.target), _safe(edge.target.name))
        lines.append(f"{source} --> {target}{guard}")
    lines.append("@enduml")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# sequence diagrams
# ---------------------------------------------------------------------------

def render_interaction(interaction: ixn.Interaction) -> str:
    """An interaction as a PlantUML sequence diagram."""
    lines = ["@startuml", f"title {interaction.name}"]
    for lifeline in interaction.lifelines:
        represents = (f" : {lifeline.represents.name}"
                      if lifeline.represents else "")
        lines.append(f"participant {_safe(lifeline.name)}{represents}")

    def emit_fragment(fragment, indent: str) -> None:
        if isinstance(fragment, ixn.Message):
            arrow = "->" if fragment.sort in (ixn.MessageSort.SYNC_CALL,
                                              ixn.MessageSort.REPLY) \
                else "->>"
            if fragment.sort is ixn.MessageSort.REPLY:
                arrow = "-->"
            lines.append(f"{indent}{_safe(fragment.sender.name)} {arrow} "
                         f"{_safe(fragment.receiver.name)}: {fragment.name}")
            return
        operator = fragment.operator
        keyword = operator.value
        if operator is ixn.InteractionOperator.LOOP:
            keyword = f"loop {fragment.loop_min}..{fragment.loop_max}"
            lines.append(f"{indent}{keyword}")
        else:
            first_guard = fragment.operands[0].guard or ""
            lines.append(f"{indent}{keyword} {first_guard}".rstrip())
        for index, operand in enumerate(fragment.operands):
            if index:
                guard = operand.guard or ""
                lines.append(f"{indent}else {guard}".rstrip())
            for nested in operand.fragments:
                emit_fragment(nested, indent + "  ")
        lines.append(f"{indent}end")

    for fragment in interaction.fragments:
        emit_fragment(fragment, "")
    lines.append("@enduml")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# deployment diagrams
# ---------------------------------------------------------------------------

def render_deployment(diagram: Diagram) -> str:
    """A deployment diagram as PlantUML: nodes, artifacts, paths."""
    lines = ["@startuml", f"title {diagram.name}"]
    shown_artifacts = set()

    def emit_node(node: mm.Node, indent: str) -> None:
        lines.append(f"{indent}node {_safe(node.name)} {{")
        for artifact in node.deployed_artifacts:
            shown_artifacts.add(id(artifact))
            lines.append(f"{indent}  artifact {_safe(artifact.name)}")
        for nested in node.nested_nodes:
            emit_node(nested, indent + "  ")
        lines.append(f"{indent}}}")

    top_nodes = [e for e in diagram.elements if isinstance(e, mm.Node)
                 and not isinstance(e.owner, mm.Node)]
    for node in top_nodes:
        emit_node(node, "")
    for element in diagram.elements:
        if isinstance(element, mm.Artifact) \
                and id(element) not in shown_artifacts:
            lines.append(f"artifact {_safe(element.name)}")
    for element in diagram.elements:
        if isinstance(element, mm.CommunicationPath):
            first, second = element.ends
            label = f" : {element.name}" if element.name else ""
            lines.append(f"{_safe(first.name)} -- "
                         f"{_safe(second.name)}{label}")
    lines.append("@enduml")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------

def render(diagram: Diagram) -> str:
    """Render any diagram view to PlantUML text."""
    kind = diagram.kind
    if kind is DiagramKind.DEPLOYMENT:
        return render_deployment(diagram)
    if kind in (DiagramKind.CLASS, DiagramKind.OBJECT, DiagramKind.PACKAGE,
                DiagramKind.COMPONENT, DiagramKind.COMPOSITE_STRUCTURE,
                DiagramKind.USE_CASE):
        return render_class_diagram(diagram)
    if kind in (DiagramKind.STATE_MACHINE, DiagramKind.TIMING):
        machine = next(e for e in diagram.elements
                       if isinstance(e, st.StateMachine))
        return render_state_machine(machine)
    if kind in (DiagramKind.ACTIVITY, DiagramKind.INTERACTION_OVERVIEW):
        activity = next(e for e in diagram.elements
                        if isinstance(e, ac.Activity))
        return render_activity(activity)
    if kind in (DiagramKind.SEQUENCE, DiagramKind.COMMUNICATION):
        interaction = next(e for e in diagram.elements
                           if isinstance(e, ixn.Interaction))
        return render_interaction(interaction)
    raise ValueError(f"no renderer for {kind}")
