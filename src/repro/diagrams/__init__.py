"""The 13 UML 2.0 diagram types as views + PlantUML export (S14)."""

from .registry import (
    BEHAVIORAL_KINDS,
    Diagram,
    DiagramKind,
    PHYSICAL_KINDS,
    STRUCTURAL_KINDS,
    activity_diagram,
    class_diagram,
    communication_diagram,
    component_diagram,
    composite_structure_diagram,
    deployment_diagram,
    interaction_overview_diagram,
    object_diagram,
    package_diagram,
    sequence_diagram,
    state_machine_diagram,
    timing_diagram,
    use_case_diagram,
)
from .plantuml import (
    render,
    render_activity,
    render_class_diagram,
    render_classifier,
    render_deployment,
    render_interaction,
    render_state_machine,
)

__all__ = [
    "BEHAVIORAL_KINDS", "Diagram", "DiagramKind", "PHYSICAL_KINDS",
    "STRUCTURAL_KINDS",
    "activity_diagram", "class_diagram", "communication_diagram",
    "component_diagram", "composite_structure_diagram",
    "deployment_diagram", "interaction_overview_diagram", "object_diagram",
    "package_diagram", "sequence_diagram", "state_machine_diagram",
    "timing_diagram", "use_case_diagram",
    "render", "render_activity", "render_class_diagram",
    "render_classifier", "render_deployment", "render_interaction",
    "render_state_machine",
]
