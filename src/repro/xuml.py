"""Executable UML (xUML): object-level model execution.

The paper devotes Section 3 to Executable UML: ASL "describes notation
and semantics for single actions like operation calls and assignments
in UML models and thus closes the last gap to complete system
specification".  This module is that last gap closed at the *object*
level:

* :class:`XObject` — a live instance of a :class:`~repro.metamodel.UmlClass`:
  attribute values seeded from defaults, ASL operation bodies callable
  (with recursive operation-to-operation dispatch), and the class's
  classifier state machine running with the object's attributes as its
  context;
* :class:`XUniverse` — a registry of named objects that routes
  ``send Sig(...) to "name"`` between them, so a whole object model
  executes as a system of communicating xUML instances.

This complements :mod:`repro.simulation.cosim` (which executes
*component assemblies over simulated time*): the xUML universe is the
untimed object-semantics view the xUML literature describes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from . import asl
from .errors import ModelError, ReproError
from .metamodel.classifiers import UmlClass
from .metamodel.components import Port
from .metamodel.instances import InstanceSpecification
from .statemachines.events import EventOccurrence
from .statemachines.kernel import StateMachine
from .statemachines.runtime import StateMachineRuntime


class XumlError(ReproError):
    """An xUML execution failure (unknown operation, bad target, ...)."""


class XObject:
    """A live instance of a UML class.

    ``attributes`` is the object's state; when the class has a
    classifier state machine the same dict is the machine's context, so
    operations and transitions see one consistent object state — the
    xUML data model.
    """

    def __init__(self, classifier: UmlClass, name: str = "",
                 universe: Optional["XUniverse"] = None,
                 **initial: Any):
        self.classifier = classifier
        self.name = name or f"{classifier.name.lower()}_obj"
        self.universe = universe
        self.attributes: Dict[str, Any] = {}
        for attribute in classifier.all_attributes():
            if isinstance(attribute, Port):
                continue
            if attribute.default_value is not None:
                self.attributes[attribute.name] = attribute.default_value
        for key, value in initial.items():
            if not any(a.name == key
                       for a in classifier.all_attributes()):
                raise ModelError(
                    f"{classifier.name!r} has no attribute {key!r}")
            self.attributes[key] = value

        self.sent: List[asl.SentSignal] = []
        self.machine_runtime: Optional[StateMachineRuntime] = None
        behavior = classifier.classifier_behavior
        if isinstance(behavior, StateMachine):
            self.machine_runtime = StateMachineRuntime(
                behavior, context=self.attributes,
                signal_sink=self._sink)
            # share state: the runtime copied the dict; re-alias it
            self.machine_runtime.context = self.attributes
            self.machine_runtime.start()

    @classmethod
    def from_instance(cls, instance: InstanceSpecification,
                      universe: Optional["XUniverse"] = None) -> "XObject":
        """Instantiate from an object-diagram instance specification."""
        classifier = instance.classifier
        if not isinstance(classifier, UmlClass):
            raise XumlError(
                f"instance {instance.name!r} is not classified by a class")
        obj = cls(classifier, name=instance.name, universe=universe)
        for slot in instance.slots:
            obj.attributes[slot.feature.name] = \
                instance.slot_value(slot.feature.name)
        return obj

    # -- operations --------------------------------------------------------

    def call(self, operation_name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke a UML operation with an ASL body on this object."""
        operation = self.classifier.find_operation(operation_name)
        if operation is None:
            raise XumlError(
                f"{self.classifier.name!r} has no operation "
                f"{operation_name!r}")
        if operation.body is None:
            raise XumlError(
                f"operation {operation_name!r} has no ASL body")
        parameters = operation.in_parameters
        if len(args) > len(parameters):
            raise XumlError(
                f"{operation.signature}: {len(args)} positional args for "
                f"{len(parameters)} parameters")
        bound: Dict[str, Any] = {}
        for parameter, value in zip(parameters, args):
            bound[parameter.name] = value
        for key, value in kwargs.items():
            if not any(p.name == key for p in parameters):
                raise XumlError(
                    f"{operation.signature}: unknown parameter {key!r}")
            if key in bound:
                raise XumlError(
                    f"{operation.signature}: parameter {key!r} given twice")
            bound[key] = value
        for parameter in parameters:
            if parameter.name not in bound:
                if parameter.default_value is not None:
                    bound[parameter.name] = parameter.default_value
                else:
                    raise XumlError(
                        f"{operation.signature}: missing argument "
                        f"{parameter.name!r}")

        environment = dict(self.attributes)
        environment.update(bound)
        environment["self"] = self.attributes
        interpreter = asl.Interpreter(
            environment,
            call_handler=self._dispatch_operation,
            signal_sink=self._sink)
        result = interpreter.execute(operation.body)
        # write back attribute changes (parameters stay local)
        parameter_names = set(bound)
        for key, value in environment.items():
            if key in parameter_names or key == "self":
                continue
            if key in self.attributes or any(
                    a.name == key
                    for a in self.classifier.all_attributes()):
                self.attributes[key] = value
        return result

    def _dispatch_operation(self, name: str, args: List[Any]) -> Any:
        """ASL calls to unknown functions dispatch to class operations."""
        operation = self.classifier.find_operation(name)
        if operation is not None and operation.body is not None:
            return self.call(name, *args)
        raise XumlError(
            f"{self.classifier.name!r} has no callable operation {name!r}")

    # -- signals -----------------------------------------------------------------

    def send(self, signal_name: str, **parameters: Any) -> "XObject":
        """Deliver a signal event to this object's state machine."""
        if self.machine_runtime is None:
            raise XumlError(
                f"{self.classifier.name!r} has no classifier behavior")
        self.machine_runtime.dispatch(
            EventOccurrence.signal(signal_name, **parameters))
        return self

    def _sink(self, sent: asl.SentSignal) -> None:
        self.sent.append(sent)
        if self.universe is not None:
            self.universe._route(self, sent)

    # -- state ---------------------------------------------------------------------

    @property
    def state(self) -> Tuple[str, ...]:
        """Active leaf state names (empty without a state machine)."""
        if self.machine_runtime is None:
            return ()
        return self.machine_runtime.active_leaf_names()

    def __repr__(self) -> str:
        return (f"<XObject {self.name}:{self.classifier.name} "
                f"{dict(self.attributes)!r}>")


class XUniverse:
    """A set of communicating xUML objects with signal routing.

    ``send X(...) to "name"`` in any member's actions delivers the
    signal to the object registered under that name.  Delivery is
    queued and processed in FIFO order (run-to-completion at system
    level), so signal storms terminate deterministically.
    """

    def __init__(self) -> None:
        self.objects: Dict[str, XObject] = {}
        self._queue: deque = deque()
        self._draining = False
        self.delivered = 0

    # -- population -----------------------------------------------------------

    def create(self, classifier: UmlClass, name: str,
               **initial: Any) -> XObject:
        """Instantiate and register an object."""
        if name in self.objects:
            raise XumlError(f"universe already has an object {name!r}")
        obj = XObject(classifier, name=name, universe=self, **initial)
        self.objects[name] = obj
        return obj

    def populate(self, scope) -> List[XObject]:
        """Instantiate every InstanceSpecification under ``scope``."""
        created = []
        for instance in scope.descendants_of_type(InstanceSpecification):
            if isinstance(instance.classifier, UmlClass):
                obj = XObject.from_instance(instance, universe=self)
                if obj.name in self.objects:
                    raise XumlError(
                        f"duplicate instance name {obj.name!r}")
                self.objects[obj.name] = obj
                created.append(obj)
        return created

    def object(self, name: str) -> XObject:
        """Lookup a registered object."""
        if name not in self.objects:
            raise XumlError(f"no object named {name!r}")
        return self.objects[name]

    # -- routing -------------------------------------------------------------------

    def _route(self, sender: XObject, sent: asl.SentSignal) -> None:
        target = sent.target
        if target is None:
            self._queue.append((sender.name, sent.signal, sent.arguments))
        else:
            target_name = str(target)
            if target_name not in self.objects:
                raise XumlError(
                    f"{sender.name!r} sent {sent.signal!r} to unknown "
                    f"object {target_name!r}")
            self._queue.append((target_name, sent.signal, sent.arguments))
        self._drain()

    def send(self, target: str, signal: str, **parameters: Any) -> None:
        """Inject an external signal into the universe."""
        self.object(target)  # validate early
        self._queue.append((target, signal, parameters))
        self._drain()

    def _drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        try:
            while self._queue:
                target_name, signal, parameters = self._queue.popleft()
                receiver = self.objects[target_name]
                if receiver.machine_runtime is None:
                    continue  # behavior-less objects absorb signals
                self.delivered += 1
                receiver.machine_runtime.dispatch(
                    EventOccurrence.signal(signal, **parameters))
        finally:
            self._draining = False

    def snapshot(self) -> Dict[str, Tuple[str, ...]]:
        """Active states of every object."""
        return {name: obj.state
                for name, obj in sorted(self.objects.items())}

    def __repr__(self) -> str:
        return (f"<XUniverse {len(self.objects)} objects, "
                f"{self.delivered} delivered>")
