"""The transformation rule framework with traceability.

A PIM→PSM transformation is a sequence of :class:`TransformationRule`
objects applied to a *clone* of the source model.  Cloning goes through
the XMI writer/reader — the same serialization used for interchange —
which guarantees the clone is structurally complete and keeps source
ids stable, so the :class:`TraceLink` set is exact: every PSM element
either descends from the equally-named PIM element (same ``xmi_id``) or
appears in a trace link naming the rule that synthesized it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..metamodel.element import Element
from ..metamodel.model import Model
from ..profiles.core import Profile
from .platform import Platform


@dataclass(frozen=True)
class TraceLink:
    """One transformation trace record."""

    rule: str
    source_id: str        # PIM element (or "" for synthesized elements)
    target_id: str        # PSM element
    note: str = ""


class TransformationContext:
    """Shared state while a transformation runs."""

    def __init__(self, source: Model, target: Model, platform: Platform,
                 profile: Optional[Profile] = None):
        self.source = source
        self.target = target
        self.platform = platform
        self.profile = profile
        self.trace: List[TraceLink] = []
        self._source_index = source.build_id_index()
        self._target_index = target.build_id_index()

    def source_of(self, target_element: Element) -> Optional[Element]:
        """The PIM element with the same id, if the clone preserved it."""
        return self._source_index.get(target_element.xmi_id)

    def target_of(self, source_id: str) -> Optional[Element]:
        """The PSM element carrying a given PIM id."""
        return self._target_index.get(source_id)

    def record(self, rule: str, source: Optional[Element],
               target: Element, note: str = "") -> None:
        """Record a trace link (synthesized elements pass source=None)."""
        self.trace.append(TraceLink(
            rule, source.xmi_id if source is not None else "",
            target.xmi_id, note))
        self._target_index[target.xmi_id] = target

    def refresh_target_index(self) -> None:
        """Re-index the target after rules added elements."""
        self._target_index = self.target.build_id_index()


class TransformationRule:
    """One mapping rule.

    ``applies_to`` filters target elements (the clone's elements);
    ``apply`` mutates/extends the target model and records trace links.
    Rules run in ascending ``priority`` order; within a rule, elements
    are visited in model order.
    """

    def __init__(self, name: str,
                 applies_to: Callable[[Element], bool],
                 apply: Callable[[Element, TransformationContext], None],
                 priority: int = 100,
                 description: str = ""):
        self.name = name
        self.applies_to = applies_to
        self.apply = apply
        self.priority = priority
        self.description = description

    def __repr__(self) -> str:
        return f"<TransformationRule {self.name} (priority {self.priority})>"


class ModelRule(TransformationRule):
    """A rule that runs once against the whole target model."""

    def __init__(self, name: str,
                 apply: Callable[[Model, TransformationContext], None],
                 priority: int = 100, description: str = ""):
        super().__init__(
            name,
            applies_to=lambda element: isinstance(element, Model),
            apply=apply,  # type: ignore[arg-type]
            priority=priority,
            description=description)


@dataclass
class TransformationResult:
    """The outcome of one PIM→PSM transformation."""

    pim: Model
    psm: Model
    platform: Platform
    trace: List[TraceLink]
    applications: Dict[str, int]  # rule name -> elements touched
    #: profiles cloned alongside the PSM (their applications target PSM
    #: elements) — needed to serialize the PSM as a store artifact
    psm_profiles: tuple = ()

    @property
    def rules_applied(self) -> int:
        """Total rule applications."""
        return sum(self.applications.values())

    def trace_for(self, source_id: str) -> Tuple[TraceLink, ...]:
        """All trace links for one PIM element."""
        return tuple(t for t in self.trace if t.source_id == source_id)

    def completeness(self) -> float:
        """Fraction of PIM elements represented in the PSM.

        An element counts as represented when the PSM contains an
        element with the same id (clone-preserved) or a trace link names
        it as a source.
        """
        psm_ids = {self.psm.xmi_id}
        for element in self.psm.all_owned():
            psm_ids.add(element.xmi_id)
        traced_sources = {t.source_id for t in self.trace if t.source_id}
        total = 0
        covered = 0
        for element in [self.pim] + list(self.pim.all_owned()):
            total += 1
            if element.xmi_id in psm_ids or element.xmi_id in traced_sources:
                covered += 1
        return covered / total if total else 1.0
