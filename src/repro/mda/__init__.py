"""MDA: PIM→PSM transformation (subsystem S8).

Platforms, the traced rule framework, the engine (XMI-backed cloning)
and the built-in software/hardware mappings.
"""

from .platform import (
    HARDWARE_PLATFORM,
    Platform,
    PlatformKind,
    SOFTWARE_PLATFORM,
)
from .rules import (
    ModelRule,
    TraceLink,
    TransformationContext,
    TransformationResult,
    TransformationRule,
)
from .engine import (
    DEFAULT_TRANSFORM_CACHE,
    TRANSFORM_CACHE_SIZE_ENV,
    TransformCache,
    Transformation,
    clone_model,
    configure_default_cache,
)
from .mappings import hardware_transformation, software_transformation

__all__ = [
    "HARDWARE_PLATFORM", "Platform", "PlatformKind", "SOFTWARE_PLATFORM",
    "ModelRule", "TraceLink", "TransformationContext",
    "TransformationResult", "TransformationRule",
    "DEFAULT_TRANSFORM_CACHE", "TRANSFORM_CACHE_SIZE_ENV",
    "TransformCache", "Transformation", "clone_model",
    "configure_default_cache",
    "hardware_transformation", "software_transformation",
]
