"""Platform descriptions for MDA mappings.

MDA transforms a Platform Independent Model into a Platform Specific
Model "using a platform-specific mapping" (the paper, Section 3).  A
:class:`Platform` names the target and carries the knobs its mapping
rules consult (type mapping, clocking, scheduling policy).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class PlatformKind(enum.Enum):
    """Broad family of a platform."""

    SOFTWARE = "software"
    HARDWARE = "hardware"


@dataclass(frozen=True)
class Platform:
    """An MDA target platform."""

    name: str
    kind: PlatformKind
    description: str = ""
    properties: Dict[str, Any] = field(default_factory=dict)

    def property(self, key: str, default: Any = None) -> Any:
        """A platform property with a default."""
        return self.properties.get(key, default)

    def __str__(self) -> str:
        return f"{self.name} ({self.kind.value})"


#: Multitasking software runtime: active classes become tasks with
#: message queues, signals become messages, a scheduler is synthesized.
SOFTWARE_PLATFORM = Platform(
    name="sw-runtime",
    kind=PlatformKind.SOFTWARE,
    description="event-driven software runtime (tasks + queues + scheduler)",
    properties={
        "queue_depth": 16,
        "scheduler_policy": "fifo",
        "language": "python",
    },
)

#: Synchronous RTL hardware: components become clocked hardware modules
#: with reset, attributes become registers with an allocated address
#: map, and a deployment model (die/clock domains) is synthesized.
HARDWARE_PLATFORM = Platform(
    name="rtl-synchronous",
    kind=PlatformKind.HARDWARE,
    description="synchronous RTL: clocked modules, register map, one die",
    properties={
        "clock_name": "clk",
        "reset_name": "rst_n",
        "reset_active_low": True,
        "register_width": 32,
        "base_address": 0x4000_0000,
        "address_stride": 0x1000,
        "frequency_mhz": 200.0,
    },
)
