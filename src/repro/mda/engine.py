"""The PIM→PSM transformation engine.

``Transformation`` owns an ordered rule list and produces a
:class:`~repro.mda.rules.TransformationResult`:

1. the PIM (plus its profiles) is cloned through XMI — ids stable,
   structure complete;
2. rules run in priority order over the clone;
3. the result carries the full trace, per-rule application counts and a
   completeness measure (experiment D6 asserts completeness == 100%).

Memoization: :meth:`Transformation.transform_cached` keys results in a
:class:`TransformCache` by the transformation's identity plus the
content fingerprints of the PIM and its profiles
(:func:`repro.metamodel.model.model_fingerprint`).  A repeat transform
of an unchanged model is a dict lookup; any element mutation bumps the
model's generation counter, changes its fingerprint and misses the
cache naturally — no explicit invalidation API needed.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import TransformError
from ..metamodel.element import Element
from ..metamodel.model import Model, model_fingerprint
from ..perf import PERF
from ..profiles.core import Profile
from ..xmi.reader import read_model
from ..xmi.writer import write_model
from .platform import Platform
from .rules import (
    ModelRule,
    TraceLink,
    TransformationContext,
    TransformationResult,
    TransformationRule,
)


def clone_model(model: Model,
                profiles: Sequence[Profile] = ()) -> Model:
    """Deep-copy a model (with profile applications) via XMI round-trip."""
    document = read_model(write_model(model, profiles))
    if document.model is None:
        raise TransformError("clone round-trip lost the model root")
    return document.model


class TransformCache:
    """An LRU cache of transformation results keyed by model content.

    Keys combine the transformation identity (name, platform, rule
    names) with the content fingerprints of the PIM and every profile,
    so results are reused exactly when the inputs are byte-equivalent.
    The cached :class:`TransformationResult` (including its PSM) is
    returned *shared* — treat cached PSMs as read-only, or clone them
    with :func:`clone_model` before mutating.
    """

    def __init__(self, max_entries: int = 32):
        if max_entries <= 0:
            raise TransformError("cache size must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, TransformationResult]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Tuple) -> Optional[TransformationResult]:
        result = self._entries.get(key)
        if result is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            PERF.incr("mda.cache_hit")
            PERF.incr("transform.cache.hit")
        else:
            self.misses += 1
            PERF.incr("mda.cache_miss")
            PERF.incr("transform.cache.miss")
        return result

    def store(self, key: Tuple, result: TransformationResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            PERF.incr("transform.cache.evict")

    def resize(self, max_entries: int) -> None:
        """Change the capacity, evicting LRU entries when shrinking."""
        if max_entries <= 0:
            raise TransformError("cache size must be positive")
        self.max_entries = max_entries
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            PERF.incr("transform.cache.evict")

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return (f"<TransformCache {len(self._entries)}/{self.max_entries} "
                f"hits={self.hits} misses={self.misses} "
                f"evictions={self.evictions}>")


#: Environment override for the default cache's capacity.
TRANSFORM_CACHE_SIZE_ENV = "REPRO_TRANSFORM_CACHE_SIZE"


def _default_cache_size() -> int:
    """Capacity for the module default: env override or 32."""
    raw = os.environ.get(TRANSFORM_CACHE_SIZE_ENV, "")
    try:
        size = int(raw)
    except ValueError:
        return 32
    return size if size > 0 else 32


#: Module-level default cache used by ``transform_cached(cache=None)``.
DEFAULT_TRANSFORM_CACHE = TransformCache(_default_cache_size())


def configure_default_cache(max_entries: int) -> TransformCache:
    """Resize the module-default transform cache (PR 1 LRU); returns it.

    ``REPRO_TRANSFORM_CACHE_SIZE`` sets the initial capacity at import
    time; this call reconfigures a live process.
    """
    DEFAULT_TRANSFORM_CACHE.resize(max_entries)
    return DEFAULT_TRANSFORM_CACHE


class Transformation:
    """An ordered, named PIM→PSM mapping."""

    def __init__(self, name: str, platform: Platform,
                 rules: Sequence[TransformationRule] = ()):
        self.name = name
        self.platform = platform
        self.rules: List[TransformationRule] = sorted(
            rules, key=lambda rule: rule.priority)

    def add_rule(self, rule: TransformationRule) -> "Transformation":
        """Insert a rule (kept sorted by priority; chainable)."""
        if any(existing.name == rule.name for existing in self.rules):
            raise TransformError(
                f"transformation {self.name!r} already has rule "
                f"{rule.name!r}")
        self.rules.append(rule)
        self.rules.sort(key=lambda entry: entry.priority)
        return self

    def transform(self, pim: Model,
                  profiles: Sequence[Profile] = (),
                  profile: Optional[Profile] = None
                  ) -> TransformationResult:
        """Run the mapping; the PIM is never mutated."""
        cloned_document = read_model(write_model(pim, profiles))
        psm = cloned_document.model
        if psm is None:
            raise TransformError("clone round-trip lost the model root")
        cloned_profiles = cloned_document.profiles
        active_profile = profile
        if active_profile is None and cloned_profiles:
            active_profile = cloned_profiles[0]

        context = TransformationContext(pim, psm, self.platform,
                                        active_profile)
        applications: Dict[str, int] = {}
        for rule in self.rules:
            touched = 0
            if isinstance(rule, ModelRule):
                rule.apply(psm, context)
                touched += 1
            else:
                # snapshot: rules may add elements while we iterate
                elements = [psm] + list(psm.all_owned())
                for element in elements:
                    if rule.applies_to(element):
                        rule.apply(element, context)
                        touched += 1
            if touched:
                applications[rule.name] = touched
            context.refresh_target_index()

        psm.name = f"{pim.name}_{self.platform.name}"
        return TransformationResult(
            pim=pim, psm=psm, platform=self.platform,
            trace=context.trace, applications=applications,
            psm_profiles=tuple(cloned_profiles))

    def cache_key(self, pim: Model,
                  profiles: Sequence[Profile] = ()) -> Tuple:
        """The content-addressed cache key for transforming ``pim``."""
        return (
            self.name,
            self.platform.name,
            tuple(rule.name for rule in self.rules),
            model_fingerprint(pim),
            tuple(model_fingerprint(profile) for profile in profiles),
        )

    def transform_cached(self, pim: Model,
                         profiles: Sequence[Profile] = (),
                         profile: Optional[Profile] = None,
                         cache: Optional[TransformCache] = None
                         ) -> TransformationResult:
        """Like :meth:`transform`, memoized on model content.

        An unchanged (transformation, PIM, profiles) triple returns the
        previously computed result in O(fingerprint) — a dict lookup
        when the model's generation counter is unchanged.  Mutating any
        element of the PIM or a profile invalidates automatically.  The
        returned result is shared between callers; clone the PSM before
        mutating it.
        """
        if cache is None:
            cache = DEFAULT_TRANSFORM_CACHE
        with PERF.timed("mda.transform_cached_s"):
            key = self.cache_key(pim, profiles)
            result = cache.lookup(key)
            if result is None:
                result = self._transform_via_store(key, pim, profiles,
                                                   profile)
                cache.store(key, result)
            return result

    # -- disk-backed transform artifacts (repro.store) -------------------

    def _transform_via_store(self, key: Tuple, pim: Model,
                             profiles: Sequence[Profile],
                             profile: Optional[Profile]
                             ) -> TransformationResult:
        """Run :meth:`transform`, persisting/serving the PSM artifact.

        With an active artifact store the ``transform`` stage becomes a
        build-graph node: its inputs are the PIM fingerprint plus every
        profile fingerprint (the model slices the stage reads), its
        artifact is the PSM serialized as XMI together with the rule
        trace.  A warm process deserializes instead of re-running the
        rule sweep; without a store this is exactly :meth:`transform`.
        """
        from ..store import get_active_store
        store = get_active_store()
        if store is None:
            return self.transform(pim, profiles, profile)

        inputs = list(key[3:4]) + list(key[4])  # model fp + profile fps
        store_key = store.make_key("transform", *map(str, key))
        payload = store.load("transform", store_key, inputs=inputs,
                             label=f"{self.name}->{self.platform.name}")
        if payload is not None:
            result = self._result_from_payload(payload, pim)
            if result is not None:
                return result
        result = self.transform(pim, profiles, profile)
        store.save("transform", store_key,
                   self._result_to_payload(result), inputs=inputs,
                   meta={"transformation": self.name,
                         "platform": self.platform.name,
                         "pim": pim.name},
                   label=f"{self.name}->{self.platform.name}")
        return result

    def _result_to_payload(self,
                           result: TransformationResult) -> Dict[str, Any]:
        return {
            "transform_version": 1,
            "psm_xmi": write_model(result.psm, result.psm_profiles),
            "applications": dict(result.applications),
            "trace": [[link.rule, link.source_id, link.target_id,
                       link.note] for link in result.trace],
        }

    def _result_from_payload(self, payload: Any, pim: Model
                             ) -> Optional[TransformationResult]:
        """Rebuild a result from a stored artifact; None when off-shape."""
        if not isinstance(payload, dict) \
                or payload.get("transform_version") != 1:
            return None
        try:
            document = read_model(payload["psm_xmi"])
            psm = document.model
            if psm is None:
                return None
            trace = [TraceLink(str(rule), str(source), str(target),
                               str(note))
                     for rule, source, target, note in payload["trace"]]
            applications = {str(name): int(count) for name, count
                            in payload["applications"].items()}
        except Exception:
            return None
        return TransformationResult(
            pim=pim, psm=psm, platform=self.platform, trace=trace,
            applications=applications,
            psm_profiles=tuple(document.profiles))

    def __repr__(self) -> str:
        return (f"<Transformation {self.name!r} -> {self.platform.name} "
                f"({len(self.rules)} rules)>")
