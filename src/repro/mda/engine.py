"""The PIM→PSM transformation engine.

``Transformation`` owns an ordered rule list and produces a
:class:`~repro.mda.rules.TransformationResult`:

1. the PIM (plus its profiles) is cloned through XMI — ids stable,
   structure complete;
2. rules run in priority order over the clone;
3. the result carries the full trace, per-rule application counts and a
   completeness measure (experiment D6 asserts completeness == 100%).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import TransformError
from ..metamodel.element import Element
from ..metamodel.model import Model
from ..profiles.core import Profile
from ..xmi.reader import read_model
from ..xmi.writer import write_model
from .platform import Platform
from .rules import (
    ModelRule,
    TraceLink,
    TransformationContext,
    TransformationResult,
    TransformationRule,
)


def clone_model(model: Model,
                profiles: Sequence[Profile] = ()) -> Model:
    """Deep-copy a model (with profile applications) via XMI round-trip."""
    document = read_model(write_model(model, profiles))
    if document.model is None:
        raise TransformError("clone round-trip lost the model root")
    return document.model


class Transformation:
    """An ordered, named PIM→PSM mapping."""

    def __init__(self, name: str, platform: Platform,
                 rules: Sequence[TransformationRule] = ()):
        self.name = name
        self.platform = platform
        self.rules: List[TransformationRule] = sorted(
            rules, key=lambda rule: rule.priority)

    def add_rule(self, rule: TransformationRule) -> "Transformation":
        """Insert a rule (kept sorted by priority; chainable)."""
        if any(existing.name == rule.name for existing in self.rules):
            raise TransformError(
                f"transformation {self.name!r} already has rule "
                f"{rule.name!r}")
        self.rules.append(rule)
        self.rules.sort(key=lambda entry: entry.priority)
        return self

    def transform(self, pim: Model,
                  profiles: Sequence[Profile] = (),
                  profile: Optional[Profile] = None
                  ) -> TransformationResult:
        """Run the mapping; the PIM is never mutated."""
        cloned_document = read_model(write_model(pim, profiles))
        psm = cloned_document.model
        if psm is None:
            raise TransformError("clone round-trip lost the model root")
        cloned_profiles = cloned_document.profiles
        active_profile = profile
        if active_profile is None and cloned_profiles:
            active_profile = cloned_profiles[0]

        context = TransformationContext(pim, psm, self.platform,
                                        active_profile)
        applications: Dict[str, int] = {}
        for rule in self.rules:
            touched = 0
            if isinstance(rule, ModelRule):
                rule.apply(psm, context)
                touched += 1
            else:
                # snapshot: rules may add elements while we iterate
                elements = [psm] + list(psm.all_owned())
                for element in elements:
                    if rule.applies_to(element):
                        rule.apply(element, context)
                        touched += 1
            if touched:
                applications[rule.name] = touched
            context.refresh_target_index()

        psm.name = f"{pim.name}_{self.platform.name}"
        return TransformationResult(
            pim=pim, psm=psm, platform=self.platform,
            trace=context.trace, applications=applications)

    def __repr__(self) -> str:
        return (f"<Transformation {self.name!r} -> {self.platform.name} "
                f"({len(self.rules)} rules)>")
