"""Built-in platform mappings: PIM → software PSM, PIM → hardware PSM.

These are the "platform-specific mappings" the paper's MDA section
describes, written against the rule framework:

**Software mapping** (:func:`software_transformation`): active classes
become tasks (``run()`` + mailbox), ports get message queues, signals
gain delivery metadata, and a runtime package (scheduler + queue class,
with executable ASL bodies) is synthesized.

**Hardware mapping** (:func:`hardware_transformation`): components
become clocked hardware modules (``clk``/``rst`` ports + SoC profile
stereotypes), integer attributes become memory-mapped registers with
allocated aligned addresses, hardware types are narrowed to the
profile's ``Word``, and a deployment model (die + bitstream artifacts)
is synthesized.  The PSM that comes out is exactly what
:mod:`repro.codegen` consumes.
"""

from __future__ import annotations

from typing import Optional

import repro.metamodel as mm
from ..metamodel.components import Component, Port, PortDirection
from ..metamodel.classifiers import Signal, UmlClass
from ..metamodel.element import Element
from ..profiles.core import has_stereotype, apply_stereotype
from .platform import HARDWARE_PLATFORM, SOFTWARE_PLATFORM
from .engine import Transformation
from .rules import ModelRule, TransformationContext, TransformationRule

TASK_RUN_BODY = """\
// synthesized task loop: drain the mailbox, dispatch each message
while (len(mailbox) > 0) {
    msg = pop(mailbox);
    handled = handled + 1;
}
return handled;
"""

SCHEDULER_BODY = """\
// fifo scheduling: run each ready task once per round
rounds = rounds + 1;
for task in ready {
    current = task;
}
return rounds;
"""


# ---------------------------------------------------------------------------
# software mapping rules
# ---------------------------------------------------------------------------

def _is_task_candidate(element: Element) -> bool:
    return isinstance(element, UmlClass) and element.is_active \
        and not isinstance(element, mm.Node)


def _active_class_to_task(element: Element,
                          context: TransformationContext) -> None:
    assert isinstance(element, UmlClass)
    if element.find_member("mailbox") is None:
        mailbox = element.add_attribute("mailbox", None)
        context.record("active-class-to-task", context.source_of(element),
                       mailbox, "task mailbox")
    if element.find_member("handled") is None:
        handled = element.add_attribute("handled", mm.INTEGER, default=0)
        context.record("active-class-to-task", context.source_of(element),
                       handled, "dispatch counter")
    if element.find_operation("run") is None:
        run = element.add_operation("run", mm.INTEGER)
        run.set_body(TASK_RUN_BODY)
        context.record("active-class-to-task", context.source_of(element),
                       run, "task entry point")


def _port_to_queue(element: Element,
                   context: TransformationContext) -> None:
    assert isinstance(element, Port)
    owner = element.owner
    if not isinstance(owner, UmlClass):
        return
    queue_name = f"{element.name}_queue"
    if owner.find_member(queue_name) is not None:
        return
    depth = context.platform.property("queue_depth", 16)
    queue = owner.add_attribute(queue_name, None)
    queue.add_comment(f"message queue for port {element.name!r}, "
                      f"depth {depth}")
    context.record("port-to-queue", context.source_of(element), queue,
                   f"depth={depth}")


def _signal_to_message(element: Element,
                       context: TransformationContext) -> None:
    assert isinstance(element, Signal)
    if element.find_member("priority") is None:
        priority = element.add_attribute("priority", mm.INTEGER, default=0)
        context.record("signal-to-message", context.source_of(element),
                       priority, "delivery priority")


def _synthesize_runtime(model: mm.Model,
                        context: TransformationContext) -> None:
    if model.find_member("runtime") is not None:
        return
    runtime = model.create_package("runtime")
    context.record("synthesize-runtime", None, runtime)

    queue_class = runtime.add(mm.UmlClass("MessageQueue"))
    queue_class.add_attribute("items", None)
    push = queue_class.add_operation("push")
    push.add_parameter("message", None)
    push.set_body("append(items, message);")
    pop_op = queue_class.add_operation("pop")
    pop_op.set_body("return pop(items);")
    context.record("synthesize-runtime", None, queue_class)

    scheduler = runtime.add(mm.UmlClass("Scheduler", is_active=True))
    scheduler.add_attribute("ready", None)
    scheduler.add_attribute("rounds", mm.INTEGER, default=0)
    schedule = scheduler.add_operation("schedule", mm.INTEGER)
    schedule.set_body(SCHEDULER_BODY)
    context.record("synthesize-runtime", None, scheduler,
                   context.platform.property("scheduler_policy", "fifo"))


def software_transformation() -> Transformation:
    """The built-in PIM → software-runtime PSM mapping."""
    transformation = Transformation("pim-to-sw", SOFTWARE_PLATFORM)
    transformation.add_rule(TransformationRule(
        "active-class-to-task", _is_task_candidate, _active_class_to_task,
        priority=10,
        description="active classes become schedulable tasks"))
    transformation.add_rule(TransformationRule(
        "port-to-queue", lambda e: isinstance(e, Port), _port_to_queue,
        priority=20, description="ports become message queues"))
    transformation.add_rule(TransformationRule(
        "signal-to-message", lambda e: isinstance(e, Signal),
        _signal_to_message, priority=30,
        description="signals become runtime messages"))
    transformation.add_rule(ModelRule(
        "synthesize-runtime", _synthesize_runtime, priority=90,
        description="synthesize scheduler and queue classes"))
    return transformation


# ---------------------------------------------------------------------------
# hardware mapping rules
# ---------------------------------------------------------------------------

def _is_hw_candidate(element: Element) -> bool:
    return isinstance(element, Component)


def _component_to_hw_module(element: Element,
                            context: TransformationContext) -> None:
    assert isinstance(element, Component)
    profile = context.profile
    clock_name = context.platform.property("clock_name", "clk")
    reset_name = context.platform.property("reset_name", "rst_n")
    if element.find_member(clock_name) is None:
        clock_port = element.add_port(clock_name,
                                      direction=PortDirection.IN)
        if profile is not None:
            apply_stereotype(
                clock_port, profile.stereotype("ClockInput"),
                frequency_mhz=context.platform.property("frequency_mhz"))
        context.record("component-to-hw-module",
                       context.source_of(element), clock_port,
                       "clock input")
    if element.find_member(reset_name) is None:
        reset_port = element.add_port(reset_name,
                                      direction=PortDirection.IN)
        if profile is not None:
            apply_stereotype(reset_port, profile.stereotype("ResetInput"))
        context.record("component-to-hw-module",
                       context.source_of(element), reset_port,
                       "reset input")
    if profile is not None and not has_stereotype(element, "HwModule"):
        apply_stereotype(element, profile.stereotype("HwModule"))
        context.record("component-to-hw-module",
                       context.source_of(element), element,
                       "stereotyped <<HwModule>>")


def _attributes_to_registers(element: Element,
                             context: TransformationContext) -> None:
    assert isinstance(element, Component)
    profile = context.profile
    if profile is None:
        return
    width = context.platform.property("register_width", 32)
    stride = width // 8
    offset = 0
    for attribute in element.attributes:
        if isinstance(attribute, Port):
            continue
        if has_stereotype(attribute, "Register"):
            offset += stride
            continue
        if attribute.type is not mm.INTEGER and \
                (attribute.type is None
                 or attribute.type.name != "Integer"):
            continue
        reset_value = attribute.default_value \
            if isinstance(attribute.default_value, int) else 0
        apply_stereotype(attribute, profile.stereotype("Register"),
                         address=offset, width=width,
                         reset_value=reset_value)
        context.record("attributes-to-registers",
                       context.source_of(attribute), attribute,
                       f"address={offset:#x}")
        offset += stride


def _allocate_base_addresses(model: mm.Model,
                             context: TransformationContext) -> None:
    base = context.platform.property("base_address", 0x4000_0000)
    stride = context.platform.property("address_stride", 0x1000)
    for index, component in enumerate(
            sorted(model.elements_of_type(Component),
                   key=lambda c: c.qualified_name)):
        address = base + index * stride
        comment = component.add_comment(f"base_address={address:#010x}")
        context.record("allocate-base-addresses",
                       context.source_of(component), comment,
                       f"{address:#010x}")


def _synthesize_deployment(model: mm.Model,
                           context: TransformationContext) -> None:
    if model.find_member("deployment") is not None:
        return
    deployment = model.create_package("deployment")
    context.record("synthesize-deployment", None, deployment)
    die = deployment.add(mm.Device("die0"))
    context.record("synthesize-deployment", None, die)
    for component in sorted(model.elements_of_type(Component),
                            key=lambda c: c.qualified_name):
        artifact = deployment.add(
            mm.Artifact(f"{component.name}_bit",
                        file_name=f"{component.name.lower()}.bit"))
        artifact.manifest(component)
        die.deploy(artifact)
        context.record("synthesize-deployment",
                       context.source_of(component), artifact,
                       "bitstream artifact")


def _map_types_to_hw(element: Element,
                     context: TransformationContext) -> None:
    assert isinstance(element, mm.Property)
    profile = context.profile
    if profile is None or isinstance(element, Port):
        return
    if element.type is not None and element.type.name == "Integer":
        word = profile.find_member("Word", mm.PrimitiveType)
        if word is not None:
            element.type = word
            context.record("map-types-to-hw", context.source_of(element),
                           element, "Integer -> Word")


def hardware_transformation() -> Transformation:
    """The built-in PIM → synchronous-RTL PSM mapping."""
    transformation = Transformation("pim-to-hw", HARDWARE_PLATFORM)
    transformation.add_rule(TransformationRule(
        "component-to-hw-module", _is_hw_candidate,
        _component_to_hw_module, priority=10,
        description="components become clocked hardware modules"))
    transformation.add_rule(TransformationRule(
        "attributes-to-registers", _is_hw_candidate,
        _attributes_to_registers, priority=20,
        description="integer attributes become memory-mapped registers"))
    transformation.add_rule(TransformationRule(
        "map-types-to-hw", lambda e: isinstance(e, mm.Property),
        _map_types_to_hw, priority=30,
        description="narrow platform-independent types to hardware types"))
    transformation.add_rule(ModelRule(
        "allocate-base-addresses", _allocate_base_addresses, priority=80,
        description="allocate module base addresses"))
    transformation.add_rule(ModelRule(
        "synthesize-deployment", _synthesize_deployment, priority=90,
        description="synthesize die/bitstream deployment model"))
    return transformation
