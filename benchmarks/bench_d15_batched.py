"""D15 — batched execution: SoA runtime + campaign vectorization (PR 6).

Claim (Section 4): executable UML SoC models earn their keep when the
same IP block is instantiated many times and swept over many seeds —
exactly the shapes a batched runtime can exploit.

Measured, on the D8 cosimulation workload replicated N-wide (N
identical traffic generators talking to N identical memories, two
batch groups sharing two compiled dispatch tables):

* **throughput** — kernel events/second, compiled engine (one
  ``CompiledRuntime`` per part) vs batched engine (one
  :class:`~repro.statemachines.soa.SoaLanes` per population, fused
  same-timestamp delivery sweeps), ``bus=False`` throughput mode;
* **lockstep** — the batched trace stream is byte-identical to the
  compiled one (the speedup is free of observable divergence);
* **campaign** — 32-seed fault sweep wall clock: serial fork-free
  baseline vs ``run_campaign(vectorize=True)`` (all seeds interleaved
  over one parsed/compiled model) vs a fork pool — and the vectorized
  rows are byte-identical to the serial ones.

Shape: batched does not regress events/s (``>= TOLERANCE ×``
compiled — the per-event win is bounded because guard/effect closures
dominate the run-to-completion step and execute identically in both
engines, so on a noisy runner the margin can sit inside timing
jitter); fused dispatch coalesces many messages per sweep; vectorize
beats the fork pool wall-clock on short per-seed runs while the
merged reports stay byte-identical.  The headline batching win is the
campaign-level one.
"""

import json
import time

import repro.metamodel as mm
from repro.engine import TraceBus, TraceRecorder
from repro.faults import CampaignSpec, run_campaign
from repro.hw import make_memory, make_traffic_generator
from repro.perf import PERF
from repro.simulation import SystemSimulation

SIM_TIME = 300.0
LOCKSTEP_TIME = 80.0
BATCH_WIDTHS = (8, 16)
SEEDS = tuple(range(32))
CAMPAIGN_TIME = 40.0
CAMPAIGN_WORKERS = 4


def replicated_top(pairs=8):
    """The D8 producer/memory pair replicated ``pairs`` times, sharing
    two Components — two batchable populations of width ``pairs``."""
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    top = mm.Component("Soc")
    for index in range(pairs):
        cpu_part = top.add_part(f"cpu{index}", cpu)
        ram_part = top.add_part(f"ram{index}", ram)
        top.connect(cpu.port("bus"), ram.port("bus"),
                    cpu_part, ram_part, check=False)
    return top


def campaign_top():
    """Builder entry point for the campaign specs (importable path)."""
    return replicated_top(8)


def campaign_spec(tmp_dir, **kwargs):
    from repro.faults import FaultCampaign, FaultSpec

    campaign = FaultCampaign(
        [FaultSpec("drop", signal="ReadResp", probability=0.25),
         FaultSpec("delay", signal="WriteAck", delay=3.0, jitter=2.0,
                   probability=0.3)],
        name="d15", seed=0)
    path = f"{tmp_dir}/d15_campaign.json"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(campaign.to_json())
    options = dict(seeds=SEEDS, builder="bench_d15_batched:campaign_top",
                   campaign=path, until=CAMPAIGN_TIME, name="d15")
    options.update(kwargs)
    return CampaignSpec(**options)


REPEATS = 3
#: Throughput gate: batched must not regress below this fraction of
#: compiled events/s.  The deterministic claims (kernel-event parity,
#: lockstep byte-identity, campaign byte-identity) stay exact; wall
#: clock on a shared runner does not.
TOLERANCE = 0.85


def throughput(engine, pairs):
    """Best-of-``REPEATS`` untraced runs (standard noise control);
    returns (events/s, kernel events, stats)."""
    best = None
    for _ in range(REPEATS):
        simulation = SystemSimulation(replicated_top(pairs), quantum=1.0,
                                      engine=engine, bus=False)
        start = time.perf_counter()
        simulation.run(until=SIM_TIME)
        elapsed = time.perf_counter() - start
        events = simulation.simulator.events_processed
        stats = simulation.stats()
        simulation.close()
        if best is None or elapsed < best[0]:
            best = (elapsed, events, stats)
    elapsed, events, stats = best
    return round(events / elapsed), events, stats


def throughput_rows():
    rows = []
    for pairs in BATCH_WIDTHS:
        compiled_eps, compiled_events, _ = throughput("compiled", pairs)
        PERF.reset()
        batched_eps, batched_events, stats = throughput("batched", pairs)
        fused = PERF.counter("batch.fused_dispatches")
        per_dispatch = PERF.snapshot()["observations"].get(
            "batch.events_per_dispatch", {})
        rows.append({
            "level": f"throughput width={pairs}",
            "batched_parts": stats["batched_parts"],
            "compiled_events_per_s": compiled_eps,
            "batched_events_per_s": batched_eps,
            "speedup": round(batched_eps / compiled_eps, 3),
            "kernel_events_equal": compiled_events == batched_events,
            "fused_dispatches": int(fused),
            "messages_per_dispatch": round(
                per_dispatch.get("total", 0)
                / max(per_dispatch.get("count", 1), 1), 1),
        })
    return rows


def lockstep_row():
    """Byte-identity of the traced streams (the speedup is free)."""
    streams = {}
    for engine in ("compiled", "batched"):
        bus = TraceBus()
        recorder = TraceRecorder(bus)
        with SystemSimulation(replicated_top(BATCH_WIDTHS[0]),
                              engine=engine, bus=bus) as simulation:
            simulation.run(until=LOCKSTEP_TIME)
        streams[engine] = recorder.to_jsonl()
    return {
        "level": "lockstep (traced, width=8)",
        "trace_events": streams["compiled"].count("\n") + 1,
        "byte_identical": streams["compiled"] == streams["batched"],
    }


def campaign_rows():
    import tempfile

    from repro.faults.runner import _MODEL_CACHE, _processes_usable

    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-d15-") as scratch:
        def sweep(label, spec, **kwargs):
            _MODEL_CACHE.clear()  # every mode pays its own model build
            start = time.perf_counter()
            result = run_campaign(spec, **kwargs)
            return label, time.perf_counter() - start, result

        _label, serial_wall, serial = sweep(
            "serial", campaign_spec(scratch, compiled=True))
        _label, vector_wall, vectorized = sweep(
            "vectorized", campaign_spec(scratch, compiled=True),
            vectorize=True)
        rows.append({
            "level": f"campaign {len(SEEDS)} seeds: vectorize",
            "serial_wall_s": round(serial_wall, 3),
            "vectorized_wall_s": round(vector_wall, 3),
            "speedup_vs_serial": round(serial_wall / vector_wall, 2),
            "byte_identical_rows": serial.to_json() == vectorized.to_json(),
        })
        _label, batched_wall, batched = sweep(
            "vectorized+batched",
            campaign_spec(scratch, engine="batched"), vectorize=True)
        rows.append({
            "level": f"campaign {len(SEEDS)} seeds: vectorize + batched",
            "wall_s": round(batched_wall, 3),
            "speedup_vs_serial": round(serial_wall / batched_wall, 2),
            "byte_identical_rows": serial.to_json() == batched.to_json(),
        })
        if _processes_usable():
            _label, pool_wall, pool = sweep(
                "fork-pool", campaign_spec(scratch, compiled=True),
                workers=CAMPAIGN_WORKERS)
            rows.append({
                "level": f"campaign {len(SEEDS)} seeds: fork pool "
                         f"({CAMPAIGN_WORKERS} workers)",
                "pool_wall_s": round(pool_wall, 3),
                "vectorized_wall_s": round(vector_wall, 3),
                "vectorize_speedup_vs_pool": round(
                    pool_wall / vector_wall, 2),
                "byte_identical_rows": serial.to_json() == pool.to_json(),
            })
    return rows


def table():
    """Rows: throughput per width, lockstep identity, campaign sweeps."""
    rows = throughput_rows()
    rows.append(lockstep_row())
    rows.extend(campaign_rows())
    return rows


class TestShape:
    def test_batched_does_not_regress(self):
        rows = [row for row in throughput_rows()
                if row["level"].startswith("throughput")]
        for row in rows:
            assert row["batched_events_per_s"] \
                >= TOLERANCE * row["compiled_events_per_s"]
            assert row["kernel_events_equal"]
            assert row["fused_dispatches"] > 0

    def test_lockstep_holds(self):
        assert lockstep_row()["byte_identical"]

    def test_vectorized_campaign_is_byte_identical(self):
        rows = {row["level"]: row for row in campaign_rows()}
        for row in rows.values():
            assert row["byte_identical_rows"]


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv:
        SIM_TIME = 60.0
        LOCKSTEP_TIME = 40.0
        BATCH_WIDTHS = (8,)
        SEEDS = tuple(range(6))
        CAMPAIGN_TIME = 20.0
    rows = table()
    for row in rows:
        print(row)
    if "--json" in sys.argv:
        index = sys.argv.index("--json")
        path = sys.argv[index + 1]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"experiment": "d15", "rows": rows}, handle,
                      indent=2, default=str)
        print(f"JSON report written to {path}")
    throughput_ok = all(
        row["batched_events_per_s"]
        >= TOLERANCE * row["compiled_events_per_s"]
        and row["kernel_events_equal"]
        and row["fused_dispatches"] > 0
        for row in rows if row["level"].startswith("throughput"))
    lockstep_ok = all(row["byte_identical"] for row in rows
                      if row["level"].startswith("lockstep"))
    campaign_ok = all(row["byte_identical_rows"] for row in rows
                      if row["level"].startswith("campaign"))
    if not (throughput_ok and lockstep_ok and campaign_ok):
        raise SystemExit(
            f"D15 gate failed: throughput_ok={throughput_ok} "
            f"lockstep_ok={lockstep_ok} campaign_ok={campaign_ok}")
    print("D15 gate OK: batched within tolerance of compiled, "
          "lockstep + campaign byte-identity hold")
