"""D6 — MDA PIM->PSM transformation is automatic and scales (Section 3).

Claim: the PIM "is to be more or less automatically transformed to a
Platform Specific Model ... using a platform-specific mapping".

Measured: full software and hardware transformations over PIMs of
10..200 components; rule applications per second and trace completeness
(must be 100% — full automation, no manual gap).  Shape: near-linear
scaling in model size.

Also measured: the memoized path (``transform_cached``) — a second
transform of an unchanged PIM is served from the content-addressed
cache (model fingerprint + generation counter), so design iterations
that only re-run downstream steps pay nothing for the mapping.
"""

import time

import pytest

from repro.mda import (
    TransformCache,
    hardware_transformation,
    software_transformation,
)

from workloads import synthetic_soc_pim

SIZES = (10, 25, 50, 100)


def measure_point(components: int, which: str):
    pim, profile = synthetic_soc_pim(components)
    transformation = (hardware_transformation() if which == "hw"
                      else software_transformation())
    start = time.perf_counter()
    result = transformation.transform(pim, profiles=[profile])
    elapsed = time.perf_counter() - start
    return {
        "mapping": which,
        "components": components,
        "pim_elements": pim.element_count(),
        "psm_elements": result.psm.element_count(),
        "rules_applied": result.rules_applied,
        "transform_ms": round(1e3 * elapsed, 1),
        "rules_per_s": round(result.rules_applied / elapsed),
        "completeness": result.completeness(),
    }


def measure_cached(components: int, which: str = "hw"):
    """Cold vs. warm transform through the memoizing path."""
    pim, profile = synthetic_soc_pim(components)
    transformation = (hardware_transformation() if which == "hw"
                      else software_transformation())
    cache = TransformCache()
    start = time.perf_counter()
    cold_result = transformation.transform_cached(pim, [profile],
                                                  cache=cache)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    warm_result = transformation.transform_cached(pim, [profile],
                                                  cache=cache)
    warm = time.perf_counter() - start
    return {
        "mapping": which,
        "components": components,
        "cold_ms": round(1e3 * cold, 2),
        "warm_ms": round(1e3 * warm, 4),
        "speedup": round(cold / warm, 1),
        "hits": cache.hits,
        "misses": cache.misses,
        "shared_result": warm_result is cold_result,
    }


def table():
    """Rows: both mappings across the size sweep."""
    rows = []
    for which in ("sw", "hw"):
        for components in SIZES:
            rows.append(measure_point(components, which))
    for components in (10, 50):
        rows.append(measure_cached(components))
    return rows


class TestShape:
    @pytest.mark.parametrize("which", ("sw", "hw"))
    def test_completeness_is_total(self, which):
        row = measure_point(20, which)
        assert row["completeness"] == 1.0

    def test_psm_strictly_larger_than_pim(self):
        row = measure_point(20, "hw")
        assert row["psm_elements"] > row["pim_elements"]

    def test_cached_retransform_much_faster(self):
        """Acceptance floor is 20x; the warm path is a dict lookup."""
        row = measure_cached(25)
        assert row["shared_result"]
        assert row["hits"] == 1 and row["misses"] == 1
        assert row["speedup"] >= 20

    def test_near_linear_scaling(self):
        small = measure_point(10, "hw")
        large = measure_point(80, "hw")
        size_ratio = large["pim_elements"] / small["pim_elements"]
        time_ratio = large["transform_ms"] / max(small["transform_ms"],
                                                 1e-6)
        # allow quadratic-ish slack but reject explosions
        assert time_ratio < size_ratio ** 2 * 3


def test_benchmark_hw_transform(benchmark):
    pim, profile = synthetic_soc_pim(25)
    transformation = hardware_transformation()
    benchmark(lambda: transformation.transform(pim, profiles=[profile]))


def test_benchmark_sw_transform(benchmark):
    pim, profile = synthetic_soc_pim(25)
    transformation = software_transformation()
    benchmark(lambda: transformation.transform(pim, profiles=[profile]))


if __name__ == "__main__":
    for row in table():
        print(row)
