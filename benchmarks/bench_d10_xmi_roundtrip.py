"""D10 — XMI interchange: fidelity and cost (Section 2 / OMG context).

Claim (implicit in the paper's OMG framing): models are exchanged
between tools via XMI, so interchange must be lossless and affordable.

Measured: write+read round-trips over structural models of 100..10k
elements; fidelity (element ids, per-metaclass counts) must be 100%,
throughput reported in elements/s and MB/s.  Shape: near-linear cost.
"""

import time

import pytest

from repro import xmi

from workloads import structural_model, synthetic_soc_pim

SIZES = (100, 500, 2_000, 10_000)


def measure_point(elements: int):
    model = structural_model(elements)
    start = time.perf_counter()
    text = xmi.write_model(model)
    write_time = time.perf_counter() - start
    start = time.perf_counter()
    document = xmi.read_model(text)
    read_time = time.perf_counter() - start

    original_ids = {e.xmi_id for e in model.all_owned()}
    restored_ids = {e.xmi_id for e in document.model.all_owned()}
    fidelity = (document.model.summary() == model.summary()
                and original_ids == restored_ids)
    size_mb = len(text.encode()) / 1e6
    count = model.element_count()
    return {
        "elements": count,
        "bytes": len(text),
        "write_ms": round(1e3 * write_time, 1),
        "read_ms": round(1e3 * read_time, 1),
        "elements_per_s": round(count / (write_time + read_time)),
        "mb_per_s": round(size_mb / (write_time + read_time), 2),
        "fidelity": "100%" if fidelity else "BROKEN",
    }


def table():
    """Rows: the size sweep plus a behavioral-model round-trip row."""
    rows = [measure_point(size) for size in SIZES]
    pim, profile = synthetic_soc_pim(20)
    start = time.perf_counter()
    text = xmi.write_model(pim, profiles=[profile])
    document = xmi.read_model(text)
    elapsed = time.perf_counter() - start
    rows.append({
        "elements": pim.element_count(),
        "bytes": len(text),
        "note": "behavioral PIM incl. profile + applications",
        "round_trip_ms": round(1e3 * elapsed, 1),
        "fidelity": "100%" if document.model.summary() == pim.summary()
        else "BROKEN",
    })
    return rows


class TestShape:
    def test_fidelity_total_across_sizes(self):
        for size in (100, 1_000):
            assert measure_point(size)["fidelity"] == "100%"

    def test_near_linear_cost(self):
        small = measure_point(200)
        large = measure_point(4_000)
        size_ratio = large["elements"] / small["elements"]
        time_ratio = (large["write_ms"] + large["read_ms"]) / max(
            small["write_ms"] + small["read_ms"], 1e-6)
        assert time_ratio < size_ratio ** 2

    def test_behavioral_fidelity(self):
        pim, profile = synthetic_soc_pim(10)
        document = xmi.read_model(xmi.write_model(pim,
                                                  profiles=[profile]))
        assert document.model.summary() == pim.summary()


def test_benchmark_write(benchmark):
    model = structural_model(1_000)
    benchmark(lambda: xmi.write_model(model))


def test_benchmark_read(benchmark):
    model = structural_model(1_000)
    text = xmi.write_model(model)
    benchmark(lambda: xmi.read_model(text))


if __name__ == "__main__":
    for row in table():
        print(row)
