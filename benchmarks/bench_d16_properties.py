"""D16 — online property-checking overhead & campaign pass-rate curves
(PR 7).

Claim: evaluating temporal properties *online* — monitor automata
subscribed to the TraceBus, advancing on every delivered message — is
cheap enough to leave on for every verification run, and it upgrades
fault campaigns from "the system survived" to "the system stayed
*correct*": per-property pass rates across seeds as a function of fault
intensity.

Measured, per engine (interpreted and compiled):

* **bus off** / **default bus** — context rows (the cost of having a
  message stream at all is a PR 3 property, D12).
* **materialized** — a TraceBus with one no-op subscriber on
  ``message_delivered``.  This is the **baseline** for the acceptance
  criterion: the checker subscribes to exactly the message kinds its
  suite needs, so the cost of building and dispatching those events is
  the floor *any* message-level consumer pays.
* **checker** — the five-property reference suite attached via
  ``SystemSimulation(properties=...)``: response, precedence, absence,
  bounded liveness, and S4 interaction conformance, i.e. the
  *incremental* cost of the monitor automata beyond materialization.
* **checker x3** — the same suite replicated three times (15 monitors):
  how the per-event cost scales with suite size.

Methodology: trials are interleaved round-robin across modes (all modes
run once, then again, REPEATS times; best trial per mode), same as D13
— mode-blocked sampling reads scheduler hiccups as phantom overhead.

Acceptance (PR 7, measured on an idle machine and recorded in
BENCH_PR7.json): **the reference checker costs ~11% of materialized
throughput for the whole five-kind suite** — ~2% per property — on
the interpreted engine (the engine fault campaigns actually exercise).
The monitors are O(1) dict/list work per event — profiling shows the
residual cost is per-monitor dispatch, not the EventMatch compares —
so the cost scales with suite size (checker x3 ≈ 3x the increment),
which is the honest knob: check what you need, pay for what you check.
On the compiled engine the same absolute per-event cost is a larger
fraction because the floor itself is faster; campaigns run interpreted,
so the interpreted figure is the one the acceptance criterion tracks.

Also reported: the **pass-rate curve** — a five-seed fault campaign per
drop-probability step; per-property pass rates fall monotonically-ish
with intensity while the *survival* row (completed seeds) stays flat at
100%, which is exactly the gap between proving survival and proving
correctness that property checking closes.

The CI shape test only asserts a loose floor (the checker may not halve
throughput) because shared runners jitter far more than 10%.
"""

import time

from repro.engine import MESSAGE_DELIVERED, TraceBus
from repro.faults import CampaignSpec, FaultCampaign, FaultSpec, run_campaign
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.properties import (
    PropertySuite,
    absence,
    bounded_liveness,
    interaction_conformance,
    precedence,
    response,
)
from repro.simulation import SystemSimulation

SIM_TIME = 400.0
REPEATS = 3
SEEDS = (1, 2, 3, 4, 5)
#: Drop probabilities swept by the pass-rate curve.
INTENSITIES = (0.0, 0.05, 0.15, 0.3)

MODES = ("bus off", "default bus", "materialized", "checker",
         "checker x3")


def build_system():
    # fully address-mapped: a clean run has no Naks, so the absence
    # property is non-vacuously checkable
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x800)
    memory = make_memory("Ram", size_bytes=0x800)
    return make_soc("Bench", masters=[cpu],
                    slaves=[(memory, "bus", 0, 0x800)])


def reference_suite(copies=1):
    """The five-kind reference suite (optionally replicated)."""
    properties = []
    for index in range(copies):
        tag = "" if index == 0 else f"-{index}"
        properties.extend([
            response(f"read-answered{tag}",
                     trigger={"signal": "Read", "part": "s0_ram"},
                     reaction={"signal": "ReadResp", "part": "m0_cpu"},
                     within=4.0),
            precedence(f"resp-after-read{tag}",
                       first={"signal": "Read", "part": "s0_ram"},
                       then={"signal": "ReadResp", "part": "m0_cpu"}),
            absence(f"no-nak{tag}", never={"signal": "Nak"}),
            bounded_liveness(f"traffic-flows{tag}",
                             match={"signal": "Read", "part": "s0_ram"},
                             at_least=3, by=30.0),
            interaction_conformance(
                f"read-handshake{tag}",
                messages=[("bus", "s0_ram", "Read"),
                          ("bus", "m0_cpu", "ReadResp")],
                loop=(0, 256)),
        ])
    return PropertySuite(properties, name="d16")


def _run_once(mode, compiled=False):
    options = {}
    if mode == "bus off":
        bus = False
    elif mode == "default bus":
        bus = None
    elif mode == "materialized":
        bus = TraceBus()

        def swallow(event):
            pass

        bus.subscribe(swallow, kinds=(MESSAGE_DELIVERED,))
    else:
        bus = None
        options["properties"] = reference_suite(
            copies=3 if mode == "checker x3" else 1)
        options["on_violation"] = "record"
    simulation = SystemSimulation(build_system(), quantum=1.0,
                                  default_latency=1.0, bus=bus,
                                  compile=compiled, **options)
    start = time.perf_counter()
    simulation.run(until=SIM_TIME)
    elapsed = time.perf_counter() - start
    result = {
        "kernel_events": simulation.simulator.events_processed,
        "elapsed_s": elapsed,
    }
    if simulation.property_checker is not None:
        result["verdict"] = simulation.property_report().verdict
    simulation.close()
    return result


def measure(mode, compiled=False):
    """Best-of-N run of one mode (events/s is jitter-sensitive)."""
    best = min((_run_once(mode, compiled) for _ in range(REPEATS)),
               key=lambda run: run["elapsed_s"])
    return {
        "engine": "compiled" if compiled else "interpreted",
        "mode": mode,
        "kernel_events": best["kernel_events"],
        "events_per_s": round(best["kernel_events"] / best["elapsed_s"]),
    }


def measure_group(compiled):
    """All modes of one engine, trials interleaved round-robin."""
    best = {mode: None for mode in MODES}
    for _ in range(REPEATS):
        for mode in MODES:
            run = _run_once(mode, compiled)
            if best[mode] is None \
                    or run["elapsed_s"] < best[mode]["elapsed_s"]:
                best[mode] = run
    rows = []
    for mode in MODES:
        run = best[mode]
        rows.append({
            "engine": "compiled" if compiled else "interpreted",
            "mode": mode,
            "kernel_events": run["kernel_events"],
            "events_per_s": round(run["kernel_events"]
                                  / run["elapsed_s"]),
        })
    return rows


def pass_rate_curve(intensities=None, seeds=None):
    """Per-property pass rates across a seeded campaign, by intensity.

    Survival (completed seeds) stays flat while correctness falls —
    the D16 punchline."""
    import tempfile
    from pathlib import Path

    workdir = Path(tempfile.mkdtemp(prefix="d16-"))
    curve = []
    for probability in (INTENSITIES if intensities is None
                        else intensities):
        specs = [FaultSpec("delay", signal="WriteAck", delay=1.5,
                           probability=0.3)]
        if probability:
            specs.insert(0, FaultSpec("drop", signal="ReadResp",
                                      probability=probability))
        campaign_path = workdir / f"campaign-{probability}.json"
        campaign_path.write_text(
            FaultCampaign(specs, name="d16", seed=0).to_json())
        spec = CampaignSpec(
            seeds=list(SEEDS if seeds is None else seeds),
            builder="bench_d16_properties:build_system",
            campaign=str(campaign_path), until=SIM_TIME / 2,
            properties=reference_suite().to_dict(),
            on_violation="record", name="d16")
        result = run_campaign(spec)
        merged = result.properties()
        rates = {name: entry["pass_rate"]
                 for name, entry in merged["properties"].items()}
        curve.append({
            "engine": "campaign",
            "mode": f"drop p={probability}",
            "survival_pct": round(
                100.0 * len(result.completed_seeds) / len(spec.seeds), 1),
            "response_pass_pct": rates["read-answered"],
            "conformance_pass_pct": rates["read-handshake"],
            "absence_pass_pct": rates["no-nak"],
            "violations": merged["total_violations"],
        })
    return curve


def table():
    """Rows: observation mode vs throughput per engine (overhead vs the
    message-materialization floor), then the pass-rate curve."""
    rows = []
    for compiled in (False, True):
        group = measure_group(compiled)
        throughput = {row["mode"]: row["events_per_s"] for row in group}
        bus_off = throughput["bus off"]
        floor = throughput["materialized"]
        for row in group:
            row["overhead_vs_bus_off_pct"] = round(
                100.0 * (bus_off - row["events_per_s"]) / bus_off, 1)
            row["overhead_vs_materialized_pct"] = round(
                100.0 * (floor - row["events_per_s"]) / floor, 1)
        rows.extend(group)
    rows.extend(pass_rate_curve())
    return rows


class TestShape:
    def test_modes_agree_on_kernel_events(self):
        counts = {_run_once(mode)["kernel_events"] for mode in MODES}
        assert len(counts) == 1

    def test_clean_run_verdict_is_pass(self):
        assert _run_once("checker")["verdict"] == "pass"

    def test_checker_overhead_is_bounded(self):
        # the real acceptance numbers are measured off-CI and recorded
        # in BENCH_PR7.json; here only a loose floor so the guarantee
        # can't rot into "property checking halves throughput"
        materialized = measure("materialized")["events_per_s"]
        assert measure("checker")["events_per_s"] >= 0.5 * materialized

    def test_survival_is_blind_where_properties_are_not(self):
        curve = pass_rate_curve(intensities=(0.0, 0.3), seeds=(1, 2))
        assert all(row["survival_pct"] == 100.0 for row in curve)
        assert curve[0]["response_pass_pct"] == 100.0
        assert curve[-1]["response_pass_pct"] < 100.0
        assert curve[-1]["violations"] > 0


def test_benchmark_checked_run(benchmark):
    def run():
        simulation = SystemSimulation(build_system(), quantum=1.0,
                                      properties=reference_suite(),
                                      on_violation="record")
        simulation.run(until=100.0)
        simulation.close()
    benchmark(run)


if __name__ == "__main__":
    for row in table():
        print(row)
