"""D11 — fault injection & resilience (PR 2).

Claim under test: an executable-UML SoC model is only a credible early
verification vehicle if it can be exercised under *adversarial*
conditions — and that hardening must cost (almost) nothing when no
faults are armed.

Measured, on the D8 producer/bus/memory SoC:

* **baseline** — no injector attached (the D8 hot path);
* **fault-free hook** — an *empty* campaign attached, so every routed
  signal takes the interception path but no spec ever matches: the
  worst-case overhead of the hook itself;
* **faulted** — a mixed campaign (drop/duplicate/corrupt/delay/reorder)
  on both engines.

Reported: events/second per row, the fault-free hook overhead factor
(acceptance: ≥ 0.95x of baseline, i.e. ≤ 5% overhead), plus three
boolean invariants — compiled/interpreted lockstep under faults,
byte-identical reports across same-seed runs, and an exact
checkpoint → run → restore → replay round-trip.
"""

import time

from repro.faults import FaultCampaign, FaultSpec
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.simulation import SystemSimulation

SIM_TIME = 400.0

CAMPAIGN = FaultCampaign(
    [FaultSpec("drop", signal="ReadResp", probability=0.15),
     FaultSpec("duplicate", signal="Read", probability=0.1),
     FaultSpec("corrupt", signal="Write", field="addr", xor=0x4000,
               probability=0.1),
     FaultSpec("delay", signal="WriteAck", delay=2.0, jitter=1.0,
               probability=0.2),
     FaultSpec("reorder", signal="ReadResp", window=(50.0, 200.0))],
    name="d11-mixed", seed=2026)


def build_system():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    memory = make_memory("Ram", size_bytes=0x800)
    return make_soc("Bench", masters=[cpu],
                    slaves=[(memory, "bus", 0, 0x800)])


def _run(label, campaign=None, compiled=False):
    with SystemSimulation(build_system(), quantum=1.0,
                          default_latency=1.0, compile=compiled,
                          faults=campaign) as simulation:
        start = time.perf_counter()
        simulation.run(until=SIM_TIME)
        elapsed = time.perf_counter() - start
        events = simulation.simulator.events_processed
        return {
            "level": label,
            "kernel_events": events,
            "messages": simulation.messages_delivered,
            "events_per_s": round(events / elapsed),
            "faults_injected": simulation.resilience.total_injections,
        }, simulation.message_log, simulation.resilience.to_json()


def baseline():
    row, _log, _report = _run("baseline (no injector)")
    return row


def fault_free_hook():
    row, _log, _report = _run("fault-free hook (empty campaign)",
                              campaign=FaultCampaign(seed=0))
    return row


def _best(fn, repeats=3):
    """Best-of-N events/s — the overhead comparison is between two
    sub-100ms runs, so a single sample is noise-dominated."""
    rows = [fn() for _ in range(repeats)]
    return max(rows, key=lambda r: r["events_per_s"])


def faulted(compiled=False):
    label = ("faulted compiled cosimulation" if compiled
             else "faulted interpreted cosimulation")
    return _run(label, campaign=CAMPAIGN, compiled=compiled)


def checkpoint_round_trip():
    """checkpoint mid-campaign, continue, restore, replay: exact match.

    The replay reference is the same simulation's *first* continuation
    (run boundaries are semantically visible — held reorder partners
    flush when a run() call drains — so a segmented run is compared
    against itself, not against one uninterrupted run).
    """
    with SystemSimulation(build_system(), faults=CAMPAIGN) as simulation:
        simulation.run(until=SIM_TIME / 2)
        snap = simulation.checkpoint()
        mid_log = len(simulation.message_log)
        mid_report = simulation.resilience.to_json()
        simulation.run(until=SIM_TIME)
        first_log = list(simulation.message_log)
        first_report = simulation.resilience.to_json()
        simulation.restore(snap)
        exact = (len(simulation.message_log) == mid_log
                 and simulation.resilience.to_json() == mid_report
                 and simulation.simulator.now == SIM_TIME / 2)
        simulation.run(until=SIM_TIME)
        replay_log = list(simulation.message_log)
        replay_report = simulation.resilience.to_json()
    return {
        "level": "checkpoint/restore round trip",
        "restore_exact": exact,
        "replay_matches_first_continuation": (replay_log == first_log
                                              and replay_report
                                              == first_report),
    }


def table():
    """Rows: resilience modes vs. throughput + the PR-2 invariants."""
    base = _best(baseline)
    hooked = _best(fault_free_hook)
    interpreted, interp_log, interp_report = faulted(compiled=False)
    compiled, comp_log, comp_report = faulted(compiled=True)
    _again, again_log, again_report = faulted(compiled=False)
    rows = [base, hooked, interpreted, compiled]
    rows.append({
        "level": "fault-free hook overhead",
        "factor": round(hooked["events_per_s"] / base["events_per_s"], 3),
        "acceptance": "≥ 0.95 (≤ 5% overhead)",
    })
    rows.append({
        "level": "lockstep compiled == interpreted under faults",
        "holds": (interp_log == comp_log
                  and interp_report == comp_report),
    })
    rows.append({
        "level": "same seed ⇒ byte-identical report + log",
        "holds": (again_log == interp_log
                  and again_report == interp_report),
    })
    rows.append(checkpoint_round_trip())
    return rows


class TestShape:
    def test_faults_are_injected(self):
        row, _log, report = faulted()
        assert row["faults_injected"] > 20
        assert '"drop"' in report

    def test_lockstep_under_faults(self):
        _row, interp_log, interp_report = faulted(compiled=False)
        _row, comp_log, comp_report = faulted(compiled=True)
        assert interp_log == comp_log
        assert interp_report == comp_report

    def test_seeded_determinism(self):
        runs = [faulted() for _ in range(2)]
        assert runs[0][1] == runs[1][1]
        assert runs[0][2] == runs[1][2]

    def test_checkpoint_round_trip_exact(self):
        row = checkpoint_round_trip()
        assert row["restore_exact"]
        assert row["replay_matches_first_continuation"]

    def test_hook_overhead_within_budget(self):
        """Acceptance is 5%; assert 15% to keep CI slack on noisy
        shared runners (the table records the true factor)."""
        base = _best(baseline)
        hooked = _best(fault_free_hook)
        assert hooked["events_per_s"] >= 0.85 * base["events_per_s"]


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv:
        SIM_TIME = 60.0
    for row in table():
        print(row)
