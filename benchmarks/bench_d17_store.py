"""D17 — artifact-store warm starts & incremental recompilation (PR 8).

Claim: a disk-backed, content-addressed artifact store turns the
per-process cold costs of the pipeline — ASL transpilation + dispatch
-table compilation per machine, PIM→PSM rule sweeps, per-unit codegen —
into one-time costs.  A "worker" (simulated here by reparsing the model
from XMI, so every Python object is fresh, exactly as in a forked or
respawned process) that opens a warm store replays stored outcomes
instead of rebuilding, and after an edit rebuilds *only the dependents
of the edited elements*, counted exactly by the store's build graph.

Three tables:

* **worker start** — wall time to compile every machine of an
  ``n``-machine model: ``no store`` (the in-memory-only baseline),
  ``cold store`` (build + persist), ``warm store`` (a fresh "worker"
  serving every compile from disk).  ``built``/``reused`` come from
  ``store.graph`` and prove what actually happened.
* **edit size** — re-compile cost after editing ``k`` of ``n``
  machines: the build graph must show exactly ``k`` rebuilds, and wall
  time should scale with ``k``, not ``n``.
* **stages** — cold vs warm for the other store-backed stages over a
  fixed workload: the PIM→PSM transform artifact (whole-model keyed —
  see docs/STORE.md for why) and per-unit codegen artifacts.

Timing uses best-of-``REPEATS`` per mode with the store directory
recreated per cold trial; stores live under a temp directory that is
removed afterwards.
"""

import shutil
import tempfile
import time
from pathlib import Path

import repro
import repro.metamodel as mm
from repro.codegen import generate_units
from repro.hw import make_memory, make_traffic_generator
from repro.mda import TransformCache, hardware_transformation
from repro.metamodel import Model
from repro.profiles import create_soc_profile
from repro.profiles.core import apply_stereotype
from repro.statemachines import StateMachine, compile_machine_cached
from repro.store import ArtifactStore, using_store
from repro.xmi import read_model, write_model

#: Machine counts for the worker-start sweep (QUICK overrides via SIZES).
SIZES = (4, 16)
#: States per generated machine (transpile work per compile).
STATES = 6
REPEATS = 3
#: Fractions of the model edited in the edit-size sweep.
EDIT_FRACTIONS = (0.0, 0.25, 1.0)


def _machine(name, states=STATES):
    machine = StateMachine(name)
    region = machine.region
    previous = region.add_state(f"{name}_S0")
    region.add_transition(region.add_initial(), previous)
    for index in range(1, states):
        nxt = region.add_state(f"{name}_S{index}")
        region.add_transition(previous, nxt, trigger="step",
                              guard=f"count < {index * 10}",
                              effect="count = count + 1;")
        previous = nxt
    return machine


def build_model(machines):
    repro.reset_ids()
    model = Model("design")
    for index in range(machines):
        component = model.add(mm.Component(f"Ip{index}"))
        component.add_behavior(_machine(f"fsm{index}"),
                               as_classifier_behavior=True)
    return model


def _machines_of(root):
    return sorted(root.descendants_of_type(StateMachine),
                  key=lambda machine: machine.name)


def _fresh_worker(model):
    """Fresh Python objects for the same content — a reparsed model."""
    return read_model(write_model(model)).model


def _compile_all(root, store):
    start = time.perf_counter()
    with using_store(store):
        for machine in _machines_of(root):
            compile_machine_cached(machine)
    return (time.perf_counter() - start) * 1e3


def worker_start_rows():
    rows = []
    scratch = Path(tempfile.mkdtemp(prefix="d17-start-"))
    try:
        for size in SIZES:
            model = build_model(size)
            xmi_text = write_model(model)
            best = {}
            counts = {}
            for trial in range(REPEATS):
                for mode in ("no store", "cold store", "warm store"):
                    root = read_model(xmi_text).model
                    if mode == "no store":
                        store = None
                    else:
                        directory = scratch / f"{size}-{trial}"
                        if mode == "cold store" and directory.exists():
                            shutil.rmtree(directory)
                        store = ArtifactStore(directory)
                    wall = _compile_all(root, store)
                    best[mode] = min(best.get(mode, wall), wall)
                    if store is not None:
                        counts[mode] = (store.graph.built("compile"),
                                        store.graph.reused("compile"))
            for mode in ("no store", "cold store", "warm store"):
                built, reused = counts.get(mode, (size, 0)) \
                    if mode != "no store" else ("-", "-")
                rows.append({
                    "experiment": "worker start",
                    "machines": size,
                    "mode": mode,
                    "wall_ms": round(best[mode], 2),
                    "built": built,
                    "reused": reused,
                })
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return rows


def edit_size_rows():
    rows = []
    size = max(SIZES)
    scratch = Path(tempfile.mkdtemp(prefix="d17-edit-"))
    try:
        model = build_model(size)
        with using_store(ArtifactStore(scratch / "store")):
            for machine in _machines_of(model):
                compile_machine_cached(machine)
        for fraction in EDIT_FRACTIONS:
            edited = int(round(size * fraction))
            worker = _fresh_worker(model)
            for machine in _machines_of(worker)[:edited]:
                # content-unique per fraction so one sweep's rebuilt
                # artifacts can never serve the next sweep's edits
                machine.region.add_state(f"Edited_{fraction}")
            store = ArtifactStore(scratch / "store")
            wall = _compile_all(worker, store)
            rows.append({
                "experiment": "edit size",
                "machines": size,
                "edited": edited,
                "wall_ms": round(wall, 2),
                "rebuilt": store.graph.built("compile"),
                "reused": store.graph.reused("compile"),
            })
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return rows


def _stage_model(classes=6):
    repro.reset_ids()
    profile = create_soc_profile()
    model = Model("pim")
    for index in range(classes):
        cls = model.add(mm.UmlClass(f"Ip{index}"))
        cls.add_attribute("reg", default=index)
        apply_stereotype(cls, profile.stereotype("IpCore"), vendor="d17")
    return model, profile


def _codegen_model(components=4):
    repro.reset_ids()
    model = Model("design")
    package = model.create_package("design")
    for index in range(components):
        package.add(make_traffic_generator(f"Cpu{index}", period=2.0,
                                           address_range=0x1000))
    package.add(make_memory("Ram", size_bytes=0x800))
    return model


def stage_rows():
    rows = []
    scratch = Path(tempfile.mkdtemp(prefix="d17-stages-"))
    try:
        pim, profile = _stage_model()
        transformation = hardware_transformation()
        for mode in ("cold", "warm"):
            store = ArtifactStore(scratch / "transform")
            start = time.perf_counter()
            with using_store(store):
                transformation.transform_cached(pim, [profile],
                                                cache=TransformCache())
            rows.append({
                "experiment": "stages",
                "stage": "transform",
                "mode": mode,
                "wall_ms": round((time.perf_counter() - start) * 1e3, 2),
                "built": store.graph.built("transform"),
                "reused": store.graph.reused("transform"),
            })
        design = _codegen_model()
        xmi_text = write_model(design)
        for mode in ("cold", "warm"):
            store = ArtifactStore(scratch / "codegen")
            root = read_model(xmi_text).model
            start = time.perf_counter()
            with using_store(store):
                generate_units(root)
            rows.append({
                "experiment": "stages",
                "stage": "codegen units",
                "mode": mode,
                "wall_ms": round((time.perf_counter() - start) * 1e3, 2),
                "built": store.graph.built("codegen"),
                "reused": store.graph.reused("codegen"),
            })
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return rows


def table():
    return worker_start_rows() + edit_size_rows() + stage_rows()


if __name__ == "__main__":
    for row in table():
        print(row)
