"""D7 — code generation for hardware descriptions works (Section 3).

The paper's open question: "the application of such code generation for
hardware descriptions still needs to be demonstrated."

Measured: generation throughput (LoC/s) per backend over PSMs with a
growing number of state machines, and the structural validity rate of
everything generated (must be 100%).
"""

import time

import pytest

from repro.codegen import VALIDATORS, generate_all
from repro.mda import hardware_transformation

from workloads import synthetic_soc_pim

SIZES = (5, 15, 40)


def measure_point(components: int):
    pim, profile = synthetic_soc_pim(components)
    psm = hardware_transformation().transform(pim,
                                              profiles=[profile]).psm
    rows = []
    for backend in ("vhdl", "verilog", "systemc", "python"):
        start = time.perf_counter()
        files = generate_all(psm)[backend]
        elapsed = time.perf_counter() - start
        lines = sum(len(text.splitlines()) for text in files.values())
        valid = sum(1 for text in files.values()
                    if not VALIDATORS[backend](text))
        rows.append({
            "components": components,
            "backend": backend,
            "files": len(files),
            "lines": lines,
            "loc_per_s": round(lines / elapsed),
            "valid": f"{valid}/{len(files)}",
        })
    return rows


def table():
    """Rows: per backend per size: files, lines, LoC/s, validity."""
    rows = []
    for components in SIZES:
        rows.extend(measure_point(components))
    return rows


class TestShape:
    def test_validity_rate_is_total(self):
        for row in measure_point(10):
            produced, total = row["valid"].split("/")
            assert produced == total, row

    def test_all_backends_produce_per_component_files(self):
        rows = measure_point(8)
        hdl_rows = [r for r in rows if r["backend"] in
                    ("vhdl", "verilog", "systemc")]
        for row in hdl_rows:
            assert row["files"] == 8

    def test_output_grows_with_design(self):
        small = {r["backend"]: r["lines"] for r in measure_point(5)}
        large = {r["backend"]: r["lines"] for r in measure_point(40)}
        for backend in small:
            assert large[backend] > 4 * small[backend]


@pytest.mark.parametrize("backend", ("vhdl", "verilog", "systemc",
                                     "python"))
def test_benchmark_backend(benchmark, backend):
    from repro.codegen import python_gen, systemc, verilog, vhdl

    pim, profile = synthetic_soc_pim(15)
    psm = hardware_transformation().transform(pim,
                                              profiles=[profile]).psm
    generators = {
        "vhdl": vhdl.generate,
        "verilog": verilog.generate,
        "systemc": systemc.generate,
        "python": lambda scope: python_gen.generate_module(scope),
    }
    benchmark(lambda: generators[backend](psm))


if __name__ == "__main__":
    for row in table():
        print(row)
