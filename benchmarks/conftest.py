"""Benchmark fixtures: deterministic ids, shared result reporting."""

import sys
from pathlib import Path

import pytest

import repro

sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(autouse=True)
def _deterministic_ids():
    repro.reset_ids()
    yield
