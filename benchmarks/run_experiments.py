#!/usr/bin/env python
"""Regenerate every derived-experiment table (D1-D19).

Runs each bench module's ``table()`` and prints the rows — the data
recorded in EXPERIMENTS.md.  Usage::

    python benchmarks/run_experiments.py            # all experiments
    python benchmarks/run_experiments.py d3 d7      # a subset
    python benchmarks/run_experiments.py --quick    # CI smoke mode
    python benchmarks/run_experiments.py --quick --json report.json

``--quick`` shrinks every module's workload knobs (sweep sizes, event
counts, simulated time) to tiny values and checks table *shapes* only —
every table non-empty, rows are dicts with stable keys — so CI verifies
the experiment harness end-to-end in seconds without asserting timing
numbers that jitter on shared runners.  ``--json PATH`` additionally
writes every table (plus per-experiment wall time) as one JSON report —
CI uploads it as a build artifact.
"""

import importlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

#: --quick overrides for the modules' workload-size constants.
QUICK_KNOBS = {
    "SIZES": (3, 5),
    "SWEEP_SIZES": (3, 5),
    "SEEDS": (0, 1),
    "EVENTS": 50,
    "SIM_TIME": 40.0,
    "VARIANTS": 4,
    "LOOKUPS": 20,
    "LOCKSTEP_TIME": 40.0,
    "CAMPAIGN_TIME": 20.0,
    "BATCH_WIDTHS": (8,),
    "REPEATS": 1,
}

EXPERIMENTS = {
    "d1": ("bench_d1_abstraction_gap",
           "abstraction/productivity gap"),
    "d2": ("bench_d2_statechart_exec",
           "statechart execution & flattening"),
    "d3": ("bench_d3_tokens_vs_petri",
           "token semantics vs Petri nets"),
    "d4": ("bench_d4_interaction_traces",
           "interaction trace explosion vs conformance"),
    "d5": ("bench_d5_profile_overhead",
           "profile application & validation overhead"),
    "d6": ("bench_d6_mda_transform",
           "MDA PIM->PSM scaling & completeness"),
    "d7": ("bench_d7_codegen",
           "code generation throughput & validity"),
    "d8": ("bench_d8_cosimulation",
           "early prototyping simulation levels"),
    "d9": ("bench_d9_ip_reuse",
           "IP reuse ratio & mismatch detection"),
    "d10": ("bench_d10_xmi_roundtrip",
            "XMI round-trip fidelity & cost"),
    "d11": ("bench_d11_faults",
            "fault injection & resilience"),
    "d12": ("bench_d12_trace_overhead",
            "trace-bus observation overhead"),
    "d13": ("bench_d13_coverage_overhead",
            "observability overhead & coverage closure"),
    "d14": ("bench_d14_recovery",
            "rollback recovery & campaign-runner scaling"),
    "d15": ("bench_d15_batched",
            "batched execution & campaign vectorization"),
    "d16": ("bench_d16_properties",
            "online property checking & pass-rate curves"),
    "d17": ("bench_d17_store",
            "artifact-store warm starts & incremental recompilation"),
    "d18": ("bench_d18_causality",
            "causal span tracing & live telemetry overhead"),
    "d19": ("bench_d19_service",
            "simulation service overhead & queue recovery"),
    "ablations": ("bench_ablations",
                  "design-choice ablations (A1-A3)"),
}


def _check_shape(key, rows):
    """Smoke assertions: non-empty, dict rows, stable keys per level."""
    if not rows:
        raise SystemExit(f"{key}: table() returned no rows")
    for row in rows:
        if not isinstance(row, dict) or not row:
            raise SystemExit(f"{key}: malformed row {row!r}")
        if not all(isinstance(name, str) for name in row):
            raise SystemExit(f"{key}: non-string column names in {row!r}")


def run(selected, quick=False):
    import repro

    report = {}
    for key in selected:
        module_name, title = EXPERIMENTS[key]
        repro.reset_ids()
        print(f"\n=== {key.upper()} — {title} ===")
        module = importlib.import_module(module_name)
        if quick:
            for knob, value in QUICK_KNOBS.items():
                if hasattr(module, knob):
                    setattr(module, knob, value)
        start = time.perf_counter()
        rows = list(module.table())
        elapsed = time.perf_counter() - start
        for row in rows:
            print("  ", row)
        if quick:
            _check_shape(key, rows)
        print(f"   ({elapsed:.1f}s)")
        report[key] = {"title": title, "wall_s": round(elapsed, 3),
                       "rows": rows}
    if quick:
        print(f"\nquick smoke OK: {len(selected)} experiment(s), "
              "shapes verified")
    return report


def main():
    arguments = sys.argv[1:]
    json_path = None
    if "--json" in arguments:
        index = arguments.index("--json")
        try:
            json_path = arguments[index + 1]
        except IndexError:
            raise SystemExit("--json requires a path argument")
        del arguments[index:index + 2]
    arguments = [a.lower() for a in arguments]
    quick = "--quick" in arguments
    requested = [a for a in arguments if a != "--quick"] \
        or list(EXPERIMENTS)
    unknown = [k for k in requested if k not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; "
                         f"choose from {list(EXPERIMENTS)}")
    report = run(requested, quick=quick)
    if json_path is not None:
        payload = {"quick": quick, "experiments": report}
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print(f"JSON report written to {json_path}")


if __name__ == "__main__":
    main()
