#!/usr/bin/env python
"""Regenerate every derived-experiment table (D1-D11).

Runs each bench module's ``table()`` and prints the rows — the data
recorded in EXPERIMENTS.md.  Usage::

    python benchmarks/run_experiments.py            # all experiments
    python benchmarks/run_experiments.py d3 d7      # a subset
    python benchmarks/run_experiments.py --quick    # CI smoke mode

``--quick`` shrinks every module's workload knobs (sweep sizes, event
counts, simulated time) to tiny values and checks table *shapes* only —
every table non-empty, rows are dicts with stable keys — so CI verifies
the experiment harness end-to-end in seconds without asserting timing
numbers that jitter on shared runners.
"""

import importlib
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

#: --quick overrides for the modules' workload-size constants.
QUICK_KNOBS = {
    "SIZES": (3, 5),
    "SWEEP_SIZES": (3, 5),
    "SEEDS": (0, 1),
    "EVENTS": 50,
    "SIM_TIME": 40.0,
    "VARIANTS": 4,
    "LOOKUPS": 20,
}

EXPERIMENTS = {
    "d1": ("bench_d1_abstraction_gap",
           "abstraction/productivity gap"),
    "d2": ("bench_d2_statechart_exec",
           "statechart execution & flattening"),
    "d3": ("bench_d3_tokens_vs_petri",
           "token semantics vs Petri nets"),
    "d4": ("bench_d4_interaction_traces",
           "interaction trace explosion vs conformance"),
    "d5": ("bench_d5_profile_overhead",
           "profile application & validation overhead"),
    "d6": ("bench_d6_mda_transform",
           "MDA PIM->PSM scaling & completeness"),
    "d7": ("bench_d7_codegen",
           "code generation throughput & validity"),
    "d8": ("bench_d8_cosimulation",
           "early prototyping simulation levels"),
    "d9": ("bench_d9_ip_reuse",
           "IP reuse ratio & mismatch detection"),
    "d10": ("bench_d10_xmi_roundtrip",
            "XMI round-trip fidelity & cost"),
    "d11": ("bench_d11_faults",
            "fault injection & resilience"),
    "ablations": ("bench_ablations",
                  "design-choice ablations (A1-A3)"),
}


def _check_shape(key, rows):
    """Smoke assertions: non-empty, dict rows, stable keys per level."""
    if not rows:
        raise SystemExit(f"{key}: table() returned no rows")
    for row in rows:
        if not isinstance(row, dict) or not row:
            raise SystemExit(f"{key}: malformed row {row!r}")
        if not all(isinstance(name, str) for name in row):
            raise SystemExit(f"{key}: non-string column names in {row!r}")


def run(selected, quick=False):
    import repro

    for key in selected:
        module_name, title = EXPERIMENTS[key]
        repro.reset_ids()
        print(f"\n=== {key.upper()} — {title} ===")
        module = importlib.import_module(module_name)
        if quick:
            for knob, value in QUICK_KNOBS.items():
                if hasattr(module, knob):
                    setattr(module, knob, value)
        start = time.perf_counter()
        rows = list(module.table())
        for row in rows:
            print("  ", row)
        if quick:
            _check_shape(key, rows)
        print(f"   ({time.perf_counter() - start:.1f}s)")
    if quick:
        print(f"\nquick smoke OK: {len(selected)} experiment(s), "
              "shapes verified")


def main():
    arguments = [a.lower() for a in sys.argv[1:]]
    quick = "--quick" in arguments
    requested = [a for a in arguments if a != "--quick"] \
        or list(EXPERIMENTS)
    unknown = [k for k in requested if k not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; "
                         f"choose from {list(EXPERIMENTS)}")
    run(requested, quick=quick)


if __name__ == "__main__":
    main()
