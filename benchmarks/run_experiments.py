#!/usr/bin/env python
"""Regenerate every derived-experiment table (D1-D10).

Runs each bench module's ``table()`` and prints the rows — the data
recorded in EXPERIMENTS.md.  Usage::

    python benchmarks/run_experiments.py            # all experiments
    python benchmarks/run_experiments.py d3 d7      # a subset
"""

import importlib
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

EXPERIMENTS = {
    "d1": ("bench_d1_abstraction_gap",
           "abstraction/productivity gap"),
    "d2": ("bench_d2_statechart_exec",
           "statechart execution & flattening"),
    "d3": ("bench_d3_tokens_vs_petri",
           "token semantics vs Petri nets"),
    "d4": ("bench_d4_interaction_traces",
           "interaction trace explosion vs conformance"),
    "d5": ("bench_d5_profile_overhead",
           "profile application & validation overhead"),
    "d6": ("bench_d6_mda_transform",
           "MDA PIM->PSM scaling & completeness"),
    "d7": ("bench_d7_codegen",
           "code generation throughput & validity"),
    "d8": ("bench_d8_cosimulation",
           "early prototyping simulation levels"),
    "d9": ("bench_d9_ip_reuse",
           "IP reuse ratio & mismatch detection"),
    "d10": ("bench_d10_xmi_roundtrip",
            "XMI round-trip fidelity & cost"),
    "ablations": ("bench_ablations",
                  "design-choice ablations (A1-A3)"),
}


def run(selected):
    import repro

    for key in selected:
        module_name, title = EXPERIMENTS[key]
        repro.reset_ids()
        print(f"\n=== {key.upper()} — {title} ===")
        module = importlib.import_module(module_name)
        start = time.perf_counter()
        for row in module.table():
            print("  ", row)
        print(f"   ({time.perf_counter() - start:.1f}s)")


def main():
    requested = [a.lower() for a in sys.argv[1:]] or list(EXPERIMENTS)
    unknown = [k for k in requested if k not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; "
                         f"choose from {list(EXPERIMENTS)}")
    run(requested)


if __name__ == "__main__":
    main()
