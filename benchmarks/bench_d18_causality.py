"""D18 — causal span tracing & live telemetry overhead (PR 9).

Claim: provenance is affordable.  Building full causal trees (the
:class:`~repro.observability.CausalIndex` subscribes to every kind,
stamps the causal register into each payload and maintains
parent/children/edge maps) must cost little over the *materialization
floor* — a wildcard subscriber that appends every TraceEvent to a
list — because forcing the events into existence *and holding them*
is what any full-stream consumer (flight recorder, JSONL writer)
already pays.  The delta over that floor is pure causality: the
engines' cause-register threading and the per-payload ``cause``
stamp.  And the PR 9 campaign
telemetry must be invisible: it rides an OS pipe, never the TraceBus,
so a vectorized campaign with a live progress line must run at the
same speed and produce the byte-identical report.

Measured:

* events/second of the D8 SoC with (a) a wildcard swallow subscriber
  (the floor), (b) a full ``CausalIndex``, (c) an edge-stats-only
  ``CausalIndex(keep_events=False)`` — interpreted and compiled;
* exporter throughput: span-JSONL and Perfetto records/second over
  the captured stream;
* wall time of a vectorized multi-seed campaign with telemetry off
  vs. on (plus the report byte-identity check).

Acceptance (PR 9): full causal indexing costs <= 10% over the
materialization floor and telemetry costs <= 2% on the vectorized
campaign — both measured on an idle machine and recorded in
BENCH_PR9.json; the CI shape test only asserts loose bounds because
shared runners jitter.
"""

import io
import tempfile
import time

from repro.engine import TraceBus
from repro.faults import CampaignSpec, FaultCampaign, FaultSpec, run_campaign
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.observability import (
    CampaignTelemetry,
    CausalIndex,
    perfetto_json,
    span_lines,
)
from repro.simulation import SystemSimulation

SIM_TIME = 2400.0  # long enough that one timed run dwarfs OS jitter
REPEATS = 5
SEEDS = tuple(range(20))
CAMPAIGN_TIME = 40.0

MODES = ("materialization floor", "causal index", "edge stats only")


def build_system():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x800)
    memory = make_memory("Ram", size_bytes=0x800)
    return make_soc("Bench", masters=[cpu],
                    slaves=[(memory, "bus", 0, 0x800)])


def campaign_top():
    """Builder entry point for the campaign specs (importable path)."""
    return build_system()


def _run_once(mode, compiled=False):
    bus = TraceBus()
    index = None
    if mode == "materialization floor":
        # every kind, retained — the flight-recorder baseline: force
        # each TraceEvent into existence and hold it
        retained = []
        bus.subscribe(retained.append)
    elif mode == "causal index":
        index = CausalIndex(bus)
    else:
        index = CausalIndex(bus, keep_events=False)
    simulation = SystemSimulation(build_system(), quantum=1.0,
                                  default_latency=1.0, bus=bus,
                                  compile=compiled)
    start = time.perf_counter()
    simulation.run(until=SIM_TIME)
    elapsed = time.perf_counter() - start
    # counts() folds the lazily-indexed provenance maps — a query-time
    # cost, deliberately outside the timed hot loop (like a profiler's
    # symbolication pass)
    records, edges = index.counts() if index else (0, 0)
    result = {
        "kernel_events": simulation.simulator.events_processed,
        "trace_events": simulation.stats()["trace_events"],
        "elapsed_s": elapsed,
        "causal_records": records,
        "causal_edges": edges,
        "events": list(index.events) if index and index.keep_events
        else [],
    }
    simulation.close()
    return result


def measure_group(compiled=False):
    """Best-of-N per mode, rounds *interleaved* across the modes so a
    machine-load swing hits every mode equally instead of whichever
    happened to run last (events/s is jitter-sensitive)."""
    best = {}
    for _ in range(REPEATS):
        for mode in MODES:
            run = _run_once(mode, compiled)
            held = best.get(mode)
            if held is None or run["elapsed_s"] < held["elapsed_s"]:
                best[mode] = run
    return [{
        "engine": "compiled" if compiled else "interpreted",
        "mode": mode,
        "kernel_events": best[mode]["kernel_events"],
        "causal_records": best[mode]["causal_records"],
        "causal_edges": best[mode]["causal_edges"],
        "events_per_s": round(best[mode]["kernel_events"]
                              / best[mode]["elapsed_s"]),
    } for mode in MODES]


def exporter_row():
    """Span/Perfetto serialization throughput over one captured run."""
    events = _run_once("causal index")["events"]
    start = time.perf_counter()
    lines = span_lines(events)
    span_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    perfetto = perfetto_json(events)
    perfetto_elapsed = time.perf_counter() - start
    return {
        "engine": "-",
        "mode": "exporters",
        "records": len(lines),
        "span_records_per_s": round(len(lines) / max(span_elapsed, 1e-9)),
        "perfetto_records_per_s": round(
            len(lines) / max(perfetto_elapsed, 1e-9)),
        "perfetto_bytes": len(perfetto),
    }


def campaign_spec(tmp_dir, **kwargs):
    campaign = FaultCampaign(
        [FaultSpec("drop", signal="ReadResp", probability=0.25),
         FaultSpec("delay", signal="WriteAck", delay=3.0, jitter=2.0,
                   probability=0.3)],
        name="d18", seed=0)
    path = f"{tmp_dir}/d18_campaign.json"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(campaign.to_json())
    options = dict(seeds=list(SEEDS),
                   builder="bench_d18_causality:campaign_top",
                   campaign=path, until=CAMPAIGN_TIME, name="d18")
    options.update(kwargs)
    return CampaignSpec(**options)


def _campaign_once(spec, telemetry_on):
    telemetry = None
    if telemetry_on:
        # force-enabled onto a StringIO: the full render path runs
        # even though CI has no TTY
        telemetry = CampaignTelemetry(len(spec.seeds), name=spec.name,
                                      stream=io.StringIO(), enabled=True)
    start = time.perf_counter()
    result = run_campaign(spec, vectorize=True,
                          progress=telemetry)
    return time.perf_counter() - start, result


def telemetry_rows():
    """Vectorized campaign wall time, telemetry off vs. on."""
    with tempfile.TemporaryDirectory() as tmp_dir:
        spec = campaign_spec(tmp_dir)
        off = min(_campaign_once(spec, False)[0] for _ in range(REPEATS))
        best_on = None
        report_on = None
        report_off = _campaign_once(spec, False)[1].to_json()
        for _ in range(REPEATS):
            elapsed, result = _campaign_once(spec, True)
            if best_on is None or elapsed < best_on:
                best_on = elapsed
                report_on = result.to_json()
    overhead = round(100.0 * (best_on - off) / off, 1)
    return [
        {"engine": "vectorized", "mode": "campaign, telemetry off",
         "seeds": len(spec.seeds), "wall_s": round(off, 3),
         "overhead_pct": 0.0, "report_identical": True},
        {"engine": "vectorized", "mode": "campaign, telemetry on",
         "seeds": len(spec.seeds), "wall_s": round(best_on, 3),
         "overhead_pct": overhead,
         "report_identical": report_on == report_off},
    ]


def table():
    """Rows: causal-index overhead vs. the materialization floor (both
    engines), exporter throughput, and campaign telemetry cost."""
    rows = []
    for compiled in (False, True):
        group = measure_group(compiled)
        baseline = group[0]["events_per_s"]
        for row in group:
            row["overhead_pct"] = round(
                100.0 * (baseline - row["events_per_s"]) / baseline, 1)
        rows.extend(group)
    rows.append(exporter_row())
    rows.extend(telemetry_rows())
    return rows


class TestShape:
    def test_causal_index_sees_the_full_stream(self):
        floor = _run_once("materialization floor")
        indexed = _run_once("causal index")
        assert floor["kernel_events"] == indexed["kernel_events"]
        assert indexed["causal_records"] == indexed["trace_events"]
        assert indexed["causal_edges"] > 0

    def test_edge_stats_mode_matches_full_mode(self):
        full = _run_once("causal index")
        cheap = _run_once("edge stats only")
        assert cheap["causal_edges"] == full["causal_edges"]
        assert cheap["events"] == []

    def test_causal_overhead_is_bounded(self):
        # the real acceptance number (<= 10% over the materialization
        # floor) is measured off-CI and recorded in BENCH_PR9.json;
        # here only a loose ceiling so the guarantee can't silently
        # rot into a multiple
        group = measure_group()
        floor, indexed = group[0], group[1]
        assert indexed["events_per_s"] > 0.5 * floor["events_per_s"]

    def test_telemetry_does_not_change_the_report(self):
        with tempfile.TemporaryDirectory() as tmp_dir:
            spec = campaign_spec(tmp_dir)
            _, plain = _campaign_once(spec, False)
            _, observed = _campaign_once(spec, True)
        assert plain.to_json() == observed.to_json()
