"""D4 — sequence diagrams as MSCs: trace explosion vs. conformance (Sec. 2).

Claim: UML 2.0 sequence diagrams are "comparable to an SDL Message
Sequence Chart" — they denote trace languages.

Measured: the trace-language size explodes factorially with ``par``
operands (multinomial counts, computed in closed form), while checking
one concrete trace for conformance stays cheap — the practical reason
the matcher exists.  Shape: count grows superexponentially; conformance
time grows far slower than enumeration time.
"""

import time

import pytest

from repro.interactions import conforms, trace_count, traces

from workloads import par_interaction


def first_trace(interaction):
    return traces(interaction, limit=200_000)[0]


def table():
    """Rows: operands x messages, trace count, enumerate vs conform time."""
    rows = []
    for lifelines, messages in ((2, 2), (2, 4), (3, 3), (4, 3), (4, 4)):
        interaction = par_interaction(lifelines, messages)
        count = trace_count(interaction)
        row = {
            "operands": max(lifelines - 1, 2),
            "messages_per_operand": messages,
            "trace_count": count,
        }
        if count <= 50_000:
            start = time.perf_counter()
            trace_set = traces(interaction, limit=200_000)
            row["enumerate_ms"] = round(
                1e3 * (time.perf_counter() - start), 2)
            sample = trace_set[len(trace_set) // 2]
        else:
            row["enumerate_ms"] = "skipped (explosion)"
            sample = first_trace(par_interaction(2, messages))
            interaction = par_interaction(2, messages)
        start = time.perf_counter()
        assert conforms(interaction, sample)
        row["conform_ms"] = round(1e3 * (time.perf_counter() - start), 2)
        rows.append(row)
    return rows


class TestShape:
    def test_count_is_multinomial_and_explodes(self):
        small = trace_count(par_interaction(2, 2))
        large = trace_count(par_interaction(4, 4))
        assert small == 6
        assert large > 1000 * small

    def test_closed_form_matches_enumeration(self):
        interaction = par_interaction(3, 2)
        assert trace_count(interaction) == len(traces(interaction))

    def test_conformance_cheaper_than_enumeration(self):
        interaction = par_interaction(4, 3)
        sample = first_trace(interaction)

        start = time.perf_counter()
        traces(interaction, limit=200_000)
        enumerate_time = time.perf_counter() - start

        start = time.perf_counter()
        assert conforms(interaction, sample)
        conform_time = time.perf_counter() - start
        assert conform_time < enumerate_time

    def test_non_conforming_rejected_fast(self):
        interaction = par_interaction(3, 3)
        sample = list(first_trace(interaction))
        sample[0], sample[1] = sample[1], sample[0]
        bad = tuple(sample)
        if conforms(interaction, bad):
            # swapping two same-operand messages must break ordering
            bad = tuple(reversed(first_trace(interaction)))
        assert not conforms(interaction, bad)


def test_benchmark_enumeration(benchmark):
    interaction = par_interaction(3, 3)
    benchmark(lambda: traces(interaction, limit=200_000))


def test_benchmark_conformance(benchmark):
    interaction = par_interaction(4, 3)
    sample = first_trace(interaction)
    benchmark(lambda: conforms(interaction, sample))


if __name__ == "__main__":
    for row in table():
        print(row)
