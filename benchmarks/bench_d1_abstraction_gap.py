"""D1 — the abstraction/productivity gap (paper Sections 1 & 3).

Claim: one UML model fans out into much larger platform-specific
implementations, so raising the abstraction level attacks the design
productivity gap.

Measured: model LoC-equivalent vs. total generated LoC (all four
backends) for synthetic SoC PIMs of growing size; the expansion factor
must exceed 1 everywhere and not collapse as designs grow.
"""

import pytest

from repro.codegen import generate_all
from repro.mda import hardware_transformation
from repro.metrics import abstraction_report

from workloads import synthetic_soc_pim

SWEEP_SIZES = (5, 10, 20, 40)


def measure_point(components: int):
    pim, profile = synthetic_soc_pim(components)
    result = hardware_transformation().transform(pim, profiles=[profile])
    generated = generate_all(result.psm)
    merged = {backend: "\n".join(files.values())
              for backend, files in generated.items()}
    return abstraction_report(pim, merged)


def table():
    """Rows: components, model elements, model LoC, generated LoC, factor."""
    rows = []
    for components in SWEEP_SIZES:
        report = measure_point(components)
        rows.append({
            "components": components,
            "model_elements": report.model_elements,
            "model_loc": round(report.model_loc, 1),
            "generated_loc": report.total_generated,
            "per_backend": dict(report.generated),
            "expansion_factor": round(report.expansion_factor, 2),
        })
    return rows


class TestShape:
    def test_expansion_factor_always_above_one(self):
        for components in (5, 20):
            report = measure_point(components)
            assert report.expansion_factor > 1.0, (
                f"{components} components: abstraction must win")

    def test_factor_stable_with_scale(self):
        small = measure_point(5)
        large = measure_point(40)
        # generated code grows at least proportionally with the model
        assert large.total_generated > 4 * small.total_generated
        assert large.expansion_factor >= 0.8 * small.expansion_factor


def test_benchmark_generate_20_components(benchmark):
    pim, profile = synthetic_soc_pim(20)
    result = hardware_transformation().transform(pim, profiles=[profile])
    benchmark(lambda: generate_all(result.psm))


if __name__ == "__main__":
    for row in table():
        print(row)
