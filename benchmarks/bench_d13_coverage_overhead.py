"""D13 — observability overhead & coverage closure (PR 4).

Claim: verification-grade observability (functional coverage + the
deterministic profiler + the flight-recorder ring) is cheap enough to
leave on for every verification run, and merged coverage over a seeded
fault campaign converges — the coverage-closure loop hardware teams
run on RTL works on executable UML models.

Measured, per engine (interpreted and compiled):

* **bus off** (``bus=False``) and **default bus** — context rows; the
  cost of *materializing* engine-level trace events at all is a PR 3
  property (D12), not something a subscriber can undo.
* **materialized** — a TraceBus with one no-op subscriber on the five
  engine kinds: every engine event is built and delivered but nothing
  consumes it.  This is the **baseline** for the acceptance criterion,
  because any engine-kind subscriber (coverage included) forces
  materialization, so its cost is the floor any consumer pays.
* **materialized full** — the same no-op subscriber, wildcard: also
  materializes ``message``/``fault`` events.  The flight recorder
  records *every* kind (a post-mortem without messages is useless), so
  this — not the five-kind row — is the floor the flight ring pays.
* **coverage** / **profiler** / **flight** — exactly one consumer
  attached (``SystemSimulation(coverage=True)`` etc.), i.e. the
  *incremental* cost of each subscriber beyond materialization.
* **verification** — all three consumers at once
  (``coverage=True, profile=True, flight_recorder=256``).

Methodology: trials are *interleaved* round-robin across modes (all
modes run once, then again, REPEATS times; best trial per mode) so a
host-scheduling hiccup degrades one trial of every mode instead of one
mode's whole sample — on shared single-core containers mode-blocked
sampling produced 10-30% phantom overheads.

Acceptance (PR 4, measured on an idle machine and recorded in
BENCH_PR4.json): **each individual subscriber costs <= ~10% of
materialized throughput on the interpreted engine**.  Two caveats the
numbers force us to state honestly:

* Bus *dispatch* itself is not free: a no-op subscriber costs ~8% of
  the compiled engine's throughput, so attaching three consumers pays
  that floor three times (~24%) before any consumer logic runs.  "All
  three subscribers <= 10% combined" is therefore not achievable for a
  pure-Python bus on the compiled engine; the verification row lands
  at roughly 1.2-1.3x (interpreted) to 1.6-1.8x (compiled) of the
  materialized baseline, and that is the honest figure we record.
* On the interpreted engine the kernel itself is ~4x slower, so the
  same absolute per-event consumer cost (~0.3-1 us/event) reads as a
  much smaller percentage — which is also the engine verification
  runs actually use (fault campaigns exercise the interpreter).

The CI shape test only asserts a loose floor (no consumer may halve
throughput) because shared runners jitter far more than 10%.

Also reported: the coverage-closure curve.  The model under closure is
a retry-with-backoff bus master (``make_retry_master``) whose deep
``Wait_k``/``Backoff_k`` states are reachable only after *k
consecutive* dropped responses — probability ``p**k`` per cycle — and
whose ``Nak`` bins fire only when a corrupted address escapes the
decode map.  Successive fault-campaign seeds therefore cover the state
space progressively (cumulative coverage is monotonic and grows), and
some bins — e.g. ``WriteAck`` on a read-only master — are structurally
unreachable, exactly the asymptote real RTL closure fights.
"""

import time

from repro.engine import TraceBus
from repro.faults import FaultCampaign, FaultSpec
from repro.hw import (make_memory, make_retry_master, make_soc,
                      make_traffic_generator)
from repro.observability import CoverageReport
from repro.simulation import SystemSimulation

SIM_TIME = 400.0
REPEATS = 3
SEEDS = (0, 1, 2, 3, 4)

MODES = ("bus off", "default bus", "materialized", "materialized full",
         "coverage", "profiler", "flight", "verification")

#: SystemSimulation options per consumer mode.
CONSUMERS = {
    "coverage": {"coverage": True},
    "profiler": {"profile": True},
    "flight": {"flight_recorder": 256},
    "verification": {"coverage": True, "profile": True,
                     "flight_recorder": 256},
}

ENGINE_KINDS = ("event", "transition", "state_enter", "state_exit",
                "token")


def build_system():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x800)
    memory = make_memory("Ram", size_bytes=0x800)
    return make_soc("Bench", masters=[cpu],
                    slaves=[(memory, "bus", 0, 0x800)])


def build_closure_system():
    """The coverage-closure target: a retry master whose deep retry
    states need consecutive response drops to be reached."""
    master = make_retry_master("Retry", address=0x10, period=6.0,
                               timeout=3.0, backoff=0.5, max_retries=3)
    memory = make_memory("Ram", size_bytes=0x800)
    return make_soc("Closure", masters=[master],
                    slaves=[(memory, "bus", 0, 0x800)])


def closure_campaign(seed):
    """Drops make ``Wait_k`` reachable (k consecutive drops needed),
    corrupted addresses fall off the decode map and produce ``Nak``,
    delays land responses in ``Backoff``/``Idle`` cross bins."""
    return FaultCampaign(
        [FaultSpec("drop", signal="ReadResp", probability=0.04),
         FaultSpec("corrupt", signal="Read", field="addr", xor=0x10000,
                   probability=0.015),
         FaultSpec("delay", signal="ReadResp", delay=2.0, jitter=6.0,
                   probability=0.2)],
        name="closure", seed=seed)


def _run_once(mode, compiled=False):
    options = CONSUMERS.get(mode, {})
    if mode == "bus off":
        bus = False
    elif mode == "default bus":
        bus = None
    elif mode in ("materialized", "materialized full"):
        bus = TraceBus()

        def swallow(event):
            pass

        bus.subscribe(swallow, kinds=ENGINE_KINDS
                      if mode == "materialized" else None)
    else:  # consumer modes build their own bus via the options
        bus = None
    simulation = SystemSimulation(build_system(), quantum=1.0,
                                  default_latency=1.0, bus=bus,
                                  compile=compiled, **options)
    start = time.perf_counter()
    simulation.run(until=SIM_TIME)
    elapsed = time.perf_counter() - start
    result = {
        "kernel_events": simulation.simulator.events_processed,
        "elapsed_s": elapsed,
    }
    if mode == "verification":
        result["coverage_pct"] = \
            simulation.observability.coverage_report().total_percent()
    simulation.close()
    return result


def measure(mode, compiled=False):
    """Best-of-N run of one mode (events/s is jitter-sensitive)."""
    best = min((_run_once(mode, compiled) for _ in range(REPEATS)),
               key=lambda run: run["elapsed_s"])
    row = {
        "engine": "compiled" if compiled else "interpreted",
        "mode": mode,
        "kernel_events": best["kernel_events"],
        "events_per_s": round(best["kernel_events"] / best["elapsed_s"]),
    }
    if "coverage_pct" in best:
        row["coverage_pct"] = best["coverage_pct"]
    return row


def measure_group(compiled):
    """All modes of one engine, trials interleaved round-robin."""
    best = {mode: None for mode in MODES}
    for _ in range(REPEATS):
        for mode in MODES:
            run = _run_once(mode, compiled)
            if best[mode] is None \
                    or run["elapsed_s"] < best[mode]["elapsed_s"]:
                best[mode] = run
    rows = []
    for mode in MODES:
        run = best[mode]
        row = {
            "engine": "compiled" if compiled else "interpreted",
            "mode": mode,
            "kernel_events": run["kernel_events"],
            "events_per_s": round(run["kernel_events"]
                                  / run["elapsed_s"]),
        }
        if "coverage_pct" in run:
            row["coverage_pct"] = run["coverage_pct"]
        rows.append(row)
    return rows


def closure_curve(seeds=None):
    """Cumulative coverage after merging each fault-campaign seed."""
    merged = None
    curve = []
    for seed in (SEEDS if seeds is None else seeds):
        with SystemSimulation(build_closure_system(), quantum=1.0,
                              default_latency=1.0, coverage=True,
                              faults=closure_campaign(seed)) as simulation:
            simulation.run(until=SIM_TIME)
            report = simulation.observability.coverage_report()
        merged = report if merged is None else merged.merge(report)
        curve.append({
            "engine": "closure", "mode": f"seed {seed}",
            "seed_pct": report.total_percent(),
            "cumulative_pct": merged.total_percent(),
        })
    assert isinstance(merged, CoverageReport)
    return curve


def table():
    """Rows: observation mode vs throughput per engine (overheads vs
    bus-off and vs the materialized baseline), then the closure curve."""
    rows = []
    for compiled in (False, True):
        group = measure_group(compiled)
        throughput = {row["mode"]: row["events_per_s"] for row in group}
        bus_off = throughput["bus off"]
        for row in group:
            # flight records every kind, so its floor is the wildcard
            # materialization row, not the five-kind one
            floor = throughput["materialized full"] \
                if row["mode"] in ("flight", "materialized full") \
                else throughput["materialized"]
            row["overhead_vs_bus_off_pct"] = round(
                100.0 * (bus_off - row["events_per_s"]) / bus_off, 1)
            row["overhead_vs_materialized_pct"] = round(
                100.0 * (floor - row["events_per_s"]) / floor, 1)
        rows.extend(group)
    rows.extend(closure_curve())
    return rows


class TestShape:
    def test_modes_agree_on_kernel_events(self):
        counts = {_run_once(mode)["kernel_events"] for mode in MODES}
        assert len(counts) == 1

    def test_verification_reports_nonzero_coverage(self):
        run = _run_once("verification")
        assert run["coverage_pct"] > 0

    def test_consumer_overhead_is_bounded(self):
        # the real acceptance numbers are measured off-CI and recorded
        # in BENCH_PR4.json; here only a loose floor so the guarantee
        # can't rot into a "coverage halves throughput" regression
        materialized = measure("materialized")["events_per_s"]
        full = measure("materialized full")["events_per_s"]
        for mode in ("coverage", "profiler"):
            assert measure(mode)["events_per_s"] >= 0.5 * materialized
        assert measure("flight")["events_per_s"] >= 0.5 * full

    def test_closure_curve_is_monotonic(self):
        curve = closure_curve(seeds=(0, 1))
        cumulative = [row["cumulative_pct"] for row in curve]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] >= curve[0]["seed_pct"]

    def test_closure_curve_actually_climbs(self):
        # the retry-master target makes seeds complementary: merging
        # all seeds must beat the best single seed (a flat curve means
        # the model is degenerate for closure)
        curve = closure_curve()
        best_single = max(row["seed_pct"] for row in curve)
        assert curve[-1]["cumulative_pct"] > best_single


def test_benchmark_verification_run(benchmark):
    def run():
        simulation = SystemSimulation(build_system(), quantum=1.0,
                                      coverage=True, profile=True,
                                      flight_recorder=256)
        simulation.run(until=100.0)
        simulation.close()
    benchmark(run)


if __name__ == "__main__":
    for row in table():
        print(row)
