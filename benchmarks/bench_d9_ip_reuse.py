"""D9 — IP reuse through interfaces (Section 4).

Claim: applying MDA/UML to hardware "promises large scale reuse and
portability", with "seamless integration of existing IP".

Measured: assemble 20 SoC variants from the IP library with a seeded
mix of library and custom parts; report the reuse ratio trajectory and
how many wiring mistakes (incompatible ports) the validator catches
when deliberately injected.  Shape: reuse ratio rises toward the
library share as variants grow; injected mismatches are always caught.
"""

import random

import pytest

import repro.metamodel as mm
from repro.hw import ip_library
from repro.metrics import reuse_report
from repro.profiles import create_soc_profile
from repro.validation import validate_model

VARIANTS = 20


def build_variant(library: mm.Package, seed: int) -> mm.Component:
    """One SoC variant: 3-8 parts, mostly from the library."""
    rng = random.Random(seed)
    top = mm.Component(f"Variant{seed}")
    library_types = [c for c in library.packaged_elements
                     if isinstance(c, mm.Component)]
    for index in range(rng.randint(3, 8)):
        if rng.random() < 0.75:
            part_type = rng.choice(library_types)
        else:
            part_type = mm.Component(f"Custom{seed}_{index}")
        top.add_part(f"u{index}", part_type)
    return top


def table():
    """Rows: cumulative reuse ratio + mismatch detection tally."""
    profile = create_soc_profile()
    library = ip_library(profile)
    rows = []
    total_parts = 0
    total_reused = 0
    for seed in range(VARIANTS):
        variant = build_variant(library, seed)
        report = reuse_report(variant, library)
        total_parts += report.total_parts
        total_reused += report.library_parts
        if seed % 5 == 4:
            rows.append({
                "variants_built": seed + 1,
                "cumulative_parts": total_parts,
                "cumulative_reused": total_reused,
                "cumulative_reuse_ratio": round(
                    total_reused / total_parts, 3),
            })
    rows.append(_mismatch_row())
    return rows


def _mismatch_row():
    caught = 0
    injected = 0
    for seed in range(8):
        injected += 1
        model = mm.Model(f"bad{seed}")
        iface_a = model.add(mm.Interface("IA"))
        iface_b = model.add(mm.Interface("IB"))
        producer = model.add(mm.Component("P"))
        out_port = producer.add_port("o", direction=mm.PortDirection.OUT)
        out_port.require(iface_a)
        consumer = model.add(mm.Component("C"))
        in_port = consumer.add_port("i", direction=mm.PortDirection.IN)
        in_port.provide(iface_b)  # wrong interface
        top = model.add(mm.Component("Top"))
        part_p = top.add_part("p", producer)
        part_c = top.add_part("c", consumer)
        top.connect(out_port, in_port, part_p, part_c, check=False)
        report = validate_model(model)
        if report.by_rule("connector-compatible"):
            caught += 1
    return {"injected_mismatches": injected, "caught_by_validator": caught}


class TestShape:
    def test_reuse_ratio_reflects_library_share(self):
        rows = table()
        final = [r for r in rows if "cumulative_reuse_ratio" in r][-1]
        # the generator draws 75% of parts from the library
        assert 0.55 <= final["cumulative_reuse_ratio"] <= 0.92

    def test_all_injected_mismatches_caught(self):
        row = _mismatch_row()
        assert row["caught_by_validator"] == row["injected_mismatches"]

    def test_library_variant_simulates(self):
        """Reused IP is not just structural: a variant actually runs."""
        from repro.hw import make_memory, make_soc, make_traffic_generator
        from repro.simulation import SystemSimulation

        top = make_soc("ReuseDemo",
                       masters=[make_traffic_generator(period=4.0,
                                                       address_range=512)],
                       slaves=[(make_memory(size_bytes=512), "bus",
                                0, 512)])
        simulation = SystemSimulation(top, quantum=1.0)
        simulation.run(until=120.0)
        assert simulation.context_of("m0_trafficgen")["responses"] > 0


def test_benchmark_variant_assembly(benchmark):
    import itertools

    profile = create_soc_profile()
    library = ip_library(profile)
    counter = itertools.count()

    def run():
        build_variant(library, next(counter))
    benchmark(run)


if __name__ == "__main__":
    for row in table():
        print(row)
