"""D14 — supervised rollback recovery & the campaign runner (PR 5).

Claim under test: graceful degradation is only useful if its recovery
actions are *cheap relative to what they save*.  A rollback restore
keeps everything the part learned since start for the price of one
snapshot copy; a restart is cheaper per event but forfeits state; a
quarantine is free and forfeits the part.  And at the campaign level,
sweeping seeds across worker processes must pay for itself quickly and
an interrupted sweep must resume for the cost of the missing seeds
only.

Measured:

* **recovery policies** — a SoC with a periodically failing part run
  under restore / restart / quarantine: events/s plus the recovery
  counts, against a never-failing baseline;
* **checkpoint cadence** — the cost of periodic per-part snapshots with
  no failures at all (the insurance premium);
* **campaign fan-out** — the same multi-seed sweep serial vs 2 vs 4
  worker processes: wall time and speedup;
* **resume cost** — re-running a journaled sweep with one seed missing:
  the runner must execute exactly that seed.

Invariants reported as boolean rows: parallel and serial sweeps
serialize byte-identically, and the resumed sweep equals the
uninterrupted reference.
"""

import json
import os
import tempfile
import time

import repro.metamodel as mm
from repro.faults import CampaignSpec, FaultCampaign, FaultSpec, run_campaign
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachine, TransitionKind

SIM_TIME = 300.0
SEEDS = (0, 1, 2, 3, 4, 5)

#: simulated-time period of the flaky part's self-inflicted failure
FAIL_PERIOD = 25.0

CAMPAIGN = FaultCampaign(
    [FaultSpec("drop", signal="ReadResp", probability=0.2),
     FaultSpec("delay", signal="WriteAck", delay=2.0, jitter=1.0,
               probability=0.2)],
    name="d14-sweep", seed=0)


def make_flaky():
    """A heartbeat counter whose ``Poke`` signal raises in its effect."""
    part = mm.Component("Flaky")
    part.add_attribute("beats", mm.INTEGER, default=0)
    part.add_port("in", direction=mm.PortDirection.IN)
    machine = StateMachine("FlakyBehavior")
    region = machine.region
    init = region.add_initial()
    run = region.add_state("Run")
    region.add_transition(init, run)
    region.add_transition(run, run, after=1.0,
                          effect="beats = beats + 1;",
                          kind=TransitionKind.EXTERNAL)
    region.add_transition(run, run, trigger="Poke",
                          effect="x = undefined_name + 1;",
                          kind=TransitionKind.INTERNAL)
    part.add_behavior(machine, as_classifier_behavior=True)
    return part


def build_system():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    memory = make_memory("Ram", size_bytes=0x800)
    return make_soc("Bench", masters=[cpu],
                    slaves=[(memory, "bus", 0, 0x800)])


def build_flaky_system():
    top = build_system()
    top.add_part("flaky", make_flaky())
    return top


def _policy_run(policy, checkpoint_interval=None, flaky=True):
    builder = build_flaky_system if flaky else build_system
    with SystemSimulation(builder(), quantum=1.0,
                          on_part_error=policy,
                          checkpoint_interval=checkpoint_interval,
                          max_restores=10 ** 6,
                          max_restarts=10 ** 6) as simulation:
        if flaky:
            k = 1
            while FAIL_PERIOD * k < SIM_TIME:
                simulation.send("flaky", "Poke", delay=FAIL_PERIOD * k)
                k += 1
        start = time.perf_counter()
        simulation.run(until=SIM_TIME)
        elapsed = time.perf_counter() - start
        events = simulation.simulator.events_processed
        stats = simulation.stats()
        return {
            "kernel_events": events,
            "events_per_s": round(events / elapsed),
            "restores": stats["restores"],
            "restarts": stats["restarts"],
            "quarantined": len(simulation.quarantined_parts),
            "flaky_beats": (simulation.context_of("flaky")["beats"]
                            if flaky and "flaky" not in
                            simulation.quarantined_parts else None),
        }


def recovery_policy_rows():
    baseline = _policy_run("quarantine", flaky=False)
    rows = [{"level": "baseline (no failures)", **baseline}]
    for policy, interval in (("restore", FAIL_PERIOD / 2),
                             ("restart", None),
                             ("quarantine", None)):
        row = _policy_run(policy, checkpoint_interval=interval)
        rows.append({"level": f"policy={policy}", **row})
    return rows


def checkpoint_cadence_rows():
    off = _policy_run("quarantine", flaky=False)
    armed = _policy_run("quarantine", checkpoint_interval=5.0,
                        flaky=False)
    return [{
        "level": "periodic checkpoint premium (interval=5, no faults)",
        "factor": round(armed["events_per_s"]
                        / max(off["events_per_s"], 1), 3),
        "baseline_events_per_s": off["events_per_s"],
        "armed_events_per_s": armed["events_per_s"],
    }]


def _sweep_spec(campaign_path, seeds=None):
    return CampaignSpec(seeds=list(seeds or SEEDS),
                        builder="bench_d14_recovery:build_system",
                        campaign=campaign_path, until=SIM_TIME / 2,
                        name="d14-sweep")


def campaign_rows():
    rows = []
    with tempfile.TemporaryDirectory(prefix="d14-") as scratch:
        campaign_path = os.path.join(scratch, "campaign.json")
        with open(campaign_path, "w", encoding="utf-8") as handle:
            handle.write(CAMPAIGN.to_json())
        spec = _sweep_spec(campaign_path)
        timings = {}
        results = {}
        for workers in (0, 2, 4):
            start = time.perf_counter()
            results[workers] = run_campaign(spec, workers=workers,
                                            run_timeout=300.0)
            timings[workers] = time.perf_counter() - start
        serial = timings[0]
        for workers in (0, 2, 4):
            rows.append({
                "level": ("campaign serial" if workers == 0
                          else f"campaign {workers} workers"),
                "seeds": len(spec.seeds),
                "cpus": os.cpu_count(),
                "wall_s": round(timings[workers], 3),
                "speedup": round(serial / timings[workers], 2),
            })
        rows.append({
            "level": "parallel == serial (byte-identical result)",
            "holds": all(results[workers].to_json()
                         == results[0].to_json()
                         for workers in (2, 4)),
        })
        # resume: journal the full sweep, drop the last seed's row,
        # re-run with resume — only the dropped seed may execute
        journal = os.path.join(scratch, "journal.jsonl")
        start = time.perf_counter()
        full = run_campaign(spec, journal=journal)
        full_wall = time.perf_counter() - start
        lines = open(journal, encoding="utf-8").read().splitlines()
        dropped_seed = json.loads(lines[-1])["seed"]
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
        start = time.perf_counter()
        resumed = run_campaign(spec, journal=journal, resume=True)
        resume_wall = time.perf_counter() - start
        rows.append({
            "level": "resume with one seed missing",
            "seeds_re_run": len(spec.seeds) - len(resumed.resumed_seeds),
            "dropped_seed": dropped_seed,
            "full_wall_s": round(full_wall, 3),
            "resume_wall_s": round(resume_wall, 3),
            "resume_equals_uninterrupted": resumed.to_json()
            == full.to_json(),
        })
    return rows


def table():
    """Rows: recovery-policy throughput, checkpoint premium, campaign
    fan-out speedup, resume cost + the PR-5 determinism invariants."""
    rows = recovery_policy_rows()
    rows.extend(checkpoint_cadence_rows())
    rows.extend(campaign_rows())
    return rows


class TestShape:
    def test_policies_recover(self):
        rows = {row["level"]: row for row in recovery_policy_rows()}
        assert rows["policy=restore"]["restores"] > 0
        assert rows["policy=restart"]["restarts"] > 0
        assert rows["policy=quarantine"]["quarantined"] == 1
        # restore keeps the counter the restart policy forfeits
        assert rows["policy=restore"]["flaky_beats"] \
            > rows["policy=restart"]["flaky_beats"]

    def test_campaign_invariants_hold(self):
        rows = {row["level"]: row for row in campaign_rows()}
        assert rows["parallel == serial (byte-identical result)"]["holds"]
        resume = rows["resume with one seed missing"]
        assert resume["seeds_re_run"] == 1
        assert resume["resume_equals_uninterrupted"]


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv:
        SIM_TIME = 60.0
        SEEDS = (0, 1)
    for row in table():
        print(row)
