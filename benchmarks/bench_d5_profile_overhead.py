"""D5 — profiles tailor UML cheaply (Sections 2 & 4).

Claim: a profile gives a domain-specific language "with semantic
extensions" without a new metamodel — so applying and checking one must
cost only a small overhead on top of plain validation.

Measured: stereotype application throughput, and full-model validation
time with vs. without the SoC profile applied, across model sizes.
Shape: overhead is a modest constant factor (not superlinear).
"""

import time

import pytest

import repro.metamodel as mm
from repro.profiles import apply_stereotype, create_soc_profile
from repro.validation import validate_model

from workloads import structural_model


def apply_profile(model: mm.Model, profile) -> int:
    """Stereotype every class and its integer attributes; returns count."""
    applied = 0
    hw_module = profile.stereotype("HwModule")
    register = profile.stereotype("Register")
    for cls in model.elements_of_type(mm.UmlClass):
        cls.is_active = True
        apply_stereotype(cls, hw_module)
        applied += 1
        for offset, attribute in enumerate(cls.attributes):
            apply_stereotype(attribute, register, address=offset * 4)
            applied += 1
    return applied


def measure_point(elements: int):
    plain = structural_model(elements)
    start = time.perf_counter()
    plain_report = validate_model(plain)
    plain_time = time.perf_counter() - start

    profiled = structural_model(elements)
    profile = create_soc_profile()
    start = time.perf_counter()
    applications = apply_profile(profiled, profile)
    apply_time = time.perf_counter() - start
    start = time.perf_counter()
    profiled_report = validate_model(profiled)
    profiled_time = time.perf_counter() - start
    return {
        "elements": plain.element_count(),
        "applications": applications,
        "apply_ms": round(1e3 * apply_time, 2),
        "validate_plain_ms": round(1e3 * plain_time, 2),
        "validate_profiled_ms": round(1e3 * profiled_time, 2),
        "overhead_factor": round(profiled_time / max(plain_time, 1e-9), 2),
        "plain_ok": plain_report.ok,
        "profiled_ok": profiled_report.ok,
    }


def table():
    """Rows: model size sweep with apply/validate timings."""
    return [measure_point(size) for size in (100, 400, 1200, 3000)]


class TestShape:
    def test_profiled_validation_still_passes(self):
        row = measure_point(300)
        assert row["plain_ok"] and row["profiled_ok"]

    def test_overhead_is_bounded(self):
        row = measure_point(800)
        # profile constraints cost something, but not an explosion
        assert row["overhead_factor"] < 25

    def test_application_scales_linearly(self):
        small = measure_point(200)
        large = measure_point(1600)
        ratio = large["applications"] / small["applications"]
        time_ratio = large["apply_ms"] / max(small["apply_ms"], 1e-6)
        assert time_ratio < ratio * 20


def test_benchmark_apply_stereotypes(benchmark):
    profile = create_soc_profile()

    def run():
        model = structural_model(300)
        apply_profile(model, profile)
    benchmark(run)


def test_benchmark_validate_profiled_model(benchmark):
    model = structural_model(500)
    apply_profile(model, create_soc_profile())
    benchmark(lambda: validate_model(model))


if __name__ == "__main__":
    for row in table():
        print(row)
