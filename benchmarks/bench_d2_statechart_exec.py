"""D2 — statechart executability and flattening speedup (Sections 2, 4).

Claim: the StateChart variant is directly executable, and flattening
hierarchy away (what hardware synthesis does) buys dispatch speed.

Measured: events/second through (a) hierarchical machines of growing
depth and orthogonality (interpreter), (b) a flat ring machine
(interpreter), (c) the semantically-flattened table machine.  Shape:
flat table >= flat interpreter >= deep hierarchical interpreter, with
the interpreter slowing as depth grows.
"""

import time

import pytest

from repro.statemachines import StateMachineRuntime, flatten

from workloads import flat_machine, hierarchical_machine

EVENTS = 2_000


def events_per_second(machine, events=EVENTS, alphabet=("step", "toggle")):
    runtime = StateMachineRuntime(machine).start()
    sequence = [alphabet[i % len(alphabet)] for i in range(events)]
    start = time.perf_counter()
    for event in sequence:
        runtime.send(event)
    elapsed = time.perf_counter() - start
    return events / elapsed


def flat_table_events_per_second(machine, events=EVENTS):
    flat = flatten(machine)
    sequence = ["step"] * events
    start = time.perf_counter()
    flat.run(sequence)
    elapsed = time.perf_counter() - start
    return events / elapsed


def table():
    """Rows: machine kind/depth, events/s interpreter, events/s flat."""
    rows = []
    for depth in (1, 2, 4, 6):
        machine = hierarchical_machine(depth)
        rows.append({
            "machine": f"hierarchical depth={depth}",
            "states": len(machine.all_states()),
            "interpreter_events_per_s": round(events_per_second(machine)),
        })
    for orthogonal in (2, 4):
        machine = hierarchical_machine(2, orthogonal=orthogonal)
        rows.append({
            "machine": f"orthogonal depth=2 regions={orthogonal}",
            "states": len(machine.all_states()),
            "interpreter_events_per_s": round(events_per_second(machine)),
        })
    ring = flat_machine(16)
    rows.append({
        "machine": "flat ring 16 (interpreter)",
        "states": 16,
        "interpreter_events_per_s": round(
            events_per_second(ring, alphabet=("step",))),
    })
    rows.append({
        "machine": "flat ring 16 (flattened table)",
        "states": 16,
        "interpreter_events_per_s": round(
            flat_table_events_per_second(ring)),
    })
    return rows


class TestShape:
    def test_flattened_table_beats_interpreter(self):
        ring = flat_machine(16)
        interpreted = events_per_second(ring, events=1_000,
                                        alphabet=("step",))
        tabled = flat_table_events_per_second(ring, events=1_000)
        assert tabled > interpreted

    def test_depth_costs_throughput(self):
        shallow = events_per_second(hierarchical_machine(1), events=500)
        deep = events_per_second(hierarchical_machine(6), events=500)
        assert shallow > deep

    def test_flattening_preserves_behavior(self):
        machine = hierarchical_machine(2)
        flat = flatten(machine)
        runtime = StateMachineRuntime(machine).start()
        for index in range(60):
            event = ("step", "toggle")[index % 2]
            flat.step(event)
            runtime.send(event)
        assert flat.leaf_names() == runtime.active_leaf_names()


def test_benchmark_interpreter_hierarchical(benchmark):
    machine = hierarchical_machine(3)
    runtime = StateMachineRuntime(machine).start()

    def run():
        runtime.send("step")
        runtime.send("toggle")
    benchmark(run)


def test_benchmark_flat_table_dispatch(benchmark):
    flat = flatten(flat_machine(16))
    benchmark(lambda: flat.step("step"))


if __name__ == "__main__":
    for row in table():
        print(row)
