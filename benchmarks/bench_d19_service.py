"""D19 — simulation-as-a-service: orchestration overhead & recovery (PR 10).

Claim under test: wrapping ``run_campaign`` behind the durable service
daemon must cost little when nothing goes wrong, almost nothing when
the answer is already known, and a bounded amount when things crash.

Measured:

* **orchestration overhead** — the same campaign run directly
  (``run_campaign``, serial in-process) vs submitted to an in-process
  :class:`~repro.service.SimulationService` and driven to ``done``
  (journal writes + lifecycle machine + forked lease + result-file
  round-trip).  The absolute gap is the price of durability;
* **warm cache hit** — resubmitting the identical (model, campaign,
  seeds) fingerprint with a shared artifact store: served from disk,
  byte-identical, no lease taken;
* **crash retry** — a worker SIGKILLed on its first lease
  (``REPRO_SERVICE_TEST_KILL``): wall time vs the clean run bounds the
  cost of one lease expiry + deterministic-jitter backoff + re-run;
* **queue recovery** — boot-time journal replay for a queue of ``n``
  finished jobs, from the raw journal vs from a compacted snapshot:
  the number snapshots exist to bound.

Workloads are the shared SoC builder; service state directories live
under a temp dir that is removed afterwards.
"""

import os
import tempfile
import time

from repro.faults import CampaignSpec, FaultCampaign, FaultSpec, run_campaign
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.service import JobStore, SimulationService, job_fingerprint
from repro.service.daemon import TEST_KILL_ENV

#: Seeds per campaign job (QUICK overrides via SEEDS).
SEEDS = (0, 1, 2, 3)
#: Simulated time per seed (QUICK overrides via CAMPAIGN_TIME).
CAMPAIGN_TIME = 200.0
#: Queue sizes for the recovery-replay sweep (QUICK overrides via SIZES).
SIZES = (16, 64)
#: Trials per timed mode (best-of, like the other D-benchmarks).
REPEATS = 3

CAMPAIGN = FaultCampaign(
    [FaultSpec("drop", signal="Read", probability=0.3),
     FaultSpec("delay", delay=1.5, probability=0.4)],
    name="d19", seed=0)


def build_system():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


def _spec_data(campaign_path, name="d19", seeds=None):
    return CampaignSpec(seeds=list(seeds or SEEDS),
                        builder="bench_d19_service:build_system",
                        campaign=campaign_path,
                        until=CAMPAIGN_TIME,
                        name=name).to_dict()


def _run_service_job(scratch, spec_data, tag, store=None, env_kill=None):
    """One submit -> done round trip on a fresh service; returns wall."""
    from repro.store import ArtifactStore

    state = os.path.join(scratch, f"state-{tag}")
    artifact_store = ArtifactStore(store) if store else None
    service = SimulationService(state, workers=1, lease_duration=120.0,
                                retry_backoff=0.01,
                                store=artifact_store)
    if env_kill:
        os.environ[TEST_KILL_ENV] = env_kill
    try:
        start = time.perf_counter()
        row = service.submit(spec_data)
        service.run_until_idle(timeout=600)
        wall = time.perf_counter() - start
    finally:
        if env_kill:
            del os.environ[TEST_KILL_ENV]
    final = service.status(row["job_id"])
    service.shutdown()
    return wall, final


def overhead_rows():
    rows = []
    with tempfile.TemporaryDirectory(prefix="d19-") as scratch:
        campaign_path = os.path.join(scratch, "campaign.json")
        with open(campaign_path, "w", encoding="utf-8") as handle:
            handle.write(CAMPAIGN.to_json())
        spec_data = _spec_data(campaign_path)

        direct_wall = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            direct = run_campaign(CampaignSpec.from_dict(spec_data),
                                  workers=0)
            wall = time.perf_counter() - start
            assert direct.ok
            direct_wall = wall if direct_wall is None \
                else min(direct_wall, wall)

        # best-of-N like the direct baseline; each trial gets a fresh
        # state dir (and no shared store — a store would turn trials
        # 2..N into cache hits and measure the warm path instead).
        cold_wall = cold_row = None
        for trial in range(REPEATS):
            wall, row = _run_service_job(
                scratch, spec_data, f"cold{trial}")
            if cold_wall is None or wall < cold_wall:
                cold_wall, cold_row = wall, row
        flaky_wall = flaky_row = None
        for trial in range(REPEATS):
            wall, row = _run_service_job(
                scratch, spec_data, f"flaky{trial}", env_kill="d19:1")
            if flaky_wall is None or wall < flaky_wall:
                flaky_wall, flaky_row = wall, row

        store_dir = os.path.join(scratch, "store")
        _run_service_job(scratch, spec_data, "prime", store=store_dir)
        warm_wall, warm_row = _run_service_job(
            scratch, spec_data, "warm", store=store_dir)

        rows.append({
            "level": "direct run_campaign (serial)",
            "seeds": len(spec_data["seeds"]),
            "wall_s": round(direct_wall, 3),
            "overhead_pct": 0.0,
        })
        rows.append({
            "level": "service cold (journal + lease + fork)",
            "seeds": len(spec_data["seeds"]),
            "wall_s": round(cold_wall, 3),
            "overhead_pct": round(
                100.0 * (cold_wall - direct_wall) / direct_wall, 1),
            "attempts": cold_row["attempts"],
        })
        rows.append({
            "level": "service warm (fingerprint cache hit)",
            "seeds": len(spec_data["seeds"]),
            "wall_s": round(warm_wall, 3),
            "speedup_vs_direct": round(direct_wall / warm_wall, 1),
            "cached": warm_row["cached"],
            "attempts": warm_row["attempts"],
        })
        rows.append({
            "level": "service crash retry (worker SIGKILL on lease 1)",
            "seeds": len(spec_data["seeds"]),
            "wall_s": round(flaky_wall, 3),
            "retry_cost_s": round(flaky_wall - cold_wall, 3),
            "attempts": flaky_row["attempts"],
        })
    return rows


def _synthesize_queue(root, jobs):
    """A journal describing ``jobs`` finished jobs (no simulation).

    Each job's history includes two expired leases before the one that
    completed — the retry churn real campaigns accumulate, and exactly
    the journal growth snapshots exist to bound (a snapshot stores one
    final state per job no matter how many leases it burned).
    """
    store = JobStore(root)
    for index in range(jobs):
        job_id = f"job-{index:06d}"
        spec = {"name": job_id, "seeds": [index],
                "builder": "bench_d19_service:build_system",
                "until": CAMPAIGN_TIME}
        store.append({"kind": "submit", "job_id": job_id,
                      "fingerprint": job_fingerprint(spec),
                      "spec": spec, "budget": 3})
        for event in ("lease", "expire", "lease", "start", "expire",
                      "lease", "start", "complete"):
            store.append({"kind": "event", "job_id": job_id,
                          "event": event})
        store.write_result(job_id, {"ok": True, "result": {}})
        store.append({"kind": "result", "job_id": job_id,
                      "fingerprint": job_fingerprint(spec),
                      "cached": False})
        store.append({"kind": "event", "job_id": job_id,
                      "event": "publish"})
    store.close()
    return store


def recovery_rows():
    rows = []
    for jobs in SIZES:
        with tempfile.TemporaryDirectory(prefix="d19-") as scratch:
            root = os.path.join(scratch, "state")
            store = _synthesize_queue(root, jobs)
            records = sum(1 for _ in open(store.journal_path,
                                          encoding="utf-8"))

            journal_wall = None
            for _ in range(REPEATS):
                start = time.perf_counter()
                replayed = JobStore(root).replay()
                wall = time.perf_counter() - start
                journal_wall = wall if journal_wall is None \
                    else min(journal_wall, wall)
            assert len(replayed) == jobs
            assert all(job.state == "done"
                       for job in replayed.values())

            compactor = JobStore(root)
            compactor.compact(compactor.replay())
            snapshot_wall = None
            for _ in range(REPEATS):
                start = time.perf_counter()
                snapshotted = JobStore(root).replay()
                wall = time.perf_counter() - start
                snapshot_wall = wall if snapshot_wall is None \
                    else min(snapshot_wall, wall)
            assert len(snapshotted) == jobs

            rows.append({
                "level": f"boot replay, {jobs} finished jobs",
                "journal_records": records,
                "from_journal_ms": round(journal_wall * 1e3, 2),
                "from_snapshot_ms": round(snapshot_wall * 1e3, 2),
                "snapshot_speedup": round(
                    journal_wall / max(snapshot_wall, 1e-9), 1),
            })
    return rows


def table():
    """Rows: direct-vs-service overhead, cache-hit speedup, crash-retry
    cost, and boot-time replay journal-vs-snapshot."""
    return overhead_rows() + recovery_rows()


class TestShape:
    def test_overhead_rows(self):
        rows = {row["level"]: row for row in overhead_rows()}
        warm = rows["service warm (fingerprint cache hit)"]
        assert warm["cached"] is True
        assert warm["attempts"] == 0
        flaky = rows["service crash retry (worker SIGKILL on lease 1)"]
        assert flaky["attempts"] == 2

    def test_recovery_rows(self):
        for row in recovery_rows():
            assert row["journal_records"] > 0
            assert row["from_snapshot_ms"] > 0


if __name__ == "__main__":
    for row in table():
        print(row)
