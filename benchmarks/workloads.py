"""Deterministic workload generators shared by the D1-D10 benchmarks.

Every generator takes a seed (or is fully deterministic) so benchmark
runs are reproducible; sizes are parameters so the sweeps in
EXPERIMENTS.md and the quick pytest-benchmark runs can share code.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import repro.metamodel as mm
from repro.activities import Activity
from repro.interactions import Interaction, Message
from repro.profiles import Profile, apply_stereotype, create_soc_profile
from repro.statemachines import StateMachine, TransitionKind


def synthetic_soc_pim(components: int, seed: int = 1,
                      with_profile: bool = True
                      ) -> Tuple[mm.Model, Profile]:
    """A synthetic SoC PIM: N components with registers, ports and FSMs.

    Each component gets 2-5 integer attributes, 1-3 ports, and a small
    protocol state machine whose effects exercise guards/sends — the
    realistic "design entry" payload for D1/D6/D7.
    """
    rng = random.Random(seed)
    profile = create_soc_profile()
    model = mm.Model(f"soc{components}")
    design = model.create_package("design")
    for index in range(components):
        component = design.add(mm.Component(f"Block{index}"))
        if with_profile:
            apply_stereotype(component, profile.stereotype("HwModule"))
        attribute_count = rng.randint(2, 5)
        for a_index in range(attribute_count):
            component.add_attribute(f"reg{a_index}", mm.INTEGER,
                                    default=rng.randint(0, 255))
        for p_index in range(rng.randint(1, 3)):
            component.add_port(
                f"p{p_index}",
                direction=rng.choice(list(mm.PortDirection)))
        operation = component.add_operation("service", mm.INTEGER)
        operation.add_parameter("request", mm.INTEGER)
        operation.set_body("reg0 = reg0 + request; return reg0;")

        machine = StateMachine(f"Fsm{index}")
        region = machine.region
        init = region.add_initial()
        idle = region.add_state("Idle")
        busy = region.add_state("Busy")
        done = region.add_state("Done")
        region.add_transition(init, idle)
        region.add_transition(idle, busy, trigger="start",
                              guard="reg0 < 1000",
                              effect='reg0 = reg0 + 1; '
                                     'send Ack(v=reg0) to "p0";')
        region.add_transition(busy, done, after=float(rng.randint(2, 9)))
        region.add_transition(done, idle, trigger="reset",
                              effect="reg1 = 0;")
        component.add_behavior(machine, as_classifier_behavior=True)
    return model, profile


def hierarchical_machine(depth: int, orthogonal: int = 1) -> StateMachine:
    """A machine nested ``depth`` levels deep with ``orthogonal`` regions.

    Events: ``step`` cycles the two leaves of every region; ``reset``
    jumps back to the outermost A-state.  Used by D2.
    """
    machine = StateMachine(f"deep{depth}x{orthogonal}")
    region = machine.region
    init = region.add_initial()
    top_a = region.add_state("L0A")
    top_b = region.add_state("L0B")
    region.add_transition(init, top_a)
    region.add_transition(top_a, top_b, trigger="toggle")
    region.add_transition(top_b, top_a, trigger="toggle")

    def populate(state, level):
        if level > depth:
            return
        for r_index in range(orthogonal):
            nested = state.add_region(f"r{level}_{r_index}")
            nested_init = nested.add_initial()
            leaf_a = nested.add_state(f"L{level}R{r_index}A")
            leaf_b = nested.add_state(f"L{level}R{r_index}B")
            nested.add_transition(nested_init, leaf_a)
            nested.add_transition(leaf_a, leaf_b, trigger="step")
            nested.add_transition(leaf_b, leaf_a, trigger="step")
            if r_index == 0:
                populate(leaf_a, level + 1)

    populate(top_a, 1)
    return machine


def flat_machine(states: int) -> StateMachine:
    """A ring of N states cycled by ``step`` — the flat baseline for D2."""
    machine = StateMachine(f"ring{states}")
    region = machine.region
    init = region.add_initial()
    ring = [region.add_state(f"S{i}") for i in range(states)]
    region.add_transition(init, ring[0])
    for current, following in zip(ring, ring[1:] + ring[:1]):
        region.add_transition(current, following, trigger="step")
    return machine


def random_activity(seed: int, target_nodes: int = 20) -> Activity:
    """A random well-formed control-only activity (D3 workload)."""
    rng = random.Random(seed)
    activity = Activity(f"rand{seed}")
    init = activity.add_initial()
    final = activity.add_final()
    frontier = [init]
    count = 0
    while frontier and count < target_nodes:
        node = frontier.pop(0)
        count += 1
        choice = rng.choice(["action", "fork", "decision", "action"])
        if choice == "action":
            action = activity.add_action(f"act{count}")
            activity.flow(node, action)
            frontier.append(action)
        elif choice == "fork":
            fork = activity.add_fork(f"fork{count}")
            join = activity.add_join(f"join{count}")
            activity.flow(node, fork)
            for branch in range(2):
                step = activity.add_action(f"b{count}_{branch}")
                activity.flow(fork, step)
                activity.flow(step, join)
            frontier.append(join)
        else:
            decision = activity.add_decision(f"dec{count}")
            merge = activity.add_merge(f"mrg{count}")
            activity.flow(node, decision)
            for branch in range(2):
                step = activity.add_action(f"d{count}_{branch}")
                activity.flow(decision, step)
                activity.flow(step, merge)
            frontier.append(merge)
    for node in frontier:
        activity.flow(node, final)
    activity.validate()
    return activity


def par_interaction(lifelines: int, messages_per_operand: int
                    ) -> Interaction:
    """A par fragment with one operand per lifeline pair (D4 workload)."""
    interaction = Interaction(f"par{lifelines}x{messages_per_operand}")
    participants = [interaction.add_lifeline(f"l{i}")
                    for i in range(lifelines)]
    par = interaction.par()
    for index in range(max(lifelines - 1, 2)):
        operand = par.add_operand()
        sender = participants[index % lifelines]
        receiver = participants[(index + 1) % lifelines]
        for m_index in range(messages_per_operand):
            operand.add(Message(f"m{index}_{m_index}", sender, receiver))
    return interaction


def structural_model(elements: int, seed: int = 3) -> mm.Model:
    """A plain structural model of roughly ``elements`` elements
    (classes, attributes, operations, associations) for D5/D10."""
    rng = random.Random(seed)
    model = mm.Model(f"big{elements}")
    package = model.create_package("p0")
    classes: List[mm.UmlClass] = []
    while model.element_count() < elements:
        cls = package.add(mm.UmlClass(f"C{len(classes)}"))
        classes.append(cls)
        for a_index in range(rng.randint(1, 4)):
            cls.add_attribute(f"a{a_index}", mm.INTEGER,
                              default=rng.randint(0, 9))
        if rng.random() < 0.5:
            operation = cls.add_operation("op", mm.INTEGER)
            operation.add_parameter("x", mm.INTEGER)
        if len(classes) >= 2 and rng.random() < 0.4:
            package.add(mm.associate(cls, rng.choice(classes[:-1])))
        if len(classes) % 25 == 0:
            package = model.create_package(f"p{len(classes) // 25}")
    return model
