"""D12 — trace-bus observation overhead (PR 3).

Claim: unified typed tracing (one TraceBus carrying engine, message
and fault events) can replace the per-channel observation hooks only
if an *unobserved* bus is effectively free on the cosimulation hot
path.

Measured: the D8 producer/bus/memory SoC executed four ways —

* **bus off** (``bus=False``: no bus object at all),
* **empty bus** (a live TraceBus with zero subscribers — the
  acceptance-criterion configuration: every emit site must reduce to
  an attribute/set-membership check),
* **default bus** (the harness's built-in message-log/resilience
  subscribers; no engine-level kinds active),
* **engine subscriber** (a wildcard subscriber: every transition,
  state entry/exit, RTC dispatch and routed message materialized as a
  TraceEvent).

Reported: kernel events/second per mode and the overhead of each mode
against bus-off, for both the interpreted and the compiled engine.
Acceptance (PR 3): the *empty* bus costs <= 5% of bus-off throughput;
the figure recorded in BENCH_PR3.json is measured on an idle machine —
the CI shape test only asserts a loose floor because shared runners
jitter.
"""

import time

from repro.engine import TraceBus
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.simulation import SystemSimulation

SIM_TIME = 400.0
REPEATS = 3

MODES = ("bus off", "empty bus", "default bus", "engine subscriber")


def build_system():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x800)
    memory = make_memory("Ram", size_bytes=0x800)
    return make_soc("Bench", masters=[cpu],
                    slaves=[(memory, "bus", 0, 0x800)])


def _run_once(mode, compiled=False):
    if mode == "bus off":
        bus = False
    elif mode in ("default bus", "empty bus"):
        bus = None
    else:
        bus = TraceBus()
        dropped = [0]

        def swallow(event, _dropped=dropped):
            _dropped[0] += 1

        bus.subscribe(swallow)  # every kind, engine-level included
    simulation = SystemSimulation(build_system(), quantum=1.0,
                                  default_latency=1.0, bus=bus,
                                  compile=compiled)
    if mode == "empty bus":
        # the acceptance-criterion configuration: a live bus with zero
        # subscribers (even the built-in message log detached)
        for subscription in simulation._builtin_subscriptions:
            subscription.cancel()
    start = time.perf_counter()
    simulation.run(until=SIM_TIME)
    elapsed = time.perf_counter() - start
    simulation.close()
    return {
        "kernel_events": simulation.simulator.events_processed,
        "trace_events": simulation.stats()["trace_events"],
        "elapsed_s": elapsed,
    }


def measure(mode, compiled=False):
    """Best-of-N run of one mode (events/s is jitter-sensitive)."""
    best = min((_run_once(mode, compiled) for _ in range(REPEATS)),
               key=lambda run: run["elapsed_s"])
    return {
        "engine": "compiled" if compiled else "interpreted",
        "mode": mode,
        "kernel_events": best["kernel_events"],
        "trace_events": best["trace_events"],
        "events_per_s": round(best["kernel_events"] / best["elapsed_s"]),
    }


def table():
    """Rows: observation mode vs. cosimulation throughput, both the
    interpreted and (the tighter case) the compiled engine."""
    rows = []
    for compiled in (False, True):
        group = [measure(mode, compiled) for mode in MODES]
        baseline = group[0]["events_per_s"]
        for row in group:
            row["overhead_pct"] = round(
                100.0 * (baseline - row["events_per_s"]) / baseline, 1)
        rows.extend(group)
    return rows


class TestShape:
    def test_modes_agree_on_kernel_events(self):
        counts = {_run_once(mode)["kernel_events"] for mode in MODES}
        assert len(counts) == 1

    def test_trace_event_counts_scale_with_observation(self):
        off, empty, default, engine = (_run_once(mode) for mode in MODES)
        assert off["trace_events"] == 0
        assert empty["trace_events"] == 0
        assert 0 < default["trace_events"] < engine["trace_events"]

    def test_empty_bus_overhead_is_bounded(self):
        # the real acceptance number (<= 5%) is measured off-CI and
        # recorded in BENCH_PR3.json; here only a loose floor so the
        # guarantee can't silently rot into a 2x regression
        off = measure("bus off", compiled=True)["events_per_s"]
        empty = measure("empty bus", compiled=True)["events_per_s"]
        assert empty >= 0.7 * off


def test_benchmark_default_bus(benchmark):
    def run():
        simulation = SystemSimulation(build_system(), quantum=1.0)
        simulation.run(until=100.0)
        simulation.close()
    benchmark(run)


if __name__ == "__main__":
    for row in table():
        print(row)
