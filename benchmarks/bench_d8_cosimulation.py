"""D8 — early prototyping via simulation (Section 4).

Claim: "the early prototyping and inherent software simulation
capabilities of such an approach are appealing, as they promise cost
and time savings."

Measured: the same producer/bus/memory SoC executed at four
abstraction levels —

* **interpreted cosimulation** (the UML model runs directly),
* **compiled cosimulation** (machines compiled to dispatch tables of
  precompiled guard/effect closures — same model, same kernel),
* **generated Python** (code generated from the model, no interpreter),
* **flattened FSMs** (table dispatch, the cheapest software prototype).

Reported: simulated-events/second for each, and the speedup of moving
down the abstraction ladder.  Shape: compiled > interpreted with
bit-identical traffic; generated > interpreted; the model needs zero
changes between levels (the cost saving claimed).
"""

import time

import pytest

import repro.metamodel as mm
from repro.codegen import python_gen
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachineRuntime

SIM_TIME = 400.0


def build_system():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x800)
    memory = make_memory("Ram", size_bytes=0x800)
    top = make_soc("Bench", masters=[cpu], slaves=[(memory, "bus",
                                                    0, 0x800)])
    return top, cpu, memory


def interpreted_cosim():
    top, _cpu, _memory = build_system()
    simulation = SystemSimulation(top, quantum=1.0, default_latency=1.0)
    start = time.perf_counter()
    simulation.run(until=SIM_TIME)
    elapsed = time.perf_counter() - start
    events = simulation.simulator.events_processed
    return {
        "level": "interpreted cosimulation",
        "kernel_events": events,
        "messages": simulation.messages_delivered,
        "events_per_s": round(events / elapsed),
        "responses": simulation.context_of("m0_cpu")["responses"],
    }


def compiled_cosim():
    top, _cpu, _memory = build_system()
    simulation = SystemSimulation(top, quantum=1.0, default_latency=1.0,
                                  compile=True)
    start = time.perf_counter()
    simulation.run(until=SIM_TIME)
    elapsed = time.perf_counter() - start
    events = simulation.simulator.events_processed
    return {
        "level": "compiled cosimulation",
        "kernel_events": events,
        "messages": simulation.messages_delivered,
        "events_per_s": round(events / elapsed),
        "responses": simulation.context_of("m0_cpu")["responses"],
        "compiled_parts": sum(
            1 for verdict in simulation.compile_report.values()
            if verdict == "compiled"),
    }


def generated_python():
    """Drive the generated Memory class directly with the same traffic."""
    _top, cpu, memory = build_system()
    classes = python_gen.compile_module(memory)
    mem_cls = classes["Ram"]
    responses = 0

    def on_send(signal, target, arguments):
        nonlocal responses
        if signal in ("ReadResp", "WriteAck"):
            responses += 1

    instance = mem_cls(on_send=on_send)
    requests = int(SIM_TIME / 2.0)
    seed = 1
    start = time.perf_counter()
    for index in range(requests):
        seed = (seed * 1103515245 + 12345) % 2147483648
        address = seed % 0x800
        if index % 2 == 0:
            instance.dispatch("Write", addr=address, value=index)
        else:
            instance.dispatch("Read", addr=address)
    elapsed = time.perf_counter() - start
    return {
        "level": "generated python (memory under test)",
        "kernel_events": requests,
        "events_per_s": round(requests / elapsed),
        "responses": responses,
    }


def interpreted_component():
    """The same memory driven through the interpreter, for a fair pair."""
    _top, _cpu, memory = build_system()
    runtime = StateMachineRuntime(memory.classifier_behavior,
                                  signal_sink=lambda s: None).start()
    requests = int(SIM_TIME / 2.0)
    seed = 1
    start = time.perf_counter()
    for index in range(requests):
        seed = (seed * 1103515245 + 12345) % 2147483648
        address = seed % 0x800
        if index % 2 == 0:
            runtime.send("Write", addr=address, value=index)
        else:
            runtime.send("Read", addr=address)
    elapsed = time.perf_counter() - start
    return {
        "level": "interpreted component (memory under test)",
        "kernel_events": requests,
        "events_per_s": round(requests / elapsed),
    }


def table():
    """Rows: abstraction level vs. simulation throughput."""
    rows = [interpreted_cosim(), compiled_cosim(),
            interpreted_component(), generated_python()]
    interpreted_sys = next(
        r for r in rows
        if r["level"].startswith("interpreted cosimulation"))
    compiled = next(r for r in rows
                    if r["level"].startswith("compiled cosimulation"))
    interpreted = next(r for r in rows
                       if r["level"].startswith("interpreted component"))
    generated = next(r for r in rows if r["level"].startswith("generated"))
    rows.append({
        "level": "speedup compiled/interpreted cosimulation",
        "factor": round(compiled["events_per_s"]
                        / interpreted_sys["events_per_s"], 2),
    })
    rows.append({
        "level": "speedup generated/interpreted",
        "factor": round(generated["events_per_s"]
                        / interpreted["events_per_s"], 2),
    })
    return rows


class TestShape:
    def test_generated_faster_than_interpreted(self):
        interpreted = interpreted_component()
        generated = generated_python()
        assert generated["events_per_s"] > interpreted["events_per_s"]

    def test_same_functional_results_across_levels(self):
        """Both levels must produce a response for every request."""
        generated = generated_python()
        assert generated["responses"] == generated["kernel_events"]

    def test_cosimulation_makes_progress(self):
        row = interpreted_cosim()
        assert row["responses"] > 100

    def test_compiled_cosim_matches_interpreted(self):
        """Same kernel events, messages and responses at both levels."""
        interpreted = interpreted_cosim()
        compiled = compiled_cosim()
        assert compiled["compiled_parts"] == 3
        for key in ("kernel_events", "messages", "responses"):
            assert compiled[key] == interpreted[key]

    def test_compiled_cosim_speedup(self):
        """The acceptance floor is 5x; assert 3x to keep CI slack."""
        interpreted = interpreted_cosim()
        compiled = compiled_cosim()
        assert compiled["events_per_s"] >= 3 * interpreted["events_per_s"]


def test_benchmark_cosimulation(benchmark):
    def run():
        top, _cpu, _memory = build_system()
        SystemSimulation(top, quantum=1.0).run(until=100.0)
    benchmark(run)


def test_benchmark_generated_dispatch(benchmark):
    _top, _cpu, memory = build_system()
    instance = python_gen.compile_module(memory)["Ram"]()
    benchmark(lambda: instance.dispatch("Write", addr=4, value=1))


if __name__ == "__main__":
    for row in table():
        print(row)
