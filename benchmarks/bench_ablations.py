"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1 — **ASL parse caching.**  Guards/effects are short strings executed
thousands of times; the interpreter memoizes parsed programs per source
text.  Ablation: clear the cache before every evaluation and measure
the slowdown of a state-machine event storm.

A2 — **Model id indexing.**  ``Model.find_by_id`` is a linear scan
(fine for single lookups); the XMI reader and MDA engine instead build
a dict index once.  Ablation: N lookups via scan vs. via the index.

A3 — **Runtime adjacency caching.**  The state machine runtime caches
outgoing/incoming transition maps instead of scanning all transitions
per dispatch (``Vertex.outgoing`` does the model-level scan).  Ablation
measured via the model-level API against the runtime's cached path.
"""

import time

import pytest

import repro.metamodel as mm
from repro import asl
from repro.statemachines import StateMachineRuntime

from workloads import flat_machine, structural_model


# ---------------------------------------------------------------------------
# A1: ASL parse cache
# ---------------------------------------------------------------------------

GUARD = "count < 100 and mode == 1"
EVENTS = 1_000


def _storm(clear_cache: bool) -> float:
    machine = flat_machine(8)
    # attach a guard+effect to every transition so ASL runs per event
    for transition in machine.all_transitions():
        if transition.triggers:
            transition.guard = GUARD
            transition.effect = "count = count + 1;"
    runtime = StateMachineRuntime(
        machine, context={"count": 0, "mode": 1}).start()
    start = time.perf_counter()
    for _ in range(EVENTS):
        if clear_cache:
            asl.clear_caches()
        runtime.send("step")
    return EVENTS / (time.perf_counter() - start)


def table_a1():
    cached = _storm(clear_cache=False)
    uncached = _storm(clear_cache=True)
    return [{
        "ablation": "A1 ASL parse cache",
        "cached_events_per_s": round(cached),
        "uncached_events_per_s": round(uncached),
        "speedup": round(cached / uncached, 2),
    }]


class TestA1Shape:
    def test_cache_pays(self):
        cached = _storm(clear_cache=False)
        uncached = _storm(clear_cache=True)
        assert cached > uncached * 1.5


def test_benchmark_guard_eval_cached(benchmark):
    runtime = StateMachineRuntime(
        flat_machine(4), context={"count": 0, "mode": 1}).start()
    benchmark(lambda: runtime.send("step"))


# ---------------------------------------------------------------------------
# A2: id index vs linear scan
# ---------------------------------------------------------------------------

LOOKUPS = 300


def table_a2():
    model = structural_model(2_000)
    targets = [element.xmi_id
               for element in list(model.all_owned())[::7]][:LOOKUPS]

    start = time.perf_counter()
    for xmi_id in targets:
        model.find_by_id(xmi_id)
    scan_time = time.perf_counter() - start

    start = time.perf_counter()
    index = model.build_id_index()
    for xmi_id in targets:
        index[xmi_id]
    index_time = time.perf_counter() - start
    return [{
        "ablation": "A2 id index",
        "lookups": LOOKUPS,
        "linear_scan_ms": round(1e3 * scan_time, 1),
        "dict_index_ms_incl_build": round(1e3 * index_time, 1),
        "speedup": round(scan_time / max(index_time, 1e-9), 1),
    }]


class TestA2Shape:
    def test_index_beats_scan_for_batches(self):
        row = table_a2()[0]
        assert row["speedup"] > 2


# ---------------------------------------------------------------------------
# A3: adjacency caching (runtime) vs model-level scan
# ---------------------------------------------------------------------------

def table_a3():
    machine = flat_machine(64)
    runtime = StateMachineRuntime(machine).start()
    state = machine.find_state("S0")

    iterations = 2_000
    start = time.perf_counter()
    for _ in range(iterations):
        state.outgoing  # model-level O(T) scan
    scan_time = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(iterations):
        runtime._outgoing_of(state)  # runtime cached map
    cached_time = time.perf_counter() - start
    return [{
        "ablation": "A3 adjacency cache",
        "iterations": iterations,
        "model_scan_ms": round(1e3 * scan_time, 1),
        "runtime_cache_ms": round(1e3 * cached_time, 2),
        "speedup": round(scan_time / max(cached_time, 1e-9)),
    }]


class TestA3Shape:
    def test_cache_is_much_faster(self):
        row = table_a3()[0]
        assert row["speedup"] > 10


def table():
    """All ablation rows."""
    return table_a1() + table_a2() + table_a3()


if __name__ == "__main__":
    for row in table():
        print(row)
