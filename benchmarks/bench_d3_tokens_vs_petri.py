"""D3 — activity token semantics vs. high-level Petri nets (Section 2).

Claim: UML 2.0 token semantics put activities "semantically close to
high-level Petri Nets".

Measured: for random control-only activities, the token engine's
reachable-marking set must equal the mapped Petri net's reachable set
(agreement = 100%), plus relative stepping cost of the two semantics.
"""

import time

import pytest

from repro.activities import (
    TokenEngine,
    activity_to_petri,
    engine_marking_to_net,
    explore,
)

from workloads import random_activity

SEEDS = tuple(range(10))
SIZES = (10, 25, 50)


def agreement(seed: int, nodes: int):
    activity = random_activity(seed, nodes)
    engine_markings = {engine_marking_to_net(m)
                       for m in explore(activity, max_markings=20_000)}
    net = activity_to_petri(activity)
    net_markings = {engine_marking_to_net(m)
                    for m in net.reachable_markings(max_markings=20_000)}
    return engine_markings, net_markings


def table():
    """Rows: size, seeds checked, marking counts, agreement rate."""
    rows = []
    for nodes in SIZES:
        agree = 0
        total_markings = 0
        for seed in SEEDS:
            engine_markings, net_markings = agreement(seed, nodes)
            total_markings += len(engine_markings)
            if engine_markings == net_markings:
                agree += 1
        rows.append({
            "target_nodes": nodes,
            "seeds": len(SEEDS),
            "mean_markings": total_markings // len(SEEDS),
            "agreement": f"{agree}/{len(SEEDS)}",
        })
    # relative stepping cost on one representative activity
    activity = random_activity(0, 30)
    engine = TokenEngine(activity)
    start = time.perf_counter()
    steps = engine.run()
    engine_time = time.perf_counter() - start

    net = activity_to_petri(activity)
    marking = net.initial_marking()
    start = time.perf_counter()
    net_steps = 0
    while True:
        enabled = net.enabled(marking)
        if not enabled:
            break
        marking = net.fire(marking, enabled[0])
        net_steps += 1
    net_time = time.perf_counter() - start
    rows.append({
        "stepping": "engine vs net (same activity)",
        "engine_steps": steps,
        "net_steps": net_steps,
        "engine_us_per_step": round(1e6 * engine_time / max(steps, 1), 1),
        "net_us_per_step": round(1e6 * net_time / max(net_steps, 1), 1),
    })
    return rows


class TestShape:
    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_agreement_is_total(self, seed):
        engine_markings, net_markings = agreement(seed, 25)
        assert engine_markings == net_markings

    def test_agreement_scales(self):
        engine_markings, net_markings = agreement(1, 50)
        assert engine_markings == net_markings
        assert len(engine_markings) > 10  # non-trivial state space


def test_benchmark_token_engine_run(benchmark):
    activity = random_activity(0, 30)

    def run():
        engine = TokenEngine(activity)
        engine.run()
    benchmark(run)


def test_benchmark_petri_reachability(benchmark):
    activity = random_activity(0, 20)
    net = activity_to_petri(activity)
    benchmark(lambda: net.reachable_markings(max_markings=20_000))


if __name__ == "__main__":
    for row in table():
        print(row)
